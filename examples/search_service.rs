//! A fan-out web search engine: the paper's second evaluated workload.
//!
//! Builds per-component inverted indexes and synopses over a synthetic
//! Sogou-like corpus, then shows how top-10 retrieval accuracy grows with
//! the number of ranked page-groups each component processes — the paper's
//! key observation that a small fraction of top-ranked groups holds nearly
//! all actual top-10 pages.
//!
//! ```text
//! cargo run --release --example search_service
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::core::Component;
use accuracytrader::prelude::*;
use accuracytrader::search::topk_overlap;

fn main() {
    let n_components = 6;
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: 3000,
        vocab: 5000,
        n_topics: 20,
        ..CorpusConfig::default()
    });
    println!(
        "corpus: {} pages, {} terms, {} topics",
        corpus.len(),
        corpus.config.vocab,
        corpus.n_topics()
    );

    // Partition pages, index each subset, build merge-mode synopses.
    let rows: Vec<SparseRow> = corpus
        .docs
        .iter()
        .map(|d| SparseRow::from_pairs(d.terms.clone()))
        .collect();
    let subsets =
        partition_rows(corpus.config.vocab, rows, n_components).expect("n_components >= 1");
    let components: Vec<Component<SearchService>> = subsets
        .into_iter()
        .map(|subset| {
            let engine = SearchService::build(&subset, 10);
            Component::build(
                subset,
                AggregationMode::Merge,
                SynopsisConfig {
                    size_ratio: 25,
                    ..SynopsisConfig::default()
                },
                engine,
            )
            .0
        })
        .collect();
    let service = FanOutService::from_components(components);
    let n_sets = service.components()[0].store().synopsis().len();
    println!("deployment: {n_components} components, ~{n_sets} aggregated page-groups each\n");

    // Issue 50 queries; measure mean top-10 overlap vs. exact retrieval at
    // several per-component group budgets.
    let mut generator = QueryGenerator::new(&corpus, 5);
    let queries: Vec<SearchRequest> = generator
        .batch(&corpus, 50)
        .iter()
        .map(SearchRequest::from)
        .collect();

    println!(
        "{:<24} {:>16} {:>14}",
        "budget (groups/comp)", "top-10 overlap", "groups used"
    );
    for budget in [1usize, 2, 4, 8, usize::MAX] {
        let mut overlap_sum = 0.0;
        let mut used = 0usize;
        let mut avail = 0usize;
        let policy = ExecutionPolicy::budgeted(budget);
        for q in &queries {
            // `serve` fans out, merges per-component top-10s into the
            // global top-10 (ids namespaced by component), and reports
            // how many ranked groups were touched.
            let exact = service.serve(q, &ExecutionPolicy::Exact);
            let approx = service.serve(q, &policy);
            used += approx.sets_processed();
            avail += approx.sets_total();
            overlap_sum += topk_overlap(&exact.response.doc_ids(), &approx.response.doc_ids());
        }
        let label = if budget == usize::MAX {
            "all groups".to_string()
        } else {
            format!("{budget}")
        };
        println!(
            "{:<24} {:>15.1}% {:>13.1}%",
            label,
            overlap_sum / queries.len() as f64 * 100.0,
            used as f64 / avail as f64 * 100.0
        );
    }
}

//! Load-adaptive multi-resolution synopses — the extension the paper
//! defers to follow-up work (§2.3): under light load use a fine synopsis
//! (better correlation estimates, slightly costlier stage 1); under heavy
//! load fall back to a coarse one.
//!
//! ```text
//! cargo run --release --example adaptive_synopsis
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;
use accuracytrader::synopsis::MultiSynopsis;
use std::time::Instant;

fn main() {
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: 3000,
        n_items: 240,
        ratings_per_user: 70,
        ..RatingsConfig::small()
    });
    let rows = accuracytrader::recommender::rating_matrix(3000, 240, &data.ratings);

    let multi = MultiSynopsis::build(
        &rows,
        AggregationMode::Mean,
        SynopsisConfig {
            size_ratio: 80,
            ..SynopsisConfig::default()
        },
    );
    println!("resolutions available (aggregated points per level):");
    for level in multi.levels() {
        println!("  depth {}: {:>5} points", level.depth, level.len());
    }

    // An active user to probe each resolution's stage-1 cost and ranking.
    let profile: Vec<(u32, f64)> = data
        .ratings
        .iter()
        .filter(|r| r.user == 0)
        .map(|r| (r.item, r.stars))
        .collect();
    let active = ActiveUser::new(SparseRow::from_pairs(profile), vec![0]);

    println!(
        "\n{:<14} {:>10} {:>16} {:>14}",
        "utilization", "points", "stage1 time", "top |w|"
    );
    for utilization in [0.0, 0.5, 0.8, 1.0] {
        let level = multi.select_for_utilization(utilization);
        // Time the synopsis pass at this resolution: weight every
        // aggregated user against the active profile and rank.
        let t0 = Instant::now();
        let mut correlations: Vec<Correlation> = level
            .synopsis
            .iter()
            .map(|p| Correlation {
                node: p.node,
                score: accuracytrader::recommender::user_weight(&active.profile, &p.info)
                    .0
                    .abs(),
            })
            .collect();
        correlations = accuracytrader::core::rank(correlations);
        let elapsed = t0.elapsed();
        println!(
            "{:<14.1} {:>10} {:>13.0} us {:>14.3}",
            utilization,
            level.len(),
            elapsed.as_secs_f64() * 1e6,
            correlations.first().map_or(0.0, |c| c.score),
        );
    }
    println!(
        "\nHigher load selects a coarser synopsis: fewer aggregated points to\n\
         weigh per request, at the price of coarser correlation estimates."
    );
}

//! Multi-worker sharded serving: replay one zipf-skewed mix through a
//! `ShardedServer` at increasing worker counts and watch collapse
//! locality work — hash-affinity routing concentrates each hot key on
//! one worker, so micro-batches get duplicate-dense, the batcher
//! collapses them, and throughput scales past core count. Least-loaded
//! routing sprays the same keys everywhere and barely moves.
//!
//! The analytic model (`at_sim::simulate_shards`) is consulted first, the
//! way a deployment would pick its topology offline; the replay then
//! validates the pick against the real server.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;
use accuracytrader::workloads::Zipf;
use rand::{rngs::SmallRng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn replay(
    service: &Arc<FanOutService<CfService>>,
    mix: &[ActiveUser],
    workers: usize,
    routing: RoutingStrategy,
) -> (f64, ClusterStats) {
    let cluster = ShardedServer::replicated(
        service,
        ShardConfig::default()
            .with_workers(workers)
            .with_routing(routing)
            .with_worker(
                ServerConfig::default()
                    .with_queue_capacity(1 << 14)
                    .with_max_batch(256),
            ),
    );
    let policy = ExecutionPolicy::budgeted(4);
    let start = Instant::now();
    let tickets: Vec<_> = mix
        .iter()
        .map(|req| cluster.submit(req.clone(), policy).expect("accepting"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("healthy cluster fulfils everything");
    }
    let rps = mix.len() as f64 / start.elapsed().as_secs_f64();
    (rps, cluster.shutdown())
}

fn main() {
    let n_components = 3;
    let n_users = 600;
    let n_items = 80;

    // Offline: build the recommender deployment once; replicas share the
    // read-only synopses, so a W-worker cluster is W cheap clones.
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 40,
        ..RatingsConfig::small()
    });
    let matrix = rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, n_components).expect("n_components >= 1");
    let service = Arc::new(FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            size_ratio: 15,
            ..SynopsisConfig::default()
        },
        || CfService,
    ));

    // A duplicate-heavy zipf mix over a pool of active users.
    let pool: Vec<ActiveUser> = (0..32u32)
        .filter_map(|user| {
            let profile: Vec<(u32, f64)> = data
                .ratings
                .iter()
                .filter(|r| r.user == user)
                .map(|r| (r.item, r.stars))
                .collect();
            (profile.len() >= 4).then(|| {
                ActiveUser::new(
                    SparseRow::from_pairs(profile),
                    vec![user % 5, user % 5 + 20, user % 5 + 40],
                )
            })
        })
        .collect();
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = SmallRng::seed_from_u64(41);
    let mix: Vec<ActiveUser> = (0..4096)
        .map(|_| pool[zipf.sample(&mut rng)].clone())
        .collect();

    // Offline topology pick: feed the mix's route keys to the analytic
    // model and let it choose the 4-worker strategy.
    let keys: Vec<u64> = mix.iter().map(RouteKey::route_key).collect();
    let picked = pick_strategy(
        &keys,
        &ShardSimConfig {
            workers: 4,
            cores: 1,
            max_batch: 256,
            ..ShardSimConfig::default()
        },
    );
    println!(
        "model pick at 4 workers: {} (modelled mean uniques/batch {:.1})",
        picked.strategy.name(),
        picked.mean_uniques_per_batch,
    );

    // Warm pools, then replay the same mix through each topology.
    for req in mix.iter().take(32) {
        std::hint::black_box(service.serve(req, &ExecutionPolicy::budgeted(4)));
    }
    println!(
        "\n{:<6}{:>16}{:>16}{:>12}{:>10}",
        "W", "hash rps", "least-loaded", "hash x", "stolen"
    );
    let (base, _) = replay(&service, &mix, 1, RoutingStrategy::HashAffinity);
    println!("{:<6}{:>16.0}{:>16}{:>12.2}{:>10}", 1, base, "-", 1.0, 0);
    for workers in [2usize, 4] {
        let (hash, hash_stats) = replay(&service, &mix, workers, RoutingStrategy::HashAffinity);
        let (ll, _) = replay(&service, &mix, workers, RoutingStrategy::LeastLoaded);
        println!(
            "{:<6}{:>16.0}{:>16.0}{:>12.2}{:>10}",
            workers,
            hash,
            ll,
            hash / base,
            hash_stats.requests_stolen(),
        );
    }
    println!(
        "\nhash affinity beats least-loaded because equal requests land on one \
         worker:\nits micro-batches collapse duplicates to one serve each, so the \
         cluster does\nless total work for the same answers — locality, not \
         parallelism."
    );
}

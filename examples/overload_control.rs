//! The load-adaptive control plane: replay the same flash crowd twice —
//! once with `NoControl` (every request keeps its deadline policy, queue
//! wait blows `l_spe` for everyone) and once with a `LadderController`
//! (the newest traffic degrades down the ladder, deadlines mostly hold).
//!
//! ```text
//! cargo run --release --example overload_control
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;
use accuracytrader::workloads::{arrival_delays, flash_crowd_arrivals, BurstConfig, Zipf};
use rand::{rngs::SmallRng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Replay {
    served: usize,
    shed: usize,
    missed: usize,
    degraded: usize,
    mean_coverage: f64,
    p99_ms: f64,
}

fn replay(
    service: &Arc<FanOutService<CfService>>,
    requests: &[(ActiveUser, Duration)],
    l_spe: Duration,
    controller: Option<LadderController>,
) -> Replay {
    let config = ServerConfig::default()
        .with_queue_capacity(1 << 14)
        .with_max_batch(32)
        .with_stats_window(128);
    let server = match controller {
        Some(c) => Server::with_controller(service.clone(), config, c),
        None => Server::new(service.clone(), config),
    };
    let requested = ExecutionPolicy::deadline(l_spe);
    let start = Instant::now();
    let tickets: Vec<_> = requests
        .iter()
        .map(|(req, delay)| {
            if let Some(remaining) = delay.checked_sub(start.elapsed()) {
                std::thread::sleep(remaining);
            }
            server.submit(req.clone(), requested).expect("accepting")
        })
        .collect();
    let mut out = Replay {
        served: 0,
        shed: 0,
        missed: 0,
        degraded: 0,
        mean_coverage: 0.0,
        p99_ms: 0.0,
    };
    let mut latencies_ms = Vec::with_capacity(requests.len());
    for ticket in tickets {
        match ticket.wait() {
            Ok(resp) => {
                out.served += 1;
                out.missed += usize::from(resp.elapsed > l_spe);
                out.degraded += usize::from(resp.policy_applied != requested);
                out.mean_coverage += resp.mean_coverage();
                latencies_ms.push(resp.elapsed.as_secs_f64() * 1e3);
            }
            Err(_) => out.shed += 1,
        }
    }
    server.shutdown();
    if out.served > 0 {
        out.mean_coverage /= out.served as f64;
        out.p99_ms = accuracytrader::linalg::percentile(&latencies_ms, 99.0);
    }
    out
}

fn main() {
    let n_components = 6;
    let n_users = 1200;
    let n_items = 150;

    // Offline: build the recommender deployment.
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 50,
        ..RatingsConfig::small()
    });
    let matrix = rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, n_components).expect("n_components >= 1");
    let service = Arc::new(FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            size_ratio: 15,
            ..SynopsisConfig::default()
        },
        || CfService,
    ));

    // A pool of active users whose requests the zipf mix repeats.
    let pool: Vec<ActiveUser> = (0..24u32)
        .filter_map(|user| {
            let profile: Vec<(u32, f64)> = data
                .ratings
                .iter()
                .filter(|r| r.user == user)
                .map(|r| (r.item, r.stars))
                .collect();
            (profile.len() >= 4).then(|| {
                ActiveUser::new(
                    SparseRow::from_pairs(profile),
                    vec![user % 5, user % 5 + 30, user % 5 + 60],
                )
            })
        })
        .collect();

    // Calibrate l_spe to this machine's full-work service time, then
    // build a flash crowd whose burst overwhelms it several-fold.
    let probe = ExecutionPolicy::deadline(Duration::from_millis(100));
    for req in pool.iter().take(16) {
        std::hint::black_box(service.serve(req, &probe));
    }
    let t0 = Instant::now();
    for req in pool.iter().cycle().take(128) {
        std::hint::black_box(service.serve(req, &probe));
    }
    let full_rps = 128.0 / t0.elapsed().as_secs_f64();
    let l_spe = Duration::from_secs_f64(8.0 / full_rps)
        .clamp(Duration::from_millis(2), Duration::from_millis(100));

    let trace = flash_crowd_arrivals(
        BurstConfig {
            base_rate: full_rps * 0.3,
            burst_rate: 0.8,
            burst_duration_s: 1.0,
            amplification: 12.0,
            seed: 17,
        },
        3.0,
    );
    let delays = arrival_delays(&trace.arrivals, 1.0);
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = SmallRng::seed_from_u64(29);
    let requests: Vec<(ActiveUser, Duration)> = delays
        .iter()
        .map(|&d| (pool[zipf.sample(&mut rng)].clone(), d))
        .collect();
    println!(
        "flash crowd: {} requests over {:.1} s (base {:.0} req/s, burst x12), \
         l_spe {:.2} ms, full-work capacity ~{:.0} req/s",
        requests.len(),
        3.0,
        full_rps * 0.3,
        l_spe.as_secs_f64() * 1e3,
        full_rps,
    );

    let none = replay(&service, &requests, l_spe, None);
    let ladder = replay(
        &service,
        &requests,
        l_spe,
        Some(LadderController::new(LadderConfig {
            step_fraction: 1.0,
            ..LadderConfig::for_deadline(l_spe)
        })),
    );

    println!("\n{:<14}{:>12}{:>12}", "", "NoControl", "Ladder");
    for (label, a, b) in [
        (
            "miss rate",
            none.missed as f64 / none.served.max(1) as f64,
            ladder.missed as f64 / ladder.served.max(1) as f64,
        ),
        ("p99 ms", none.p99_ms, ladder.p99_ms),
        ("coverage", none.mean_coverage, ladder.mean_coverage),
        (
            "degraded",
            none.degraded as f64 / requests.len() as f64,
            ladder.degraded as f64 / requests.len() as f64,
        ),
        (
            "shed",
            none.shed as f64 / requests.len() as f64,
            ladder.shed as f64 / requests.len() as f64,
        ),
    ] {
        println!("{label:<14}{a:>12.3}{b:>12.3}");
    }
    println!(
        "\nthe ladder trades a little coverage *deliberately* (policy_applied \
         shows Budgeted/SynopsisOnly)\ninstead of letting queue wait expire \
         every deadline into zero-coverage answers."
    );
}

//! Incremental synopsis maintenance under a changing input dataset —
//! the paper's offline-module evaluation (Figure 3).
//!
//! Creates a synopsis once, then streams batches of additions and content
//! changes through `apply_updates`, showing that (a) updates are much
//! cheaper than re-creation and (b) only the affected aggregated points are
//! regenerated.
//!
//! ```text
//! cargo run --release --example synopsis_maintenance
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;
use std::time::Instant;

fn main() {
    // A component's subset: 3 000 users × 300 items.
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: 3000,
        n_items: 300,
        ratings_per_user: 60,
        ..RatingsConfig::small()
    });
    let mut store_rows = accuracytrader::recommender::rating_matrix(3000, 300, &data.ratings);

    let t0 = Instant::now();
    let (mut store, report) = SynopsisStore::build(
        &store_rows,
        AggregationMode::Mean,
        SynopsisConfig {
            size_ratio: 50,
            ..SynopsisConfig::default()
        },
    );
    let create_ms = t0.elapsed().as_secs_f64() * 1000.0;
    println!(
        "created synopsis: {} points -> {} aggregated, {:.0} ms",
        report.n_points, report.n_aggregated, create_ms
    );

    println!(
        "\n{:<28} {:>10} {:>12} {:>14} {:>12}",
        "update batch", "time (ms)", "vs create", "regenerated", "groups"
    );
    for pct in [1usize, 2, 5, 10] {
        // Category 1: pct% new users arrive.
        let n = store_rows.len() * pct / 100;
        let adds: Vec<DataUpdate> = (0..n)
            .map(|i| DataUpdate::Add(store_rows.row((i * 13 % store_rows.len()) as u64).clone()))
            .collect();
        let rep = store.apply_updates(&mut store_rows, adds);
        println!(
            "{:<28} {:>10.1} {:>11.1}x {:>9}/{:<4} {:>12}",
            format!("add {pct}% new users"),
            rep.duration.as_secs_f64() * 1000.0,
            create_ms / (rep.duration.as_secs_f64() * 1000.0),
            rep.regenerated,
            rep.group_count,
            rep.group_count
        );

        // Category 2: pct% of existing users change their ratings.
        let changes: Vec<DataUpdate> = (0..n)
            .map(|i| {
                let id = (i * 31 % 3000) as u64;
                let row = store_rows.row(id);
                let bumped = SparseRow::from_pairs(
                    row.iter().map(|(c, v)| (c, (v + 1.0).min(5.0))).collect(),
                );
                DataUpdate::Change { id, row: bumped }
            })
            .collect();
        let rep = store.apply_updates(&mut store_rows, changes);
        println!(
            "{:<28} {:>10.1} {:>11.1}x {:>9}/{:<4} {:>12}",
            format!("change {pct}% of users"),
            rep.duration.as_secs_f64() * 1000.0,
            create_ms / (rep.duration.as_secs_f64() * 1000.0),
            rep.regenerated,
            rep.group_count,
            rep.group_count
        );
    }

    store
        .validate()
        .expect("store consistent after all updates");
    println!("\nstore validated: tree, index file, and synopsis agree.");
}

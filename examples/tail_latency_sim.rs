//! Tail-latency shoot-out on the simulated cluster — a miniature of the
//! paper's Table 1 plus the partial-execution deadline-miss analysis.
//!
//! Simulates a 108-component fan-out service co-located with MapReduce
//! jobs, under rising request rates, comparing all four techniques.
//!
//! ```text
//! cargo run --release --example tail_latency_sim
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;
use accuracytrader::workloads::poisson_arrivals;

fn main() {
    let cfg = SimConfig {
        n_components: 108,
        n_nodes: 30,
        sample_every: 100,
        ..SimConfig::default()
    };
    println!(
        "cluster: {} components on {} nodes; exact cost {:.1} ms, synopsis {:.2} ms, {} ranked sets",
        cfg.n_components,
        cfg.n_nodes,
        cfg.cost.exact_s * 1000.0,
        cfg.cost.synopsis_s * 1000.0,
        cfg.cost.n_sets
    );

    println!(
        "\n{:<8} {:>12} {:>12} {:>14} {:>18} {:>16}",
        "rate", "Basic p999", "Reissue p999", "AT p999 (ms)", "Partial made-dl", "AT sets (mean)"
    );
    for rate in [20.0, 40.0, 60.0, 80.0, 100.0] {
        let arrivals = poisson_arrivals(rate, 30.0, 7);

        let basic = simulate(&arrivals, Technique::Basic, &cfg);
        let reissue = simulate(
            &arrivals,
            Technique::Reissue {
                trigger_percentile: 95.0,
            },
            &cfg,
        );
        let partial = simulate(&arrivals, Technique::Partial { deadline_s: 0.1 }, &cfg);
        let at = simulate(
            &arrivals,
            Technique::AccuracyTrader {
                deadline_s: 0.1,
                imax: None,
            },
            &cfg,
        );

        let made: usize = partial
            .samples
            .iter()
            .flat_map(|s| s.made_deadline.as_ref().expect("mask"))
            .map(|&m| usize::from(m))
            .sum();
        let total: usize = partial
            .samples
            .iter()
            .map(|s| s.made_deadline.as_ref().expect("mask").len())
            .sum();
        let sets: usize = at
            .samples
            .iter()
            .flat_map(|s| s.sets_processed.as_ref().expect("sets"))
            .sum();
        let n_sets: usize = at
            .samples
            .iter()
            .map(|s| s.sets_processed.as_ref().expect("sets").len())
            .sum();

        println!(
            "{:<8.0} {:>12.0} {:>12.0} {:>14.0} {:>17.1}% {:>16.1}",
            rate,
            basic.latencies.p999_ms(),
            reissue.latencies.p999_ms(),
            at.latencies.p999_ms(),
            made as f64 / total as f64 * 100.0,
            sets as f64 / n_sets as f64,
        );
    }
    println!(
        "\nReading: Basic saturates past ~40 req/s; reissue delays the cliff;\n\
         AccuracyTrader holds its ~100 ms deadline by shrinking the improvement\n\
         budget (right column) while partial execution misses ever more deadlines."
    );
}

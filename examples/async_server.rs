//! The async serving front end: multiplex a burst of in-flight requests
//! through `Server` micro-batching, with queue wait counted against
//! deadlines and the telemetry an admission controller would watch.
//!
//! ```text
//! cargo run --release --example async_server
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;
use accuracytrader::workloads::Zipf;
use rand::{rngs::SmallRng, SeedableRng};
use std::time::Instant;

fn main() {
    let n_components = 6;
    let n_users = 1200;
    let n_items = 150;

    // Offline: build the recommender deployment.
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 50,
        ..RatingsConfig::small()
    });
    let matrix = rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, n_components).expect("n_components >= 1");
    let service = FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            size_ratio: 15,
            ..SynopsisConfig::default()
        },
        || CfService,
    );

    // A pool of active users whose requests the zipf mix repeats.
    let pool: Vec<ActiveUser> = (0..24u32)
        .filter_map(|user| {
            let profile: Vec<(u32, f64)> = data
                .ratings
                .iter()
                .filter(|r| r.user == user)
                .map(|r| (r.item, r.stars))
                .collect();
            (profile.len() >= 4).then(|| {
                ActiveUser::new(
                    SparseRow::from_pairs(profile),
                    vec![user % 5, user % 5 + 30, user % 5 + 60],
                )
            })
        })
        .collect();

    // Online: start the async front end over the service.
    let server = Server::from_service(
        service,
        ServerConfig::default()
            .with_queue_capacity(8192)
            .with_max_batch(64),
    );
    println!(
        "server up: {} components, queue capacity 8192, micro-batch cap 64",
        n_components
    );

    // A burst of 4096 zipf-mixed requests, all in flight at once.
    let n_burst = 4096;
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = SmallRng::seed_from_u64(11);
    let policy = ExecutionPolicy::budgeted(4);
    let start = Instant::now();
    let tickets: Vec<_> = (0..n_burst)
        .map(|_| {
            server
                .submit(pool[zipf.sample(&mut rng)].clone(), policy)
                .expect("server accepting")
        })
        .collect();
    let mut latencies: Vec<f64> = tickets
        .into_iter()
        .map(|t| t.wait().expect("fulfilled").elapsed.as_secs_f64() * 1e3)
        .collect();
    let wall = start.elapsed();
    latencies.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let p = |q: f64| latencies[((latencies.len() as f64 * q) as usize).min(latencies.len() - 1)];

    println!(
        "\nburst of {n_burst} requests served in {:.0} ms ({:.0} req/s)",
        wall.as_secs_f64() * 1e3,
        n_burst as f64 / wall.as_secs_f64()
    );
    println!(
        "latency p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms (includes queue wait)",
        p(0.50),
        p(0.95),
        p(0.99)
    );

    let stats = server.stats();
    println!("\ntelemetry (the admission controller's feedback signals):");
    println!("  micro-batches dispatched: {}", stats.batches_dispatched);
    println!("  mean batch size:          {:.1}", stats.mean_batch_size());
    println!("  max queue depth:          {}", stats.max_queue_depth);
    println!(
        "  queue wait mean/max:      {:.2} ms / {:.2} ms",
        stats.mean_queue_wait().as_secs_f64() * 1e3,
        stats.queue_wait_max.as_secs_f64() * 1e3
    );
    println!(
        "  output-pool reuses:       {}",
        server.service().pool().reuses()
    );

    let final_stats = server.shutdown();
    println!(
        "\nshutdown drained cleanly: {} submitted, {} completed, {} in flight",
        final_stats.submitted, final_stats.completed, final_stats.in_flight
    );
}

//! Quickstart: build one component's synopsis offline, then answer a
//! request online with accuracy-aware approximate processing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use accuracytrader::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Offline: one component's subset of input data — a user-item rating
    // matrix of 1 000 users × 200 items.
    // ------------------------------------------------------------------
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: 1000,
        n_items: 200,
        ratings_per_user: 60,
        ..RatingsConfig::small()
    });
    let matrix = rating_matrix(1000, 200, &data.ratings);
    println!(
        "subset: {} users, {} items, {} ratings",
        1000,
        200,
        data.len()
    );

    // Synopsis creation: SVD reduction -> R-tree grouping -> aggregation.
    let config = SynopsisConfig {
        size_ratio: 40, // synopsis ~40x smaller than the subset
        ..SynopsisConfig::default()
    };
    let (component, report) =
        Component::build(matrix, AggregationMode::Mean, config, CfService);
    println!(
        "synopsis: {} aggregated users (mean group {:.1}), built in {:.0} ms \
         (SVD {:.0} ms, R-tree {:.0} ms, aggregation {:.0} ms)",
        report.n_aggregated,
        report.mean_group_size,
        report.total_time().as_secs_f64() * 1000.0,
        report.reduce_time.as_secs_f64() * 1000.0,
        report.organize_time.as_secs_f64() * 1000.0,
        report.aggregate_time.as_secs_f64() * 1000.0,
    );

    // ------------------------------------------------------------------
    // Online: an active user wants rating predictions for two items.
    // ------------------------------------------------------------------
    let profile: Vec<(u32, f64)> = data
        .ratings
        .iter()
        .filter(|r| r.user == 0 && r.item > 1)
        .map(|r| (r.item, r.stars))
        .collect();
    let active = ActiveUser::new(SparseRow::from_pairs(profile), vec![0, 1]);

    // Exact baseline: full computation over the entire subset.
    let exact = compose_predictions(&active, &[component.exact(&active)]);

    // Approximate processing under increasing budgets (ranked sets of
    // original users, most accuracy-correlated first).
    println!("\n{:<22} {:>10} {:>10} {:>12}", "budget", "item 0", "item 1", "sets used");
    for budget in [0usize, 2, 8, usize::MAX] {
        let outcome = component.approx_budgeted(&active, None, budget);
        let sets = outcome.sets_processed;
        let preds = compose_predictions(&active, &[outcome.output]);
        let label = if budget == usize::MAX {
            "all sets (= exact)".to_string()
        } else {
            format!("{budget} ranked sets")
        };
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>12}",
            label, preds[0], preds[1], sets
        );
    }
    println!(
        "{:<22} {:>10.3} {:>10.3} {:>12}",
        "exact baseline", exact[0], exact[1], "-"
    );
}

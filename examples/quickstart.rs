//! Quickstart: build a one-component service's synopsis offline, then
//! serve a request online under different execution policies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Offline: one component's subset of input data — a user-item rating
    // matrix of 1 000 users × 200 items.
    // ------------------------------------------------------------------
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: 1000,
        n_items: 200,
        ratings_per_user: 60,
        ..RatingsConfig::small()
    });
    let matrix = rating_matrix(1000, 200, &data.ratings);
    println!(
        "subset: {} users, {} items, {} ratings",
        1000,
        200,
        data.len()
    );

    // Synopsis creation: SVD reduction -> R-tree grouping -> aggregation.
    let config = SynopsisConfig {
        size_ratio: 40, // synopsis ~40x smaller than the subset
        ..SynopsisConfig::default()
    };
    let (component, report) = Component::build(matrix, AggregationMode::Mean, config, CfService);
    println!(
        "synopsis: {} aggregated users (mean group {:.1}), built in {:.0} ms \
         (SVD {:.0} ms, R-tree {:.0} ms, aggregation {:.0} ms)",
        report.n_aggregated,
        report.mean_group_size,
        report.total_time().as_secs_f64() * 1000.0,
        report.reduce_time.as_secs_f64() * 1000.0,
        report.organize_time.as_secs_f64() * 1000.0,
        report.aggregate_time.as_secs_f64() * 1000.0,
    );
    let service = FanOutService::from_components(vec![component]);

    // ------------------------------------------------------------------
    // Online: an active user wants rating predictions for two items.
    // ------------------------------------------------------------------
    let profile: Vec<(u32, f64)> = data
        .ratings
        .iter()
        .filter(|r| r.user == 0 && r.item > 1)
        .map(|r| (r.item, r.stars))
        .collect();
    let active = ActiveUser::new(SparseRow::from_pairs(profile), vec![0, 1]);

    // Exact baseline: full computation over the entire subset.
    let exact = service.serve(&active, &ExecutionPolicy::Exact);

    // Approximate processing under increasing budgets (ranked sets of
    // original users, most accuracy-correlated first). `serve` fans out,
    // composes, and reports how much ranked data was touched.
    println!(
        "\n{:<22} {:>10} {:>10} {:>12}",
        "policy", "item 0", "item 1", "sets used"
    );
    for policy in [
        ExecutionPolicy::SynopsisOnly,
        ExecutionPolicy::budgeted(2),
        ExecutionPolicy::budgeted(8),
        ExecutionPolicy::budgeted(usize::MAX),
    ] {
        let served = service.serve(&active, &policy);
        let label = match policy {
            ExecutionPolicy::SynopsisOnly => "synopsis only".to_string(),
            ExecutionPolicy::Budgeted {
                sets: usize::MAX, ..
            } => "all sets (= exact)".to_string(),
            ExecutionPolicy::Budgeted { sets, .. } => format!("{sets} ranked sets"),
            _ => unreachable!(),
        };
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>12}",
            label,
            served.response[0],
            served.response[1],
            served.sets_processed()
        );
    }
    println!(
        "{:<22} {:>10.3} {:>10.3} {:>12}",
        "exact baseline", exact.response[0], exact.response[1], "-"
    );

    // The production policy: the paper's 100 ms deadline, measured from
    // submission — telemetry shows how far improvement got.
    let timed = service.serve(&active, &ExecutionPolicy::recommender());
    println!(
        "\n100 ms deadline: predictions [{:.3}, {:.3}], coverage {:.0}%, {:.2} ms",
        timed.response[0],
        timed.response[1],
        timed.mean_coverage() * 100.0,
        timed.elapsed.as_secs_f64() * 1000.0
    );
}

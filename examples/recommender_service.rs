//! A fan-out CF recommender service: the paper's first evaluated workload.
//!
//! Partitions a rating matrix across parallel components, builds every
//! component's synopsis, then compares exact vs. accuracy-aware approximate
//! processing — both prediction quality (RMSE vs. held-out ratings) and the
//! amount of input data actually touched.
//!
//! ```text
//! cargo run --release --example recommender_service
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use accuracytrader::prelude::*;
use accuracytrader::recommender::rmse;

fn main() {
    let n_components = 8;
    let n_users = 2400;
    let n_items = 200;

    // Generate MovieLens-like data and hold out 20% of each user's ratings.
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 60,
        ..RatingsConfig::small()
    });
    let (train, holdout) = data.holdout_split(0.8, 99);

    // Partition users round-robin across components, build synopses.
    let matrix = rating_matrix(n_users, n_items, &train);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, n_components).expect("n_components >= 1");
    let service = FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            size_ratio: 20,
            ..SynopsisConfig::default()
        },
        || CfService,
    );
    println!(
        "deployment: {} components, {} users, {} train ratings",
        service.len(),
        n_users,
        train.len()
    );

    // Evaluate 40 active users.
    let mut evals = Vec::new();
    for user in 0..40u32 {
        let profile: Vec<(u32, f64)> = train
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        let mut held: Vec<(u32, f64)> = holdout
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        // ActiveUser sorts its targets; keep the actuals parallel.
        held.sort_by_key(|h| h.0);
        if held.is_empty() || profile.len() < 4 {
            continue;
        }
        let targets: Vec<u32> = held.iter().map(|h| h.0).collect();
        let actual: Vec<f64> = held.iter().map(|h| h.1).collect();
        evals.push((
            ActiveUser::new(SparseRow::from_pairs(profile), targets),
            actual,
        ));
    }

    println!("\n{:<18} {:>10} {:>14}", "mode", "RMSE", "data touched");
    for budget in [0usize, 1, 4, usize::MAX] {
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        let mut touched = 0usize;
        let mut available = 0usize;
        let policy = ExecutionPolicy::budgeted(budget);
        for (active, actual) in &evals {
            let served = service.serve(active, &policy);
            touched += served.sets_processed();
            available += served.sets_total();
            preds.extend(served.response);
            actuals.extend_from_slice(actual);
        }
        let label = if budget == usize::MAX {
            "all ranked sets".to_string()
        } else {
            format!("{budget} sets/comp")
        };
        println!(
            "{:<18} {:>10.4} {:>13.1}%",
            label,
            rmse(&preds, &actuals),
            touched as f64 / available as f64 * 100.0
        );
    }

    // The exact baseline for reference.
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    for (active, actual) in &evals {
        preds.extend(service.serve(active, &ExecutionPolicy::Exact).response);
        actuals.extend_from_slice(actual);
    }
    println!(
        "{:<18} {:>10.4} {:>13.1}%",
        "exact",
        rmse(&preds, &actuals),
        100.0
    );
}

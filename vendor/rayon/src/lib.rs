//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no access to crates.io, so this vendor crate
//! provides the (small) subset of rayon's parallel-iterator API that the
//! workspace actually uses, with the same names and bounds. Work is really
//! executed in parallel: each `map`/`flat_map_iter` stage fans its items out
//! over `std::thread::scope` chunks sized by `available_parallelism`, and
//! results are returned in input order, exactly like rayon's indexed
//! parallel iterators.
//!
//! Supported surface:
//!
//! * `par_iter()` on slices / `Vec` (via deref), `into_par_iter()` on
//!   `Vec<T>`, arrays, `Range<{u32,usize,u64,i32}>`, `RangeInclusive<usize>`.
//! * Adapters: `map`, `enumerate`, `flat_map_iter`.
//! * Consumers: `collect`, `sum`, `reduce(identity, op)`.

use std::thread;

/// Evaluate `f` over `items` in parallel, preserving input order.
fn parallel_map<T, O, F>(items: Vec<T>, f: &F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    thread::scope(|s| {
        let mut items = items;
        let mut out_chunks: Vec<&mut [Option<O>]> = slots.chunks_mut(chunk).collect();
        // Drain input chunks front-to-back so chunk i lines up with the
        // i-th output slice.
        let mut in_chunks: Vec<Vec<T>> = Vec::with_capacity(out_chunks.len());
        while !items.is_empty() {
            let take = chunk.min(items.len());
            in_chunks.push(items.drain(..take).collect());
        }
        for (input, output) in in_chunks.into_iter().zip(out_chunks.drain(..)) {
            s.spawn(move || {
                for (slot, item) in output.iter_mut().zip(input) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("parallel_map: worker filled every slot"))
        .collect()
}

/// The subset of rayon's `ParallelIterator` the workspace relies on.
///
/// Adapters are lazy descriptions; [`ParallelIterator::run`] materialises
/// the items, executing closure stages in parallel.
pub trait ParallelIterator: Sized + Send
where
    Self::Item: Send,
{
    type Item;

    /// Evaluate the pipeline into an ordered `Vec`.
    fn run(self) -> Vec<Self::Item>;

    fn map<O: Send, F: Fn(Self::Item) -> O + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Map each item to a serial iterator and flatten (rayon's
    /// `flat_map_iter`): `f` runs in parallel, flattening is sequential.
    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync + Send,
    {
        FlatMapIter { base: self, f }
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Fold all items with `op`, starting from `identity()` (rayon's
    /// shape; associativity is the caller's contract).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Eagerly materialised source of a parallel pipeline.
pub struct IterBridge<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterBridge<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, O, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    P::Item: Send,
    O: Send,
    F: Fn(P::Item) -> O + Sync + Send,
{
    type Item = O;

    fn run(self) -> Vec<O> {
        parallel_map(self.base.run(), &self.f)
    }
}

pub struct Enumerate<P> {
    base: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
    P::Item: Send,
{
    type Item = (usize, P::Item);

    fn run(self) -> Vec<(usize, P::Item)> {
        self.base.run().into_iter().enumerate().collect()
    }
}

pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, I, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    P::Item: Send,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Sync + Send,
{
    type Item = I::Item;

    fn run(self) -> Vec<I::Item> {
        let f = &self.f;
        let nested = parallel_map(self.base.run(), &|item| {
            f(item).into_iter().collect::<Vec<_>>()
        });
        nested.into_iter().flatten().collect()
    }
}

/// Owned conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> IterBridge<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge {
            items: self.into_iter().collect(),
        }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> IterBridge<$t> {
                IterBridge { items: self.collect() }
            }
        }
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> IterBridge<$t> {
                IterBridge { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par_iter!(u32, u64, usize, i32, i64);

/// Borrowed conversion (`par_iter`); implemented on `[T]` so `Vec` and
/// slices both pick it up through deref.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> IterBridge<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> IterBridge<&T> {
        IterBridge {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i32> = (0..1000).collect();
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_ranges() {
        let hours: Vec<usize> = (1..=24usize).into_par_iter().map(|h| h).collect();
        assert_eq!(hours, (1..=24).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_flat_map_sum_reduce() {
        let v = [1usize, 2, 3, 4];
        let pairs: Vec<(usize, usize)> = v
            .par_iter()
            .enumerate()
            .flat_map_iter(|(i, &x)| std::iter::repeat_n((i, x), 2))
            .collect();
        assert_eq!(pairs.len(), 8);
        let s: usize = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 10);
        let r = v.par_iter().map(|&x| vec![x as f64]).reduce(
            || vec![0.0],
            |mut a, b| {
                a[0] += b[0];
                a
            },
        );
        assert_eq!(r, vec![10.0]);
    }
}

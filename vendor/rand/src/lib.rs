//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! The build environment has no access to crates.io, so this vendor crate
//! supplies the deterministic-PRNG surface the workspace uses: seedable
//! generators ([`rngs::SmallRng`], [`rngs::StdRng`] — both xoshiro256++
//! seeded through SplitMix64), the core [`Rng`] trait, and the [`RngExt`]
//! extension with `random()` / `random_range()`.
//!
//! Streams are fully determined by the seed; every generator in the
//! workspace is constructed via [`SeedableRng::seed_from_u64`], so
//! reproducibility matches what the tests demand of the real crate.

use std::ops::{Range, RangeInclusive};

/// Core generator trait: a source of uniformly distributed `u64`s.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// A uniform `u32` (upper 32 bits of the next word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The named generators the workspace imports.
pub mod rngs {
    use super::{Rng, SeedableRng, Xoshiro256PlusPlus};

    /// Small fast generator (stand-in for rand's `SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// "Standard" generator (stand-in for rand's `StdRng`); same core,
    /// distinct stream via a seed tweak.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::seed_from_u64(
                seed ^ 0xA5A5_5A5A_F00D_CAFE,
            ))
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types drawable uniformly from a generator (`rng.random()`).
pub trait Standard: Sized {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (`rng.random_range(lo..hi)`).
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u = f64::draw(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let u = f64::draw(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience extension over any [`Rng`] (what rand spreads across `Rng`
/// and its distributions API).
pub trait RngExt: Rng {
    /// A uniform draw of `T` (`f64`/`f32` in `[0,1)`, full-range ints).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from a (half-open or inclusive) range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let k = rng.random_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = rng.random_range(1..=4usize);
            assert!((1..=4).contains(&k));
            let x = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed counts: {counts:?}");
        }
    }
}

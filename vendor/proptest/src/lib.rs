//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this vendor crate
//! implements the strategy surface the workspace's property tests use:
//! numeric-range strategies, tuples, `prop::collection::vec`,
//! `prop::array::uniform{2,3}`, `prop_map` / `prop_flat_map`, weighted
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are generated from a per-case deterministic seed.
//!
//! **No shrinking**: a failing case reports its inputs (via the panic
//! message of the failed assertion) but is not minimised. For the
//! invariant-style tests in this workspace that trade-off is acceptable —
//! failures remain reproducible because generation is seed-deterministic.

use rand::rngs::SmallRng;
use rand::{RngExt, SampleRange, SeedableRng};

/// The generator handed to strategies; deterministic per test case.
pub type TestRng = SmallRng;

/// Build the RNG for one test case.
pub fn rng_for_case(case: u64) -> TestRng {
    // Distinct odd multiplier decorrelates consecutive case streams.
    TestRng::seed_from_u64(0x5EED_0000_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Error type carried out of a failed `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from any displayable reason (`map_err(TestCaseError::fail)`).
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Numeric ranges are strategies (uniform over the range).
impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Weighted union of strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof!: no options");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof!: zero total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick < total_weight by construction")
    }
}

/// `prop::collection` / `prop::array` namespaces.
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod array {
        use super::super::{Strategy, TestRng};

        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.element.generate(rng))
            }
        }

        pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
            UniformArray { element }
        }

        pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
            UniformArray { element }
        }

        pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
            UniformArray { element }
        }
    }
}

/// Length distribution for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rand::RngExt::random_range(rng, self.lo..=self.hi_inclusive)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Run each test body over `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::rng_for_case(case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case}/{} failed: {e}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( ($weight, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..=8) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..=8).contains(&n));
        }

        #[test]
        fn vec_and_arrays(v in prop::collection::vec(0u8..10, 2..6),
                          a in prop::array::uniform2(-1.0f64..1.0)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(a.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn maps_and_oneof(x in prop_oneof![2 => (0u32..5).prop_map(|v| v * 10), 1 => Just(99u32)]) {
            prop_assert!(x == 99 || x % 10 == 0, "unexpected {x}");
        }

        #[test]
        fn flat_map_dependent(pair in (4usize..=12).prop_flat_map(|max| {
            (2usize..=(max / 2)).prop_map(move |min| (min, max))
        })) {
            let (min, max) = pair;
            prop_assert!(min >= 2 && min <= max / 2);
        }
    }
}

//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so this vendor crate
//! provides a minimal wall-clock timing harness behind criterion's API
//! names (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`). Each benchmark runs a handful of timed iterations and
//! prints the mean — enough to compare runs by hand; no statistics,
//! plots, or outlier analysis.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value sink (re-exported name).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup; ignored by this shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_mean: Duration::ZERO,
        }
    }

    /// Time `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            total += start.elapsed();
            hint::black_box(&out);
        }
        self.last_mean = total / self.samples as u32;
    }

    /// Time `routine` with untimed per-sample `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            total += start.elapsed();
            hint::black_box(&out);
        }
        self.last_mean = total / self.samples as u32;
    }
}

const SHIM_SAMPLES: usize = 3;

fn report(group: &str, id: &str, mean: Duration) {
    if group.is_empty() {
        println!("bench {id:<40} mean {mean:?} ({SHIM_SAMPLES} samples)");
    } else {
        println!("bench {group}/{id:<40} mean {mean:?} ({SHIM_SAMPLES} samples)");
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's minimum is 10; the shim always uses its own tiny count,
    /// so this only exists for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher::new(SHIM_SAMPLES);
        f(&mut b);
        report(&self.name, &id, b.last_mean);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher::new(SHIM_SAMPLES);
        f(&mut b, input);
        report(&self.name, &id, b.last_mean);
        self
    }

    pub fn finish(self) {}
}

/// The harness entry object handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher::new(SHIM_SAMPLES);
        f(&mut b);
        report("", &id, b.last_mean);
        self
    }
}

/// Define a function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Deterministic schedule exploration of the control-plane protocols
//! (ISSUE 9, dynamic side; see ANALYSIS.md "Concurrency contracts").
//!
//! The serving stack's dispatcher/steal/supervisor protocols are
//! modeled at small configurations on `at-sched` shims and every
//! interleaving of their synchronization operations is enumerated
//! (DFS, optionally preemption-bounded). Each clean protocol asserts a
//! minimum distinct-interleaving count so a future refactor cannot
//! quietly shrink the explored space to triviality, and two positive
//! controls (a seeded lock-order deadlock and a seeded read-then-remove
//! double-resolve) prove the explorer actually detects the defect
//! classes the static rules exist to prevent.
//!
//! Models mirror `at-server`'s shapes, not its code: a bounded queue
//! drained under a Condvar with a stop flag (dispatch_loop), steal-ring
//! drain-under-one-guard ticket handoff (try_steal), and the
//! restart-budget supervisor (supervise).

use at_sched::Explorer;

/// Bounded-queue submit/drain: two producers race a stopper and a
/// drainer. The drainer waits on a Condvar with the canonical
/// predicate loop; the stopper sets `stopped` under the same lock.
/// Checked across EVERY interleaving:
/// - no lost wakeup / missed stop: exploration finding a deadlock
///   would mean some schedule parks the drainer forever;
/// - conservation: accepted == drained + still-queued, and every
///   submission was either accepted or rejected by the bound.
#[test]
fn bounded_queue_submit_drain_no_lost_wakeup() {
    #[derive(Default)]
    struct QueueState {
        queue: Vec<u32>,
        accepted: u32,
        rejected: u32,
        stopped: bool,
    }
    const CAPACITY: usize = 1;
    const PRODUCERS: u32 = 2;

    let report = Explorer::new().with_max_preemptions(2).explore(|sched| {
        let state = sched.mutex(QueueState::default());
        let work = sched.condvar();
        let drained = sched.atomic(0);
        for item in 0..PRODUCERS {
            let (state, work) = (state.clone(), work.clone());
            sched.thread(move || {
                let mut st = state.lock();
                if st.queue.len() < CAPACITY {
                    st.queue.push(item);
                    st.accepted += 1;
                } else {
                    st.rejected += 1;
                }
                drop(st);
                work.notify_all();
            });
        }
        {
            let (state, work) = (state.clone(), work.clone());
            sched.thread(move || {
                let mut st = state.lock();
                st.stopped = true;
                drop(st);
                work.notify_all();
            });
        }
        {
            let (state, work, drained) = (state.clone(), work.clone(), drained.clone());
            sched.thread(move || {
                let mut st = state.lock();
                loop {
                    if st.queue.pop().is_some() {
                        drop(st);
                        drained.fetch_add(1);
                        st = state.lock();
                        continue;
                    }
                    if st.stopped {
                        // Stopped observed with the queue empty: the
                        // only sanctioned exit.
                        break;
                    }
                    st = work.wait(st);
                }
            });
        }
        let (state, drained) = (state.clone(), drained.clone());
        sched.check(move || {
            let st = state.lock();
            assert!(st.stopped, "drainer exited without observing Stopped");
            assert_eq!(
                u64::from(st.accepted),
                drained.load() + st.queue.len() as u64,
                "accepted work neither drained nor queued"
            );
            assert_eq!(st.accepted + st.rejected, PRODUCERS);
        });
    });
    report.assert_ok();
    assert!(
        report.schedules >= 100,
        "exploration shrank to {} interleavings — not a meaningful check",
        report.schedules
    );
    assert!(!report.capped, "exploration hit the schedule cap");
}

/// Steal-ring ticket delivery: a victim drains its own queue one
/// ticket at a time while a thief steals with the sanctioned
/// drain-under-one-guard idiom. Every ticket must be resolved exactly
/// once in every interleaving.
#[test]
fn steal_ring_delivers_each_ticket_exactly_once() {
    const TICKETS: usize = 4;
    let report = Explorer::new().explore(|sched| {
        let queue = sched.mutex((0..TICKETS as u32).collect::<Vec<u32>>());
        let resolved = sched.mutex(vec![0u32; TICKETS]);
        {
            let (queue, resolved) = (queue.clone(), resolved.clone());
            sched.thread(move || loop {
                let mut q = queue.lock();
                let Some(ticket) = q.pop() else { break };
                drop(q);
                let mut r = resolved.lock();
                if let Some(count) = r.get_mut(ticket as usize) {
                    *count += 1;
                }
            });
        }
        {
            let (queue, resolved) = (queue.clone(), resolved.clone());
            sched.thread(move || {
                let mut q = queue.lock();
                let stolen: Vec<u32> = q.drain(..).collect();
                drop(q);
                for ticket in stolen {
                    let mut r = resolved.lock();
                    if let Some(count) = r.get_mut(ticket as usize) {
                        *count += 1;
                    }
                }
            });
        }
        let resolved = resolved.clone();
        sched.check(move || {
            let r = resolved.lock();
            for (ticket, &count) in r.iter().enumerate() {
                assert_eq!(count, 1, "ticket {ticket} resolved {count} times");
            }
        });
    });
    report.assert_ok();
    assert!(
        report.schedules >= 100,
        "exploration shrank to {} interleavings",
        report.schedules
    );
    assert!(!report.capped, "exploration hit the schedule cap");
}

/// Supervisor restart budget, the never-stops-early half: with crashes
/// within budget and progress between them, no interleaving stops the
/// supervisor, and the restart count lands exactly on the crash count
/// (monotone by construction — it only ever increments).
#[test]
fn supervisor_within_budget_never_stops() {
    supervisor_model(2, 2, |restarts, stopped| {
        assert!(!stopped, "supervisor stopped with budget to spare");
        assert_eq!(restarts, 2, "every in-budget crash earns a restart");
    });
}

/// ...and the always-stops half: one crash past the budget trips the
/// stop in EVERY interleaving, with restarts capped at the budget.
#[test]
fn supervisor_beyond_budget_always_stops() {
    supervisor_model(3, 2, |restarts, stopped| {
        assert!(stopped, "budget exceeded but supervisor kept going");
        assert_eq!(restarts, 2, "restarts exceeded the budget");
    });
}

/// Shared supervisor model: a crasher raises `crashes` crash events
/// (notifying after each) and then announces completion; the
/// supervisor handles events in order, restarting while the budget
/// lasts and stopping on the first crash past it.
fn supervisor_model(crashes: u32, budget: u32, verify: fn(u32, bool)) {
    #[derive(Default)]
    struct SupState {
        crashes: u32,
        restarts: u32,
        crasher_done: bool,
        stopped: bool,
    }
    let report = Explorer::new().explore(move |sched| {
        let state = sched.mutex(SupState::default());
        let event = sched.condvar();
        {
            let (state, event) = (state.clone(), event.clone());
            sched.thread(move || {
                for _ in 0..crashes {
                    let mut st = state.lock();
                    st.crashes += 1;
                    drop(st);
                    event.notify_all();
                }
                let mut st = state.lock();
                st.crasher_done = true;
                drop(st);
                event.notify_all();
            });
        }
        {
            let (state, event) = (state.clone(), event.clone());
            sched.thread(move || {
                let mut handled = 0;
                let mut st = state.lock();
                loop {
                    if handled < st.crashes {
                        handled += 1;
                        if st.restarts == budget {
                            st.stopped = true;
                            break;
                        }
                        st.restarts += 1;
                        continue;
                    }
                    if st.crasher_done {
                        break;
                    }
                    st = event.wait(st);
                }
            });
        }
        let state = state.clone();
        sched.check(move || {
            let st = state.lock();
            assert!(
                st.restarts <= budget,
                "restart count {} overran the budget {budget}",
                st.restarts
            );
            verify(st.restarts, st.stopped);
        });
    });
    report.assert_ok();
    assert!(
        report.schedules >= 100,
        "exploration shrank to {} interleavings",
        report.schedules
    );
    assert!(!report.capped, "exploration hit the schedule cap");
}

/// Positive control: the explorer must catch an opposite-order two-lock
/// acquisition as a deadlock — the dynamic twin of the static
/// `lock-order` rule.
#[test]
fn positive_control_opposite_lock_order_deadlocks() {
    let report = Explorer::new().explore(|sched| {
        let a = sched.mutex(());
        let b = sched.mutex(());
        {
            let (a, b) = (a.clone(), b.clone());
            sched.thread(move || {
                let _a = a.lock();
                let _b = b.lock();
            });
        }
        {
            let (a, b) = (a.clone(), b.clone());
            sched.thread(move || {
                let _b = b.lock();
                let _a = a.lock();
            });
        }
    });
    assert_eq!(
        report.deadlocks, 1,
        "seeded deadlock went undetected: {report:?}"
    );
    assert!(
        report.defect_trace.is_some(),
        "deadlock reported without a schedule trace"
    );
}

/// Positive control: a thief that peeks under one guard and removes
/// under another double-resolves a ticket in some interleaving — the
/// defect the drain-under-one-guard idiom exists to rule out. The
/// explorer must find the failing schedule.
#[test]
fn positive_control_read_then_remove_double_resolves() {
    let report = Explorer::new().explore(|sched| {
        let queue = sched.mutex(vec![0u32]);
        let resolved = sched.mutex(vec![0u32; 1]);
        {
            let (queue, resolved) = (queue.clone(), resolved.clone());
            sched.thread(move || loop {
                let mut q = queue.lock();
                let Some(ticket) = q.pop() else { break };
                drop(q);
                let mut r = resolved.lock();
                if let Some(count) = r.get_mut(ticket as usize) {
                    *count += 1;
                }
            });
        }
        {
            let (queue, resolved) = (queue.clone(), resolved.clone());
            sched.thread(move || {
                // BUG under test: snapshot then clear under separate
                // guards — the victim can resolve in between.
                let snapshot: Vec<u32> = queue.lock().clone();
                for ticket in snapshot {
                    let mut r = resolved.lock();
                    if let Some(count) = r.get_mut(ticket as usize) {
                        *count += 1;
                    }
                }
                queue.lock().clear();
            });
        }
        let resolved = resolved.clone();
        sched.check(move || {
            let r = resolved.lock();
            for (ticket, &count) in r.iter().enumerate() {
                assert_eq!(count, 1, "ticket {ticket} resolved {count} times");
            }
        });
    });
    assert!(
        !report.failures.is_empty(),
        "seeded double-resolve went undetected: {report:?}"
    );
    assert!(
        report.defect_trace.is_some(),
        "failure reported without a schedule trace"
    );
}

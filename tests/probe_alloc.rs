//! Dynamic half of the **hot-path-alloc** invariant (static half:
//! `cargo run -p at-analysis -- --check`; see ANALYSIS.md).
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! proves, at runtime, what the lint claims statically:
//!
//! 1. a warm single-component `execute_pooled` request makes **zero**
//!    allocations — scratch is thread-local, the output buffer comes
//!    from the pool, ranking is in place;
//! 2. a warm `serve_batch` of 64 requests allocates the same number of
//!    times under `SynopsisOnly` (zero improvement work) as under
//!    `Budgeted { sets: MAX }` (maximal improvement work) — i.e. the
//!    per-set improvement loop contributes **zero** allocations, the
//!    only allocations left are the O(batch) response envelopes;
//! 3. across repeated warm `serve_batch_64` calls the allocator's net
//!    outstanding bytes do not move: the steady state neither leaks nor
//!    grows buffers.
//!
//! The file holds exactly ONE `#[test]` so no sibling test thread can
//! touch the global counters mid-measurement. The deployment uses one
//! component so the vendored rayon shim runs inline (no worker spawns).

// The counting allocator is the one sanctioned use of `unsafe` in the
// workspace; the root package downgrades forbid->deny to let this
// file-scoped allow through.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::time::Instant;

use at_bench::deployments::{build_recommender, DeployScale};
use at_core::ExecutionPolicy;
use at_recommender::ActiveUser;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static OUTSTANDING: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        OUTSTANDING.fetch_add(layout.size() as isize, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        OUTSTANDING.fetch_sub(layout.size() as isize, Ordering::SeqCst);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        OUTSTANDING.fetch_add(new_size as isize - layout.size() as isize, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

fn outstanding() -> isize {
    OUTSTANDING.load(Ordering::SeqCst)
}

#[test]
fn warm_hot_path_is_allocation_free() {
    // One component => the rayon shim fans out inline on this thread.
    let dep = build_recommender(DeployScale {
        n_components: 1,
        rows_per_component: 150,
        n_columns: 120,
        n_requests: 80,
        seed: 7,
    });
    let service = &dep.service;
    let batch: Vec<ActiveUser> = dep
        .requests
        .iter()
        .cycle()
        .take(64)
        .map(|r| r.active.clone())
        .collect();
    assert!(!dep.requests.is_empty(), "deployment produced no requests");

    // --- 1. Warm single-request component path: literally zero. -------
    let comp = &service.components()[0];
    let pool = service.pool();
    let req = &dep.requests[0].active;
    let policy = ExecutionPolicy::budgeted(3);
    let submitted = Instant::now();
    for _ in 0..8 {
        let out = comp.execute_pooled(req, &policy, submitted, pool);
        pool.put(out.output);
    }
    let before = allocs();
    for _ in 0..32 {
        let out = comp.execute_pooled(req, &policy, submitted, pool);
        black_box(out.sets_processed);
        pool.put(out.output);
    }
    assert_eq!(
        allocs() - before,
        0,
        "warm execute_pooled allocated — a hot-path-alloc regression the \
         static pass missed (new callee? construct not in the forbid list?)"
    );

    // --- 2. serve_batch_64: allocations independent of the budget. ----
    let zero_work = ExecutionPolicy::SynopsisOnly;
    let max_work = ExecutionPolicy::Budgeted {
        sets: usize::MAX,
        imax: None,
    };
    for _ in 0..3 {
        black_box(service.serve_batch(&batch, &zero_work));
        black_box(service.serve_batch(&batch, &max_work));
    }
    let a = allocs();
    black_box(service.serve_batch(&batch, &zero_work));
    let cost_zero_work = allocs() - a;
    let a = allocs();
    black_box(service.serve_batch(&batch, &zero_work));
    let cost_zero_work_again = allocs() - a;
    let a = allocs();
    black_box(service.serve_batch(&batch, &max_work));
    let cost_max_work = allocs() - a;
    assert_eq!(
        cost_zero_work, cost_zero_work_again,
        "warm serve_batch_64 is not in an allocation steady state"
    );
    assert_eq!(
        cost_max_work, cost_zero_work,
        "processing every ranked set allocated more than processing none — \
         the per-set improvement loop is supposed to be allocation-free"
    );

    // --- 3. Warm steady state neither leaks nor grows. ----------------
    let bytes = outstanding();
    for _ in 0..5 {
        black_box(service.serve_batch(&batch, &max_work));
    }
    assert_eq!(
        outstanding() - bytes,
        0,
        "repeated warm serve_batch_64 shifted net outstanding bytes — \
         a leak or unbounded buffer growth in the steady state"
    );
}

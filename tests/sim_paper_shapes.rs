//! The paper's qualitative results must hold in the simulator: who wins,
//! where the crossovers fall, and how the techniques degrade (Tables 1–2,
//! Figures 5–8 shapes).

use accuracytrader::prelude::*;
use accuracytrader::workloads::poisson_arrivals;

fn cfg() -> SimConfig {
    SimConfig {
        n_components: 36,
        n_nodes: 12,
        sample_every: 50,
        ..SimConfig::default()
    }
}

fn p999(rate: f64, technique: Technique) -> f64 {
    let arrivals = poisson_arrivals(rate, 30.0, 11);
    simulate(&arrivals, technique, &cfg()).latencies.p999_ms()
}

const REISSUE: Technique = Technique::Reissue {
    trigger_percentile: 95.0,
};
const AT: Technique = Technique::AccuracyTrader {
    deadline_s: 0.1,
    imax: None,
};

#[test]
fn reissue_wins_at_light_load() {
    // Paper Table 1, rate 20: reissue < basic < AccuracyTrader.
    let basic = p999(20.0, Technique::Basic);
    let reissue = p999(20.0, REISSUE);
    let at = p999(20.0, AT);
    assert!(reissue < basic, "reissue {reissue} !< basic {basic}");
    assert!(
        at >= basic * 0.5,
        "AT ({at}) should not be dramatically faster than basic ({basic}) when load is light"
    );
}

#[test]
fn accuracy_trader_wins_under_heavy_load_by_a_large_factor() {
    // Paper §4.3: >40x tail reduction vs reissue under load.
    let reissue = p999(80.0, REISSUE);
    let at = p999(80.0, AT);
    assert!(
        reissue > at * 20.0,
        "expected a large reduction: reissue {reissue} vs AT {at}"
    );
}

#[test]
fn accuracy_trader_tail_is_flat_across_loads() {
    // Paper: "consistent low tail latencies by requiring each component
    // completing processing within 100ms" (actual slightly longer).
    let tails: Vec<f64> = [20.0, 60.0, 100.0].iter().map(|&r| p999(r, AT)).collect();
    for t in &tails {
        assert!(
            (50.0..=250.0).contains(t),
            "AT tail must hug the 100 ms deadline: {tails:?}"
        );
    }
    let spread = tails.iter().cloned().fold(0.0, f64::max)
        - tails.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 100.0, "AT tail must be flat: {tails:?}");
}

#[test]
fn basic_explodes_past_the_cliff() {
    // Paper Table 1: basic grows by orders of magnitude from 40 to 60+.
    let light = p999(20.0, Technique::Basic);
    let heavy = p999(80.0, Technique::Basic);
    assert!(
        heavy > light * 30.0,
        "saturation cliff missing: light {light}, heavy {heavy}"
    );
}

#[test]
fn partial_skips_grow_with_load() {
    let frac_made = |rate: f64| {
        let arrivals = poisson_arrivals(rate, 30.0, 3);
        let r = simulate(&arrivals, Technique::Partial { deadline_s: 0.1 }, &cfg());
        let made: usize = r
            .samples
            .iter()
            .flat_map(|s| s.made_deadline.as_ref().expect("mask"))
            .map(|&m| usize::from(m))
            .sum();
        let total: usize = r
            .samples
            .iter()
            .map(|s| s.made_deadline.as_ref().expect("mask").len())
            .sum();
        made as f64 / total as f64
    };
    let light = frac_made(20.0);
    let mid = frac_made(60.0);
    let heavy = frac_made(100.0);
    assert!(
        light > 0.95,
        "light load should make nearly all deadlines: {light}"
    );
    assert!(
        heavy < mid && mid < light,
        "skips must grow: {light} {mid} {heavy}"
    );
    assert!(heavy < 0.5, "heavy load must skip most components: {heavy}");
}

#[test]
fn accuracy_trader_budget_shrinks_with_load_but_never_dies() {
    let mean_sets = |rate: f64| {
        let arrivals = poisson_arrivals(rate, 30.0, 3);
        let r = simulate(&arrivals, AT, &cfg());
        let total: usize = r
            .samples
            .iter()
            .flat_map(|s| s.sets_processed.as_ref().expect("sets"))
            .sum();
        let n: usize = r
            .samples
            .iter()
            .map(|s| s.sets_processed.as_ref().expect("sets").len())
            .sum();
        total as f64 / n as f64
    };
    let light = mean_sets(20.0);
    let heavy = mean_sets(100.0);
    assert!(light > heavy, "budget must shrink: {light} -> {heavy}");
    assert!(
        light > 0.6 * CostModel::default().n_sets as f64,
        "light load should process most sets: {light}"
    );
    assert!(
        heavy > 0.0,
        "even saturated, the synopsis floor guarantees ranking"
    );
}

#[test]
fn diurnal_day_reproduces_figure7_ordering() {
    let pattern = DiurnalPattern::sogou_like(60.0);
    let cfg = cfg();
    let hour_tail = |hour: usize, technique: Technique| {
        accuracytrader::sim::run_hour_window(&pattern, hour, 60.0, technique, &cfg)
            .latencies
            .p999_ms()
    };
    // Quiet hour 4: reissue best.
    let b4 = hour_tail(4, Technique::Basic);
    let r4 = hour_tail(4, REISSUE);
    assert!(r4 <= b4, "hour 4: reissue {r4} !<= basic {b4}");
    // Busy hour 22: AT far ahead of both.
    let b22 = hour_tail(22, Technique::Basic);
    let r22 = hour_tail(22, REISSUE);
    let a22 = hour_tail(22, AT);
    assert!(a22 < r22 && a22 < b22, "hour 22: AT {a22} vs {r22}/{b22}");
    assert!(
        b22 > b4 * 5.0,
        "hour 22 must be much worse than hour 4 for basic"
    );
}

#[test]
fn reissue_rescues_node_outages() {
    // Failure injection: transient node crashes inflate Basic's tail badly;
    // reissue routes around them (the backup lives on a different node).
    use accuracytrader::sim::FailureConfig;
    let failing = SimConfig {
        failures: Some(FailureConfig {
            mtbf_s: 120.0,
            mttr_s: 2.0,
            seed: 9,
        }),
        ..cfg()
    };
    let arrivals = poisson_arrivals(20.0, 30.0, 11);
    let basic = simulate(&arrivals, Technique::Basic, &failing)
        .latencies
        .p999_ms();
    let reissue = simulate(&arrivals, REISSUE, &failing).latencies.p999_ms();
    assert!(
        basic > 500.0,
        "2 s outages must show in basic's p99.9: {basic}"
    );
    assert!(
        reissue < basic / 2.0,
        "reissue must rescue crashed sub-ops: reissue {reissue} vs basic {basic}"
    );
}

#[test]
fn accuracy_trader_survives_outages_with_degraded_coverage() {
    use accuracytrader::sim::FailureConfig;
    let failing = SimConfig {
        failures: Some(FailureConfig {
            mtbf_s: 120.0,
            mttr_s: 2.0,
            seed: 9,
        }),
        ..cfg()
    };
    let arrivals = poisson_arrivals(20.0, 30.0, 11);
    let r = simulate(&arrivals, AT, &failing);
    // The deadline is blown while a node is down (no technique can compute
    // through a crash; the synopsis floor runs after recovery), so AT's
    // p99.9 reflects the outage length — but it must not be worse than
    // Basic's, and processing must resume between outages.
    let at_tail = r.latencies.p999_ms();
    let basic_tail = simulate(&arrivals, Technique::Basic, &failing)
        .latencies
        .p999_ms();
    assert!(
        at_tail <= basic_tail * 1.2,
        "AT under failures ({at_tail}) must not exceed basic ({basic_tail})"
    );
    let sets: usize = r
        .samples
        .iter()
        .flat_map(|s| s.sets_processed.as_ref().expect("sets"))
        .sum();
    assert!(sets > 0, "improvement must still happen between outages");
}

#[test]
fn hybrid_reissue_cuts_accuracy_traders_outage_tail() {
    // The paper positions AccuracyTrader as complementary to reissue: our
    // Hybrid technique reissues straggling AT sub-ops. Under node outages
    // the hybrid's tail must beat plain AT's (whose sub-ops wait out the
    // crash), while keeping the same deadline behaviour otherwise.
    use accuracytrader::sim::FailureConfig;
    let failing = SimConfig {
        failures: Some(FailureConfig {
            mtbf_s: 90.0,
            mttr_s: 3.0,
            seed: 4,
        }),
        ..cfg()
    };
    let arrivals = poisson_arrivals(20.0, 40.0, 13);
    let plain = simulate(&arrivals, AT, &failing).latencies.p999_ms();
    let hybrid = simulate(
        &arrivals,
        Technique::Hybrid {
            deadline_s: 0.1,
            imax: None,
            trigger_percentile: 95.0,
        },
        &failing,
    )
    .latencies
    .p999_ms();
    assert!(
        hybrid < plain / 2.0,
        "hybrid must rescue outage stragglers: hybrid {hybrid} vs AT {plain}"
    );
    // Without failures both stay near the deadline.
    let calm = cfg();
    let h_calm = simulate(
        &arrivals,
        Technique::Hybrid {
            deadline_s: 0.1,
            imax: None,
            trigger_percentile: 95.0,
        },
        &calm,
    )
    .latencies
    .p999_ms();
    assert!(
        h_calm < 250.0,
        "hybrid without failures stays near deadline: {h_calm}"
    );
}

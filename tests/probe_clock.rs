//! Dynamic half of the **clock-discipline** invariant (static half:
//! `cargo run -p at-analysis -- --check`; see ANALYSIS.md).
//!
//! Every serving-stack clock read routes through `at_core::clock`, whose
//! relaxed read counter makes the clock-free contract observable. This
//! probe pins the exact read counts:
//!
//! * component-level `execute_batch` under a clock-free policy performs
//!   **zero** reads — policy decisions cannot depend on wall time, which
//!   is what makes duplicate collapsing and deterministic replay sound;
//! * `serve_batch_at` under a clock-free policy reads exactly once per
//!   response (the `elapsed` telemetry stamp) and `serve_batch` adds one
//!   shared submission stamp — telemetry only, nothing steering;
//! * a live `Deadline` policy reads more (positive control: the counter
//!   actually observes the deadline checks).
//!
//! ONE `#[test]` in this file: the counter is global, so no sibling test
//! thread may tick it mid-measurement. One component keeps the rayon
//! shim inline and the counts exact.

use std::time::{Duration, Instant};

use at_bench::deployments::{build_recommender, DeployScale};
use at_core::{clock, ExecutionPolicy};
use at_recommender::ActiveUser;

#[test]
fn clock_free_policies_never_read_the_clock() {
    let dep = build_recommender(DeployScale {
        n_components: 1,
        rows_per_component: 150,
        n_columns: 120,
        n_requests: 80,
        seed: 7,
    });
    let service = &dep.service;
    let batch: Vec<ActiveUser> = dep
        .requests
        .iter()
        .cycle()
        .take(64)
        .map(|r| r.active.clone())
        .collect();
    let submitted: Vec<Instant> = vec![Instant::now(); batch.len()];

    // --- Component level: zero reads under every clock-free policy. ---
    let comp = &service.components()[0];
    for policy in [
        ExecutionPolicy::SynopsisOnly,
        ExecutionPolicy::budgeted(5),
        ExecutionPolicy::Budgeted {
            sets: usize::MAX,
            imax: None,
        },
    ] {
        let r = clock::reads();
        let outs = comp.execute_batch(&batch, &policy, &submitted);
        assert_eq!(outs.len(), batch.len());
        assert_eq!(
            clock::reads() - r,
            0,
            "{policy:?} is clock-free but execute_batch read the clock — \
             a clock-discipline regression the static pass missed"
        );
    }

    // --- Serve level: telemetry stamps only, in exact numbers. --------
    let r = clock::reads();
    let responses = service.serve_batch_at(&batch, &ExecutionPolicy::SynopsisOnly, &submitted);
    assert_eq!(
        clock::reads() - r,
        responses.len() as u64,
        "serve_batch_at under a clock-free policy must read exactly once \
         per response (the elapsed telemetry stamp)"
    );

    let r = clock::reads();
    let responses = service.serve_batch(&batch, &ExecutionPolicy::budgeted(5));
    assert_eq!(
        clock::reads() - r,
        1 + responses.len() as u64,
        "serve_batch adds exactly one shared submission stamp on top of \
         the per-response elapsed stamps"
    );

    // --- Positive control: a live deadline really ticks the counter. --
    let deadline = ExecutionPolicy::Deadline {
        l_spe: Duration::from_millis(100),
        imax: None,
    };
    let r = clock::reads();
    let responses = service.serve_batch(&batch, &deadline);
    assert!(
        clock::reads() - r > 1 + responses.len() as u64,
        "a live Deadline policy must check the clock while improving — \
         if this fails the counter is no longer observing the hot path"
    );
}

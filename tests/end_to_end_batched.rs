//! End-to-end batched serving under realistic request streams: zipf query
//! mixes batched by diurnal / flash-crowd arrival processes from
//! `at-workloads`, driven through `FanOutService::serve_batch` for both
//! evaluated services and checked against the sequential path, coverage
//! telemetry, and top-k/top-n invariants.

use accuracytrader::prelude::*;
use accuracytrader::workloads::{flash_crowd_arrivals, variable_rate_arrivals, BurstConfig};
use std::time::{Duration, Instant};

/// Group sorted arrival offsets (seconds) into serving batches of `window`
/// seconds each, dropping empty windows — the accept loop's batching.
fn batch_windows(arrivals: &[f64], window: f64) -> Vec<Vec<f64>> {
    let mut batches: Vec<Vec<f64>> = Vec::new();
    let mut current = Vec::new();
    let mut edge = window;
    for &t in arrivals {
        while t >= edge {
            if !current.is_empty() {
                batches.push(std::mem::take(&mut current));
            }
            edge += window;
        }
        current.push(t);
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// A zipf-skewed stream of indices into a request pool (the paper's query
/// popularity skew: a few hot requests dominate the mix).
fn zipf_mix(pool: usize, n: usize, seed: u64) -> Vec<usize> {
    use accuracytrader::workloads::Zipf;
    use rand::{rngs::SmallRng, SeedableRng};
    let zipf = Zipf::new(pool, 1.1);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| zipf.sample(&mut rng)).collect()
}

fn recommender_deployment() -> (FanOutService<CfService>, Vec<ActiveUser>) {
    let n_users = 600;
    let n_items = 90;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 40,
        ..RatingsConfig::small()
    });
    let matrix = accuracytrader::recommender::rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, 4).expect("4 components");
    let service = FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            svd: SvdConfig::default().with_epochs(15),
            size_ratio: 15,
            ..SynopsisConfig::default()
        },
        || CfService,
    );
    let mut pool = Vec::new();
    for user in 0..20u32 {
        let profile: Vec<(u32, f64)> = data
            .ratings
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        if profile.len() < 4 {
            continue;
        }
        pool.push(ActiveUser::new(
            SparseRow::from_pairs(profile),
            vec![user % 7, user % 7 + 20, user % 7 + 40],
        ));
    }
    (service, pool)
}

fn search_deployment() -> (FanOutService<SearchService>, Vec<SearchRequest>) {
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: 1200,
        vocab: 2000,
        n_topics: 10,
        ..CorpusConfig::default()
    });
    let rows: Vec<SparseRow> = corpus
        .docs
        .iter()
        .map(|d| SparseRow::from_pairs(d.terms.clone()))
        .collect();
    let subsets = partition_rows(corpus.config.vocab, rows, 4).expect("4 components");
    let components: Vec<accuracytrader::core::Component<SearchService>> = subsets
        .into_iter()
        .map(|subset| {
            let engine = SearchService::build(&subset, 10);
            accuracytrader::core::Component::build(
                subset,
                AggregationMode::Merge,
                SynopsisConfig {
                    svd: SvdConfig::default().with_epochs(15),
                    size_ratio: 15,
                    ..SynopsisConfig::default()
                },
                engine,
            )
            .0
        })
        .collect();
    let service = FanOutService::from_components(components);
    // The query pool the zipf mix draws from (QueryGenerator is already
    // topic-skewed; the mix adds per-query popularity skew on top).
    let mut generator = QueryGenerator::new(&corpus, 23);
    let queries = generator
        .batch(&corpus, 25)
        .iter()
        .map(SearchRequest::from)
        .collect();
    (service, queries)
}

#[test]
fn recommender_diurnal_batches_match_sequential_serve() {
    let (service, pool) = recommender_deployment();
    // Diurnal arrival curve (Figure 7(a) shape) thinned into arrivals over
    // a compressed "day", batched by 0.5 s accept windows.
    let diurnal = DiurnalPattern::sogou_like(60.0);
    // Compress the 24-hour curve into 36 s (1.5 s per "hour"; hours are
    // 1-based).
    let arrivals = variable_rate_arrivals(
        |t| diurnal.hourly_rate(((t / 1.5) as usize) % 24 + 1),
        60.0,
        36.0,
        11,
    );
    let batches = batch_windows(&arrivals, 0.5);
    assert!(batches.len() > 10, "diurnal stream must yield many batches");
    assert!(
        batches.iter().map(Vec::len).max().unwrap() > batches.iter().map(Vec::len).min().unwrap(),
        "diurnal batches must vary in size"
    );

    let policy = ExecutionPolicy::budgeted(3);
    let mix = zipf_mix(pool.len(), arrivals.len(), 5);
    let mut served = 0usize;
    for batch in batches.iter().take(12) {
        let reqs: Vec<ActiveUser> = batch
            .iter()
            .map(|_| {
                let req = pool[mix[served % mix.len()]].clone();
                served += 1;
                req
            })
            .collect();
        let batched = service.serve_batch(&reqs, &policy);
        assert_eq!(batched.len(), reqs.len());
        for (req, got) in reqs.iter().zip(&batched) {
            let want = service.serve(req, &policy);
            assert_eq!(got.response, want.response, "batched != sequential");
            assert_eq!(got.components, want.components);
            // Coverage telemetry: a 3-set budget against a >3-set synopsis
            // is strictly partial but nonzero.
            assert!(got.mean_coverage() > 0.0 && got.mean_coverage() < 1.0);
            assert!(got.min_coverage() <= got.mean_coverage());
            assert_eq!(got.sets_skipped(), 0);
            // Top-n invariant: one plausible star rating per target.
            assert_eq!(got.response.len(), req.targets.len());
            for p in &got.response {
                assert!((1.0..=5.0).contains(p), "prediction {p} out of range");
            }
        }
    }
    assert!(served > 30, "replayed a meaningful stream, got {served}");
}

#[test]
fn search_flash_crowd_batches_match_sequential_serve() {
    let (service, queries) = search_deployment();
    // A flash crowd: baseline arrivals with amplified burst windows, so
    // batch sizes spike exactly when batching matters most.
    let trace = flash_crowd_arrivals(
        BurstConfig {
            base_rate: 25.0,
            burst_rate: 0.5,
            burst_duration_s: 2.0,
            amplification: 6.0,
            seed: 3,
        },
        8.0,
    );
    let batches = batch_windows(&trace.arrivals, 0.25);
    assert!(batches.len() > 8, "burst stream must yield many batches");
    assert!(
        !trace.windows.is_empty(),
        "trace must contain a flash crowd"
    );
    let peak = batches.iter().map(Vec::len).max().unwrap();
    let floor = batches.iter().map(Vec::len).min().unwrap();
    assert!(peak > floor, "burst batches must dwarf baseline batches");

    let n_sets = service.components()[0].store().synopsis().len();
    let imax = ExecutionPolicy::imax_for_fraction(n_sets, 0.4);
    let policy = ExecutionPolicy::Budgeted {
        sets: usize::MAX,
        imax: Some(imax),
    };
    let mix = zipf_mix(queries.len(), trace.arrivals.len(), 29);
    let mut served = 0usize;
    for batch in &batches {
        let reqs: Vec<SearchRequest> = batch
            .iter()
            .map(|_| {
                let req = queries[mix[served % mix.len()]].clone();
                served += 1;
                req
            })
            .collect();
        let batched = service.serve_batch(&reqs, &policy);
        for (req, got) in reqs.iter().zip(&batched) {
            let want = service.serve(req, &policy);
            // Top-k invariants: identical ranked ids, at most k results,
            // scores sorted descending.
            assert_eq!(got.response.doc_ids(), want.response.doc_ids());
            assert!(got.response.len() <= 10);
            let hits = got.response.sorted();
            for w in hits.windows(2) {
                assert!(w[0].score >= w[1].score, "top-k not sorted");
            }
            // Coverage telemetry: i_max caps every component's processing.
            for c in &got.components {
                assert!(c.sets_processed <= imax);
            }
            assert!(
                got.mean_coverage() < 1.0,
                "i_max must keep coverage partial"
            );
            assert_eq!(got.components, want.components);
        }
    }
    assert!(served >= trace.arrivals.len(), "whole trace replayed");
}

#[test]
fn batched_deadline_accounting_is_per_request_end_to_end() {
    let (service, pool) = recommender_deployment();
    let policy = ExecutionPolicy::deadline(Duration::from_secs(30));
    let now = Instant::now();
    let Some(past) = now.checked_sub(Duration::from_secs(60)) else {
        return; // monotonic clock younger than the offset (fresh boot)
    };
    // The accept loop hands over a batch where two requests sat in the
    // queue past their whole deadline.
    let reqs: Vec<ActiveUser> = (0..5).map(|i| pool[i % pool.len()].clone()).collect();
    let submitted: Vec<Instant> = (0..5)
        .map(|i| if i % 2 == 1 { past } else { now })
        .collect();
    let batched = service.serve_batch_at(&reqs, &policy, &submitted);
    for (i, (req, got)) in reqs.iter().zip(&batched).enumerate() {
        if i % 2 == 1 {
            assert_eq!(got.sets_processed(), 0, "expired request {i} sheds work");
            assert_eq!(got.mean_coverage(), 0.0);
            let synopsis_only = service.serve(req, &ExecutionPolicy::SynopsisOnly);
            assert_eq!(got.response, synopsis_only.response);
            assert!(
                got.elapsed >= Duration::from_secs(60),
                "elapsed counts queueing"
            );
        } else {
            assert_eq!(got.mean_coverage(), 1.0, "fresh request {i} fully improves");
        }
    }
}

#[test]
fn warm_batches_reuse_pooled_outputs() {
    let (service, queries) = search_deployment();
    let policy = ExecutionPolicy::budgeted(2);
    let reqs: Vec<SearchRequest> = (0..8).map(|i| queries[i % queries.len()].clone()).collect();
    let cold = service.serve_batch(&reqs, &policy);
    let before = service.pool().reuses();
    let warm = service.serve_batch(&reqs, &policy);
    assert!(
        service.pool().reuses() >= before + reqs.len() * service.len(),
        "a warm batch must recycle one buffer per (request, component)"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.response.doc_ids(), w.response.doc_ids());
        assert_eq!(c.components, w.components);
    }
}

//! Cross-crate offline-module properties: synopsis creation and
//! incremental updating behave as §4.2 reports.

use accuracytrader::prelude::*;
use accuracytrader::recommender::rating_matrix;

fn subset(n: usize) -> RowStore {
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: n,
        n_items: 150,
        ratings_per_user: 40,
        ..RatingsConfig::small()
    });
    rating_matrix(n, 150, &data.ratings)
}

fn config(ratio: usize) -> SynopsisConfig {
    SynopsisConfig {
        svd: SvdConfig::default().with_epochs(20),
        size_ratio: ratio,
        ..SynopsisConfig::default()
    }
}

#[test]
fn updating_is_much_cheaper_than_recreation() {
    // Paper §4.2: "all the updating processes were completed much faster
    // than the synopsis creation processes."
    let mut rows = subset(1500);
    let t0 = std::time::Instant::now();
    let (mut store, _) = SynopsisStore::build(&rows, AggregationMode::Mean, config(40));
    let create = t0.elapsed();

    let updates: Vec<DataUpdate> = (0..15) // 1% of the subset
        .map(|i| DataUpdate::Add(rows.row(i as u64).clone()))
        .collect();
    let report = store.apply_updates(&mut rows, updates);
    assert!(
        report.duration < create / 3,
        "1% update ({:?}) should be far cheaper than creation ({:?})",
        report.duration,
        create
    );
    store.validate().unwrap();
}

#[test]
fn update_cost_scales_with_change_fraction() {
    // Figure 3's x-axis trend: bigger batches take longer.
    let rows = subset(1500);
    let (store, _) = SynopsisStore::build(&rows, AggregationMode::Mean, config(40));
    let run_pct = |pct: usize| {
        let mut d = rows.clone();
        let mut s = store.clone();
        let n = d.len() * pct / 100;
        let updates: Vec<DataUpdate> = (0..n)
            .map(|i| DataUpdate::Add(d.row((i % 1500) as u64).clone()))
            .collect();
        s.apply_updates(&mut d, updates).duration
    };
    let small = run_pct(1);
    let large = run_pct(10);
    assert!(
        large > small,
        "10% batch ({large:?}) should cost more than 1% ({small:?})"
    );
}

#[test]
fn incremental_equals_rebuild_semantically() {
    // After updates, the incrementally maintained synopsis must describe
    // exactly the same dataset partitioning a fresh build would: every
    // aggregated point equals a fresh aggregation of its members, and the
    // members partition the full id space.
    let mut rows = subset(800);
    let (mut store, _) = SynopsisStore::build(&rows, AggregationMode::Mean, config(25));
    let updates: Vec<DataUpdate> = (0..40)
        .map(|i| {
            if i % 2 == 0 {
                DataUpdate::Add(rows.row(i as u64).clone())
            } else {
                let id = (i * 13 % 800) as u64;
                let row = rows.row(id);
                DataUpdate::Change {
                    id,
                    row: SparseRow::from_pairs(
                        row.iter().map(|(c, v)| (c, (v + 1.0).min(5.0))).collect(),
                    ),
                }
            }
        })
        .collect();
    store.apply_updates(&mut rows, updates);
    store.validate().unwrap();

    let mut all: Vec<u64> = store
        .index()
        .iter()
        .flat_map(|(_, m)| m.iter().copied())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..rows.len() as u64).collect::<Vec<_>>());
    for p in store.synopsis().iter() {
        let members = store.index().members(p.node).unwrap();
        let expect = rows.aggregate(members, AggregationMode::Mean);
        assert_eq!(p.info, expect, "stale aggregation for {:?}", p.node);
    }
}

#[test]
fn aggregation_ratio_tracks_config() {
    // §4.2 reports mean group sizes (133.01 users / 42.55 pages): the
    // achieved ratio must sit near the requested size_ratio (within the
    // R-tree's level granularity).
    let rows = subset(2000);
    for ratio in [20usize, 60] {
        let (_, report) = SynopsisStore::build(&rows, AggregationMode::Mean, config(ratio));
        assert!(
            report.mean_group_size > ratio as f64 / 4.0
                && report.mean_group_size < ratio as f64 * 4.0,
            "ratio {ratio}: mean group size {} too far off",
            report.mean_group_size
        );
    }
}

//! End-to-end chaos: seeded fault injection against the full serving
//! stack. A fault storm on one component must not stop the server — the
//! fan-out contains the dying legs, the circuit breaker turns repeated
//! failure into ~zero-cost skips, responses are composed from the
//! survivors **byte-identically** to a deployment that never had the
//! faulty component, and every ticket resolves. Faults that escape
//! containment (a panicking compose, on the dispatcher's own stack) are
//! absorbed by the supervisor: the dispatcher is respawned and queued
//! work survives.

use accuracytrader::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const COMPONENTS: usize = 3;

fn ratings() -> (usize, Vec<SparseRow>, Vec<ActiveUser>) {
    let n_users = 300;
    let n_items = 60;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 30,
        ..RatingsConfig::small()
    });
    let matrix = accuracytrader::recommender::rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let mut pool = Vec::new();
    for user in 0..24u32 {
        let profile: Vec<(u32, f64)> = data
            .ratings
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        if profile.len() < 4 {
            continue;
        }
        pool.push(ActiveUser::new(
            SparseRow::from_pairs(profile),
            vec![user % 5, user % 5 + 15, user % 5 + 30],
        ));
    }
    (n_items, rows, pool)
}

fn synopsis_config() -> SynopsisConfig {
    SynopsisConfig {
        svd: SvdConfig::default().with_epochs(10),
        size_ratio: 12,
        ..SynopsisConfig::default()
    }
}

/// The chaos deployment: one fault injector per component (the synopsis
/// build is deterministic, so separately built deployments over the same
/// partition are byte-identical).
fn chaos_service(
    n_items: usize,
    rows: &[SparseRow],
    injectors: &[Arc<FaultInjector>],
) -> FanOutService<FaultyService<CfService>> {
    let subsets = partition_rows(n_items, rows.to_vec(), COMPONENTS).expect("components");
    let components = subsets
        .into_iter()
        .zip(injectors)
        .map(|(subset, inj)| {
            Component::build(
                subset,
                AggregationMode::Mean,
                synopsis_config(),
                FaultyService::new(CfService, inj.clone()),
            )
            .0
        })
        .collect();
    FanOutService::from_components(components)
}

/// The plain reference deployment, optionally without one component —
/// what "serving without the faulty component" returns.
fn plain_service(
    n_items: usize,
    rows: &[SparseRow],
    skip: Option<usize>,
) -> FanOutService<CfService> {
    let subsets = partition_rows(n_items, rows.to_vec(), COMPONENTS).expect("components");
    let components = subsets
        .into_iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != skip)
        .map(|(_, subset)| {
            Component::build(subset, AggregationMode::Mean, synopsis_config(), CfService).0
        })
        .collect();
    FanOutService::from_components(components)
}

fn transparent_injectors() -> Vec<Arc<FaultInjector>> {
    (0..COMPONENTS)
        .map(|i| Arc::new(FaultInjector::new(1000 + i as u64)))
        .collect()
}

/// A stage-1 fault storm on component 0: the server keeps serving, every
/// ticket resolves, the breaker trips, and every partial response is
/// byte-identical to a deployment that never had the faulty component.
#[test]
fn fault_storm_on_one_component_keeps_the_server_serving() {
    let (n_items, rows, pool) = ratings();
    let mut injectors = transparent_injectors();
    injectors[0] = Arc::new(FaultInjector::new(7).with_rule(FaultRule::with_probability(
        FaultSite::Stage1,
        FaultKind::Panic,
        0.6,
    )));
    let storm = injectors[0].clone();
    let chaos = Arc::new(chaos_service(n_items, &rows, &injectors));
    let survivors_ref = plain_service(n_items, &rows, Some(0));
    let full_ref = plain_service(n_items, &rows, None);

    let server = Server::new(chaos.clone(), ServerConfig::default().with_max_batch(8));
    let policy = ExecutionPolicy::budgeted(2);
    let n = 60;
    server.pause();
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            let req = pool[i % pool.len()].clone();
            (req.clone(), server.try_submit(req, policy).expect("room"))
        })
        .collect();
    server.resume();

    let mut partial = 0usize;
    for (req, ticket) in tickets {
        let got = ticket
            .wait()
            .expect("contained faults never cancel tickets");
        if got.is_complete() {
            let want = full_ref.serve(&req, &policy);
            assert_eq!(got.response, want.response, "healthy rounds are exact");
        } else {
            assert_eq!(got.components_failed, vec![0], "only the stormed leg fails");
            partial += 1;
            let want = survivors_ref.serve(&req, &policy);
            assert_eq!(
                got.response, want.response,
                "survivors must be byte-identical to a deployment without the faulty component"
            );
        }
    }
    assert!(
        partial >= n / 2,
        "a 0.6 storm must fail most rounds: {partial}/{n}"
    );
    assert!(storm.injected_panics() > 0, "the storm actually fired");
    assert!(
        chaos.breakers()[0].trips() >= 1,
        "sustained failure must trip the breaker"
    );
    let stats = server.shutdown();
    assert_eq!(stats.completed, n as u64, "every ticket resolved");
    assert_eq!(
        stats.dispatcher_restarts, 0,
        "contained: dispatcher never died"
    );
    assert!(!stats.stopped);
}

/// Faults that escape containment: a compose panic kills the dispatcher
/// thread itself. The supervisor absorbs three of them — queued work
/// survives each restart, only the crashed batches' tickets cancel, and
/// the server stays fully operational afterwards.
#[test]
fn dispatcher_survives_three_compose_panics_via_supervised_restarts() {
    let (n_items, rows, pool) = ratings();
    let mut injectors = transparent_injectors();
    // Compose runs through component 0's service (the fan-out's composer):
    // its first three compose calls panic on the dispatcher's stack.
    injectors[0] = Arc::new(FaultInjector::new(11).with_rule(FaultRule::at_calls(
        FaultSite::Compose,
        FaultKind::Panic,
        vec![0, 1, 2],
    )));
    let poison = injectors[0].clone();
    let chaos = Arc::new(chaos_service(n_items, &rows, &injectors));
    let full_ref = plain_service(n_items, &rows, None);

    let server = Server::new(
        chaos,
        ServerConfig::default()
            .with_max_batch(1)
            .with_restart_backoff(Duration::from_micros(200)),
    );
    let policy = ExecutionPolicy::budgeted(2);
    server.pause();
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let req = pool[i % pool.len()].clone();
            (req.clone(), server.try_submit(req, policy).expect("room"))
        })
        .collect();
    server.resume();

    for (i, (req, ticket)) in tickets.into_iter().enumerate() {
        if i < 3 {
            assert!(
                ticket.wait().is_err(),
                "request {i} was in a crashed micro-batch: its ticket cancels"
            );
        } else {
            let got = ticket.wait().expect("queued work survives the restarts");
            let want = full_ref.serve(&req, &policy);
            assert_eq!(got.response, want.response, "post-restart rounds are exact");
        }
    }
    assert_eq!(poison.injected_panics(), 3);
    // Still serving after three dispatcher deaths.
    let req = pool[0].clone();
    let got = server
        .try_submit(req.clone(), policy)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(got.response, full_ref.serve(&req, &policy).response);
    let stats = server.shutdown();
    assert_eq!(
        stats.dispatcher_restarts, 3,
        "one supervised respawn per panic"
    );
    assert!(!stats.stopped, "the restart budget was never exhausted");
    assert_eq!(stats.completed, 4);
}

/// Forwards to a shared ladder so the test can keep a handle and read
/// the worker's overload level after shutdown.
struct SharedLadder(Arc<LadderController>);

impl AdmissionController for SharedLadder {
    fn observe(&self, snapshot: &LoadSnapshot) {
        self.0.observe(snapshot);
    }

    fn decide(&self, snapshot: &LoadSnapshot, requested: &ExecutionPolicy) -> Decision {
        self.0.decide(snapshot, requested)
    }
}

/// Hot-shard isolation: a compose-panic storm pinned to one worker of a
/// hash-routed cluster stays that worker's problem. Each worker owns its
/// own fault domain (its own injectors, dispatcher, supervisor, and
/// ladder controller), so the sibling workers lose **nothing**: zero
/// restarts, every ticket fulfilled byte-identically to the reference,
/// policies never rewritten, ladders never climbed.
#[test]
fn compose_panic_storm_on_one_worker_leaves_siblings_unaffected() {
    const WORKERS: usize = 3;
    const PANICS: u64 = 8;
    let (n_items, rows, pool) = ratings();

    // Per-worker fault domains need per-worker services: three separately
    // built (byte-identical) chaos deployments, wired as shards so each
    // worker owns its service outright. Worker 0's composer panics on its
    // first eight compose calls; every other injector is transparent.
    let mut worker_injectors: Vec<Vec<Arc<FaultInjector>>> =
        (0..WORKERS).map(|_| transparent_injectors()).collect();
    worker_injectors[0][0] = Arc::new(FaultInjector::new(17).with_rule(FaultRule::at_calls(
        FaultSite::Compose,
        FaultKind::Panic,
        (0..PANICS).collect(),
    )));
    let storm = worker_injectors[0][0].clone();
    let shards: Vec<_> = worker_injectors
        .iter()
        .map(|inj| chaos_service(n_items, &rows, inj))
        .collect();
    let full_ref = plain_service(n_items, &rows, None);

    // One ladder per worker — hot-shard isolation is per-worker control.
    // A generous wait budget keeps healthy workers deterministically at
    // level 0 on a loaded CI box.
    let ladders: Vec<Arc<LadderController>> = (0..WORKERS)
        .map(|_| {
            Arc::new(LadderController::new(LadderConfig::for_deadline(
                Duration::from_secs(30),
            )))
        })
        .collect();
    let cluster = ShardedServer::from_shards_with(
        shards,
        ShardConfig::default()
            .with_routing(RoutingStrategy::HashAffinity)
            .with_worker(
                ServerConfig::default()
                    .with_max_batch(1)
                    .with_max_restarts(16)
                    .with_restart_backoff(Duration::from_micros(200)),
            ),
        |i| Box::new(SharedLadder(ladders[i].clone())),
    );

    let policy = ExecutionPolicy::budgeted(2);
    let n = 72;
    // (request, home worker, ordinal among that home's submissions, ticket)
    let mut per_home = vec![0u64; WORKERS];
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            let req = pool[i % pool.len()].clone();
            let home = cluster.home_index(&req);
            let ordinal = per_home[home];
            per_home[home] += 1;
            let ticket = cluster.submit(req.clone(), policy).expect("accepting");
            (req, home, ordinal, ticket)
        })
        .collect();
    assert!(
        per_home[0] > PANICS && per_home.iter().all(|&c| c > 0),
        "the mix must exercise every worker: homes {per_home:?}"
    );

    for (req, home, ordinal, ticket) in tickets {
        if home == 0 && ordinal < PANICS {
            assert!(
                ticket.wait().is_err(),
                "worker 0's first {PANICS} rounds die in the composer"
            );
        } else {
            let got = ticket.wait().unwrap_or_else(|_| {
                panic!("sibling/healed round (home {home}, ordinal {ordinal}) must fulfil")
            });
            let want = full_ref.serve(&req, &policy);
            assert_eq!(
                got.response, want.response,
                "byte-identical to the reference"
            );
            assert_eq!(
                got.policy_applied, policy,
                "no worker's storm may degrade another worker's traffic"
            );
        }
    }

    assert_eq!(storm.injected_panics(), PANICS, "the storm fired exactly");
    for (i, ladder) in ladders.iter().enumerate() {
        assert_eq!(ladder.level(), 0, "worker {i}'s ladder never climbed");
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.requests_stolen(), 0, "sharded topology never steals");
    for (i, w) in stats.workers.iter().enumerate() {
        assert_eq!(
            w.submitted, per_home[i],
            "hash routing sent each home its keys"
        );
        assert_eq!(w.shed, 0, "nothing shed anywhere");
        assert!(!w.stopped, "no restart budget exhausted");
        if i == 0 {
            assert_eq!(
                w.dispatcher_restarts, PANICS,
                "one supervised respawn per panic, all on the stormed worker"
            );
            assert_eq!(w.completed, per_home[0] - PANICS);
        } else {
            assert_eq!(w.dispatcher_restarts, 0, "sibling {i} never restarted");
            assert_eq!(w.completed, per_home[i], "sibling {i} fulfilled everything");
        }
    }
}

/// Breaker lifecycle end to end: trip after the failure threshold, skip
/// the broken leg at ~zero cost (no stage-1 work) while open, then heal
/// through the half-open probe once the component recovers.
#[test]
fn breaker_trips_skips_at_zero_cost_and_recovers() {
    let (n_items, rows, pool) = ratings();
    let mut injectors = transparent_injectors();
    // Panic on the first three stage-1 passes, healthy forever after.
    injectors[0] = Arc::new(FaultInjector::new(13).with_rule(FaultRule::at_calls(
        FaultSite::Stage1,
        FaultKind::Panic,
        vec![0, 1, 2],
    )));
    let flaky = injectors[0].clone();
    let chaos = Arc::new(chaos_service(n_items, &rows, &injectors));
    let full_ref = plain_service(n_items, &rows, None);

    let server = Server::new(chaos.clone(), ServerConfig::default().with_max_batch(1));
    let policy = ExecutionPolicy::budgeted(2);
    let req = pool[0].clone();

    let mut recovered_at = None;
    for round in 0..25 {
        let got = server
            .try_submit(req.clone(), policy)
            .expect("room")
            .wait()
            .expect("contained faults never cancel");
        if got.is_complete() {
            recovered_at = Some(round);
            break;
        }
        assert_eq!(got.components_failed, vec![0]);
        if round == 5 {
            // Mid-cooldown: the open breaker is visible to the control
            // plane through the load snapshot.
            let load = server.stats().load;
            assert_eq!(load.components_total, COMPONENTS);
            assert_eq!(load.components_open, 1, "the broken leg reads as open");
        }
    }
    let recovered_at = recovered_at.expect("the half-open probe must heal the breaker");
    assert!(
        recovered_at > 3,
        "trip + cooldown must precede recovery, recovered at {recovered_at}"
    );
    assert_eq!(chaos.breakers()[0].trips(), 1, "tripped exactly once");
    assert_eq!(
        flaky.calls(FaultSite::Stage1),
        4,
        "zero-cost skips: only 3 faulted passes + 1 healing probe ran stage 1"
    );
    // Healed: byte-identical to the full reference deployment again.
    let got = server
        .try_submit(req.clone(), policy)
        .unwrap()
        .wait()
        .unwrap();
    assert!(got.is_complete());
    assert_eq!(got.response, full_ref.serve(&req, &policy).response);
    let stats = server.shutdown();
    assert_eq!(stats.dispatcher_restarts, 0);
    assert!(!stats.stopped);
}

//! End-to-end async serving: thousands of in-flight requests multiplexed
//! through `at_server::Server` against both evaluated services, with
//! queue wait provably counted against `Deadline` policies, equivalence
//! to the synchronous path under clock-free policies, arrival-process
//! replay through the accept loop, and drain-on-shutdown.

use accuracytrader::prelude::*;
use accuracytrader::workloads::{arrival_delays, flash_crowd_arrivals, BurstConfig, Zipf};
use rand::{rngs::SmallRng, SeedableRng};
use std::time::{Duration, Instant};

fn recommender_deployment() -> (FanOutService<CfService>, Vec<ActiveUser>) {
    let n_users = 600;
    let n_items = 90;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 40,
        ..RatingsConfig::small()
    });
    let matrix = accuracytrader::recommender::rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, 4).expect("4 components");
    let service = FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            svd: SvdConfig::default().with_epochs(15),
            size_ratio: 15,
            ..SynopsisConfig::default()
        },
        || CfService,
    );
    let mut pool = Vec::new();
    for user in 0..20u32 {
        let profile: Vec<(u32, f64)> = data
            .ratings
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        if profile.len() < 4 {
            continue;
        }
        pool.push(ActiveUser::new(
            SparseRow::from_pairs(profile),
            vec![user % 7, user % 7 + 20, user % 7 + 40],
        ));
    }
    (service, pool)
}

fn search_deployment() -> (FanOutService<SearchService>, Vec<SearchRequest>) {
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: 1200,
        vocab: 2000,
        n_topics: 10,
        ..CorpusConfig::default()
    });
    let rows: Vec<SparseRow> = corpus
        .docs
        .iter()
        .map(|d| SparseRow::from_pairs(d.terms.clone()))
        .collect();
    let subsets = partition_rows(corpus.config.vocab, rows, 4).expect("4 components");
    let components: Vec<accuracytrader::core::Component<SearchService>> = subsets
        .into_iter()
        .map(|subset| {
            let engine = SearchService::build(&subset, 10);
            accuracytrader::core::Component::build(
                subset,
                AggregationMode::Merge,
                SynopsisConfig {
                    svd: SvdConfig::default().with_epochs(15),
                    size_ratio: 15,
                    ..SynopsisConfig::default()
                },
                engine,
            )
            .0
        })
        .collect();
    let service = FanOutService::from_components(components);
    let mut generator = QueryGenerator::new(&corpus, 23);
    let queries = generator
        .batch(&corpus, 25)
        .iter()
        .map(SearchRequest::from)
        .collect();
    (service, queries)
}

/// The acceptance bar: ≥ 2,000 requests concurrently in flight against
/// one service, every response identical to the synchronous path, and
/// the telemetry accounting for all of them.
#[test]
fn server_sustains_two_thousand_in_flight_requests() {
    const IN_FLIGHT: usize = 2048;
    let (service, pool) = recommender_deployment();
    let server = Server::new(
        std::sync::Arc::new(service),
        ServerConfig::default()
            .with_queue_capacity(4096)
            .with_max_batch(64),
    );
    let policy = ExecutionPolicy::budgeted(2);

    // Pause dispatching so every submission verifiably queues up.
    server.pause();
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut tickets = Vec::with_capacity(IN_FLIGHT);
    for _ in 0..IN_FLIGHT {
        let req = pool[zipf.sample(&mut rng)].clone();
        let ticket = server
            .try_submit(req.clone(), policy)
            .expect("queue has room");
        tickets.push((req, ticket));
    }
    let queued = server.stats();
    assert!(
        queued.in_flight >= IN_FLIGHT as u64,
        "all {IN_FLIGHT} submissions must be concurrently in flight, got {}",
        queued.in_flight
    );
    assert!(queued.queue_depth >= IN_FLIGHT);
    assert!(queued.max_queue_depth >= IN_FLIGHT as u64);

    // Resume and collect every response; the policy is clock-free, so
    // each must be identical to serving the request synchronously.
    server.resume();
    let reference: Vec<ServiceResponse<Vec<f64>>> = pool
        .iter()
        .map(|req| server.service().serve(req, &policy))
        .collect();
    for (req, ticket) in tickets {
        let got = ticket.wait().expect("fulfilled, not canceled");
        let want = &reference[pool.iter().position(|p| *p == req).unwrap()];
        assert_eq!(got.response, want.response);
        assert_eq!(got.components, want.components);
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, IN_FLIGHT as u64);
    assert_eq!(stats.completed, IN_FLIGHT as u64);
    assert_eq!(stats.in_flight, 0);
    assert!(
        stats.mean_batch_size() > 8.0,
        "a saturated queue must dispatch real micro-batches, got {}",
        stats.mean_batch_size()
    );
    assert!(stats.queue_wait_max > Duration::ZERO);
}

/// Queue wait counts against `l_spe`: a Deadline request that sat in the
/// paused queue past its whole deadline degrades to synopsis-only
/// coverage, while a request submitted after resume improves normally.
#[test]
fn deadline_request_queued_past_l_spe_degrades_to_synopsis_only() {
    let (service, pool) = recommender_deployment();
    let server = Server::from_service(service, ServerConfig::default());
    let req = pool[0].clone();
    let l_spe = Duration::from_millis(40);
    let policy = ExecutionPolicy::deadline(l_spe);

    server.pause();
    let stale = server.try_submit(req.clone(), policy).expect("queued");
    std::thread::sleep(3 * l_spe); // the queue wait blows the deadline
    server.resume();
    let stale = stale.wait().expect("fulfilled");
    assert_eq!(
        stale.sets_processed(),
        0,
        "queue wait must count against l_spe"
    );
    assert_eq!(stale.mean_coverage(), 0.0);
    let synopsis_only = server.service().serve(&req, &ExecutionPolicy::SynopsisOnly);
    assert_eq!(stale.response, synopsis_only.response);
    assert!(
        stale.elapsed >= 3 * l_spe,
        "elapsed includes the queue wait"
    );

    // Same request, no queueing: the deadline is comfortably met.
    let fresh = server.try_submit(req, policy).expect("queued");
    let fresh = fresh.wait().expect("fulfilled");
    assert!(fresh.sets_processed() > 0, "unqueued request improves");
    let stats = server.stats();
    assert!(stats.queue_wait_max >= 3 * l_spe);
}

/// Under clock-free policies the async path is *identical* to `serve_at`
/// with the same submitted instants — for both evaluated adapters.
#[test]
fn async_responses_equal_serve_at_for_both_adapters() {
    let (service, pool) = recommender_deployment();
    let server = Server::from_service(service, ServerConfig::default());
    let policies = [
        ExecutionPolicy::Exact,
        ExecutionPolicy::SynopsisOnly,
        ExecutionPolicy::budgeted(3),
    ];
    let mut pending = Vec::new();
    for (i, policy) in policies.iter().cycle().take(30).enumerate() {
        let req = pool[i % pool.len()].clone();
        let submitted = Instant::now();
        let ticket = server
            .try_submit_at(req.clone(), *policy, submitted)
            .expect("room");
        pending.push((req, *policy, submitted, ticket));
    }
    for (req, policy, submitted, ticket) in pending {
        let got = ticket.wait().expect("fulfilled");
        let want = server.service().serve_at(&req, &policy, submitted);
        assert_eq!(got.response, want.response, "{policy:?}");
        assert_eq!(got.components, want.components, "{policy:?}");
    }
    drop(server);

    let (service, queries) = search_deployment();
    let n_sets = service.components()[0].store().synopsis().len();
    let policy = ExecutionPolicy::Budgeted {
        sets: usize::MAX,
        imax: Some(ExecutionPolicy::imax_for_fraction(n_sets, 0.4)),
    };
    let server = Server::from_service(service, ServerConfig::default());
    let pending: Vec<_> = queries
        .iter()
        .map(|q| {
            let submitted = Instant::now();
            (
                q.clone(),
                submitted,
                server
                    .try_submit_at(q.clone(), policy, submitted)
                    .expect("room"),
            )
        })
        .collect();
    for (req, submitted, ticket) in pending {
        let got = ticket.wait().expect("fulfilled");
        let want = server.service().serve_at(&req, &policy, submitted);
        assert_eq!(got.response.doc_ids(), want.response.doc_ids());
        assert_eq!(got.components, want.components);
        assert!(got.response.len() <= 10);
    }
}

/// A flash-crowd arrival trace replayed through the accept loop: the
/// burst piles the queue up exactly when micro-batching matters, and
/// every request still gets a correct, valid response.
#[test]
fn flash_crowd_replay_through_accept_loop() {
    let (service, queries) = search_deployment();
    let server = Server::from_service(
        service,
        ServerConfig::default()
            .with_queue_capacity(8192)
            .with_max_batch(32),
    );
    let trace = flash_crowd_arrivals(
        BurstConfig {
            base_rate: 25.0,
            burst_rate: 0.5,
            burst_duration_s: 2.0,
            amplification: 6.0,
            seed: 3,
        },
        8.0,
    );
    assert!(
        !trace.windows.is_empty(),
        "trace must contain a flash crowd"
    );
    // Compress the 8 s trace ~40×: the replay paces real submissions over
    // ~200 ms while preserving the burst shape.
    let delays = arrival_delays(&trace.arrivals, 40.0);
    let policy = ExecutionPolicy::budgeted(2);
    let zipf = Zipf::new(queries.len(), 1.1);
    let mut rng = SmallRng::seed_from_u64(7);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(delays.len());
    for delay in &delays {
        if let Some(remaining) = delay.checked_sub(start.elapsed()) {
            std::thread::sleep(remaining);
        }
        let req = queries[zipf.sample(&mut rng)].clone();
        tickets.push(server.submit(req, policy).expect("server accepting"));
    }
    let mut served = 0usize;
    for ticket in tickets {
        let got = ticket.wait().expect("fulfilled");
        let hits = got.response.sorted();
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score, "top-k not sorted");
        }
        served += 1;
    }
    assert_eq!(served, delays.len());
    let stats = server.shutdown();
    assert_eq!(stats.in_flight, 0);
    assert!(stats.batches_dispatched > 0);
}

/// Shutdown with a full queue: every outstanding ticket is drained and
/// fulfilled — never canceled, never deadlocked.
#[test]
fn shutdown_drains_in_flight_tickets_without_deadlock() {
    let (service, pool) = recommender_deployment();
    let server = Server::from_service(service, ServerConfig::default());
    server.pause();
    let tickets: Vec<_> = (0..512)
        .map(|i| {
            server
                .try_submit(pool[i % pool.len()].clone(), ExecutionPolicy::budgeted(1))
                .expect("room")
        })
        .collect();
    assert!(server.stats().in_flight >= 512);
    // Shutdown overrides the pause, drains all 512, then joins.
    let stats = server.shutdown();
    assert_eq!(stats.completed, 512);
    assert_eq!(stats.queue_depth, 0);
    for ticket in tickets {
        assert!(ticket.is_ready(), "drained before join returned");
        ticket.wait().expect("drained tickets are fulfilled");
    }
}

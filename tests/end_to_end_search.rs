//! End-to-end search pipeline across all crates: generate corpus →
//! partition → index → synopsis → approximate retrieval → merged top-10
//! accuracy.

use accuracytrader::core::Component;
use accuracytrader::prelude::*;
use accuracytrader::search::topk_overlap;

fn deployment() -> (FanOutService<SearchService>, Corpus, Vec<SearchRequest>) {
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: 1600,
        vocab: 2500,
        n_topics: 12,
        ..CorpusConfig::default()
    });
    let rows: Vec<SparseRow> = corpus
        .docs
        .iter()
        .map(|d| SparseRow::from_pairs(d.terms.clone()))
        .collect();
    let subsets = partition_rows(corpus.config.vocab, rows, 4);
    let components: Vec<Component<SearchService>> = subsets
        .into_iter()
        .map(|subset| {
            let engine = SearchService::build(&subset, 10);
            Component::build(
                subset,
                AggregationMode::Merge,
                SynopsisConfig {
                    svd: SvdConfig::default().with_epochs(20),
                    size_ratio: 15,
                    ..SynopsisConfig::default()
                },
                engine,
            )
            .0
        })
        .collect();
    let service = FanOutService::from_components(components);
    let mut generator = QueryGenerator::new(&corpus, 17);
    let queries = generator
        .batch(&corpus, 30)
        .iter()
        .map(SearchRequest::from)
        .collect();
    (service, corpus, queries)
}

fn merged_topk(parts: Vec<TopK>) -> Vec<u64> {
    let stride = 1u64 << 32;
    let mut merged = TopK::new(10);
    for (i, t) in parts.into_iter().enumerate() {
        for h in t.sorted() {
            merged.push(i as u64 * stride + h.doc, h.score);
        }
    }
    merged.doc_ids()
}

#[test]
fn full_budget_equals_exact_globally() {
    let (service, _, queries) = deployment();
    for q in queries.iter().take(8) {
        let approx = merged_topk(
            service
                .broadcast_budgeted(q, None, usize::MAX)
                .into_iter()
                .map(|o| o.output)
                .collect(),
        );
        let exact = merged_topk(service.broadcast_exact(q));
        assert_eq!(approx, exact);
    }
}

#[test]
fn top_40pct_of_sets_capture_most_top10() {
    // The paper's headline search observation: the top 40% of ranked sets
    // contain over 98% of the actual top-10 pages. At our scale we demand
    // > 85% on average.
    let (service, _, queries) = deployment();
    let mut total = 0.0;
    let mut n = 0;
    for q in &queries {
        let exact = merged_topk(service.broadcast_exact(q));
        if exact.is_empty() {
            continue;
        }
        let n_sets = service.components()[0].store().synopsis().len();
        let budget = (n_sets as f64 * 0.4).ceil() as usize;
        let approx = merged_topk(
            service
                .broadcast_budgeted(q, None, budget)
                .into_iter()
                .map(|o| o.output)
                .collect(),
        );
        total += topk_overlap(&exact, &approx);
        n += 1;
    }
    let mean = total / n as f64;
    assert!(
        mean > 0.85,
        "top-40% budget should capture most actual top-10 pages, got {mean}"
    );
}

#[test]
fn overlap_is_monotone_in_budget_on_average() {
    let (service, _, queries) = deployment();
    let budgets = [1usize, 4, 16, usize::MAX];
    let mut means = Vec::new();
    for &b in &budgets {
        let mut total = 0.0;
        for q in &queries {
            let exact = merged_topk(service.broadcast_exact(q));
            let approx = merged_topk(
                service
                    .broadcast_budgeted(q, None, b)
                    .into_iter()
                    .map(|o| o.output)
                    .collect(),
            );
            total += topk_overlap(&exact, &approx);
        }
        means.push(total / queries.len() as f64);
    }
    for w in means.windows(2) {
        assert!(
            w[1] >= w[0] - 0.02,
            "mean overlap should grow with budget: {means:?}"
        );
    }
    assert!((means.last().unwrap() - 1.0).abs() < 1e-9);
}

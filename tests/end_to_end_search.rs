//! End-to-end search pipeline across all crates: generate corpus →
//! partition → index → synopsis → `FanOutService::serve` → merged top-10
//! accuracy.

use accuracytrader::core::Component;
use accuracytrader::prelude::*;
use accuracytrader::search::topk_overlap;
use std::time::{Duration, Instant};

fn deployment() -> (FanOutService<SearchService>, Corpus, Vec<SearchRequest>) {
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: 1600,
        vocab: 2500,
        n_topics: 12,
        ..CorpusConfig::default()
    });
    let rows: Vec<SparseRow> = corpus
        .docs
        .iter()
        .map(|d| SparseRow::from_pairs(d.terms.clone()))
        .collect();
    let subsets = partition_rows(corpus.config.vocab, rows, 4).expect("4 components");
    let components: Vec<Component<SearchService>> = subsets
        .into_iter()
        .map(|subset| {
            let engine = SearchService::build(&subset, 10);
            Component::build(
                subset,
                AggregationMode::Merge,
                SynopsisConfig {
                    svd: SvdConfig::default().with_epochs(20),
                    size_ratio: 15,
                    ..SynopsisConfig::default()
                },
                engine,
            )
            .0
        })
        .collect();
    let service = FanOutService::from_components(components);
    let mut generator = QueryGenerator::new(&corpus, 17);
    let queries = generator
        .batch(&corpus, 30)
        .iter()
        .map(SearchRequest::from)
        .collect();
    (service, corpus, queries)
}

#[test]
fn full_budget_serve_equals_exact_globally() {
    let (service, _, queries) = deployment();
    for q in queries.iter().take(8) {
        let approx = service.serve(q, &ExecutionPolicy::budgeted(usize::MAX));
        let exact = service.serve(q, &ExecutionPolicy::Exact);
        assert_eq!(approx.response.doc_ids(), exact.response.doc_ids());
        assert_eq!(approx.mean_coverage(), 1.0);
    }
}

#[test]
fn synopsis_only_serve_equals_zero_budget() {
    let (service, _, queries) = deployment();
    for q in queries.iter().take(8) {
        let syn = service.serve(q, &ExecutionPolicy::SynopsisOnly);
        let zero = service.serve(q, &ExecutionPolicy::budgeted(0));
        assert_eq!(syn.response.doc_ids(), zero.response.doc_ids());
        // Aggregated pages are not returnable results: the synopsis-only
        // top-k is empty, improvement fills it in.
        assert!(syn.response.is_empty());
        assert_eq!(syn.sets_processed(), 0);
    }
}

#[test]
fn expired_deadline_serve_returns_synopsis_only_response() {
    let (service, _, queries) = deployment();
    let q = &queries[0];
    let submitted = Instant::now() - Duration::from_millis(80);
    let served = service.serve_at(
        q,
        &ExecutionPolicy::deadline(Duration::from_millis(10)),
        submitted,
    );
    assert_eq!(served.sets_processed(), 0);
    let synopsis_only = service.serve(q, &ExecutionPolicy::SynopsisOnly);
    assert_eq!(served.response.doc_ids(), synopsis_only.response.doc_ids());
}

#[test]
fn top_40pct_of_sets_capture_most_top10() {
    // The paper's headline search observation: the top 40% of ranked sets
    // contain over 98% of the actual top-10 pages. At our scale we demand
    // > 85% on average.
    let (service, _, queries) = deployment();
    let mut total = 0.0;
    let mut n = 0;
    for q in &queries {
        let exact = service.serve(q, &ExecutionPolicy::Exact);
        if exact.response.is_empty() {
            continue;
        }
        let n_sets = service.components()[0].store().synopsis().len();
        let budget = (n_sets as f64 * 0.4).ceil() as usize;
        let approx = service.serve(q, &ExecutionPolicy::budgeted(budget));
        total += topk_overlap(&exact.response.doc_ids(), &approx.response.doc_ids());
        n += 1;
    }
    let mean = total / n as f64;
    assert!(
        mean > 0.85,
        "top-40% budget should capture most actual top-10 pages, got {mean}"
    );
}

#[test]
fn overlap_is_monotone_in_budget_on_average() {
    let (service, _, queries) = deployment();
    let budgets = [1usize, 4, 16, usize::MAX];
    let mut means = Vec::new();
    for &b in &budgets {
        let policy = ExecutionPolicy::budgeted(b);
        let mut total = 0.0;
        for q in &queries {
            let exact = service.serve(q, &ExecutionPolicy::Exact);
            let approx = service.serve(q, &policy);
            total += topk_overlap(&exact.response.doc_ids(), &approx.response.doc_ids());
        }
        means.push(total / queries.len() as f64);
    }
    for w in means.windows(2) {
        assert!(
            w[1] >= w[0] - 0.02,
            "mean overlap should grow with budget: {means:?}"
        );
    }
    assert!((means.last().unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn async_server_topk_matches_synchronous_serve() {
    let (service, _, queries) = deployment();
    let n_sets = service.components()[0].store().synopsis().len();
    let policy = ExecutionPolicy::Budgeted {
        sets: usize::MAX,
        imax: Some(ExecutionPolicy::imax_for_fraction(n_sets, 0.4)),
    };
    let server = Server::from_service(service, ServerConfig::default());
    let pending: Vec<_> = queries
        .iter()
        .map(|q| {
            (
                q.clone(),
                server.try_submit(q.clone(), policy).expect("room"),
            )
        })
        .collect();
    for (q, ticket) in pending {
        let got = ticket.wait().expect("fulfilled");
        let want = server.service().serve(&q, &policy);
        assert_eq!(got.response.doc_ids(), want.response.doc_ids());
        assert_eq!(got.components, want.components);
        assert!(got.response.len() <= 10);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed as usize, queries.len());
}

/// Admission control over the search adapter: the paper's `i_max` cap
/// (top 40% of ranked sets) survives degradation — a `Deadline` request
/// degraded to its `Budgeted` rung keeps the cap — and every degraded
/// response is a valid, correctly ordered top-k identical to serving
/// under the applied rung.
#[test]
fn admission_control_preserves_imax_and_topk_validity_under_overload() {
    let (service, _, queries) = deployment();
    let service = std::sync::Arc::new(service);
    let n_sets = service.components()[0].store().synopsis().len();
    let imax = ExecutionPolicy::imax_for_fraction(n_sets, 0.4);
    let requested = ExecutionPolicy::Deadline {
        l_spe: Duration::from_secs(30),
        imax: Some(imax),
    };
    let wait_budget = Duration::from_millis(15);
    let server = Server::with_controller(
        service.clone(),
        ServerConfig::default()
            .with_max_batch(16)
            .with_stats_window(32),
        LadderController::new(LadderConfig {
            step_fraction: 1.0,
            max_level: 3, // degradation only: never reach shed_level
            ..LadderConfig::for_deadline(wait_budget)
        }),
    );
    server.pause();
    let tickets: Vec<_> = queries
        .iter()
        .cycle()
        .take(40)
        .map(|q| {
            (
                q.clone(),
                server.try_submit(q.clone(), requested).expect("room"),
            )
        })
        .collect();
    std::thread::sleep(3 * wait_budget);
    server.resume();
    let mut degraded = 0usize;
    for (query, ticket) in tickets {
        let got = ticket
            .wait()
            .expect("degraded, never shed below shed_level");
        assert!(got.response.len() <= 10);
        let hits = got.response.sorted();
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score, "top-k not sorted");
        }
        if got.policy_applied != requested {
            degraded += 1;
            // Degrading a capped Deadline keeps the paper's i_max.
            if got.policy_applied.cost_rank() > ExecutionPolicy::SynopsisOnly.cost_rank() {
                assert_eq!(got.policy_applied.imax(), Some(imax));
            }
            let want = service.serve(&query, &got.policy_applied);
            assert_eq!(got.response.doc_ids(), want.response.doc_ids());
            assert_eq!(got.components, want.components);
        }
    }
    assert!(
        degraded > 0,
        "a burst waiting 3x the budget must trip the controller"
    );
    let stats = server.shutdown();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.completed, 40);
}

#[test]
fn search_policy_imax_caps_coverage() {
    // The paper's search setting (i_max = 40% of sets) must cap coverage
    // even under an effectively unlimited deadline.
    let (service, _, queries) = deployment();
    let n_sets = service.components()[0].store().synopsis().len();
    let policy = ExecutionPolicy::Deadline {
        l_spe: Duration::from_secs(30),
        imax: Some(n_sets.div_ceil(2)),
    };
    let served = service.serve(&queries[0], &policy);
    for c in &served.components {
        assert!(c.sets_processed <= n_sets.div_ceil(2));
    }
    assert!(served.mean_coverage() <= 0.75);
}

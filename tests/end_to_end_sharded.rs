//! End-to-end multi-worker serving: a replicated `ShardedServer` over the
//! real recommender deployment answers a duplicate-heavy mix
//! byte-identically to the single-service reference, aggregates
//! per-worker telemetry into a coherent cluster view, fails over from a
//! dead worker, and agrees with the analytic shard model about the
//! default routing strategy.

use accuracytrader::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const COMPONENTS: usize = 3;

fn ratings() -> (usize, Vec<SparseRow>, Vec<ActiveUser>) {
    let n_users = 300;
    let n_items = 60;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 30,
        ..RatingsConfig::small()
    });
    let matrix = accuracytrader::recommender::rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let mut pool = Vec::new();
    for user in 0..24u32 {
        let profile: Vec<(u32, f64)> = data
            .ratings
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        if profile.len() < 4 {
            continue;
        }
        pool.push(ActiveUser::new(
            SparseRow::from_pairs(profile),
            vec![user % 5, user % 5 + 15, user % 5 + 30],
        ));
    }
    (n_items, rows, pool)
}

fn synopsis_config() -> SynopsisConfig {
    SynopsisConfig {
        svd: SvdConfig::default().with_epochs(10),
        size_ratio: 12,
        ..SynopsisConfig::default()
    }
}

fn plain_service(n_items: usize, rows: &[SparseRow]) -> FanOutService<CfService> {
    let subsets = partition_rows(n_items, rows.to_vec(), COMPONENTS).expect("components");
    FanOutService::build(subsets, AggregationMode::Mean, synopsis_config(), || {
        CfService
    })
}

/// A faulty deployment whose replicas share one injector per component:
/// `FanOutService::replica` clones the `FaultyService`, which clones the
/// `Arc<FaultInjector>` — so a replicated cluster draws fault events from
/// a single global call sequence, and `at_calls(_, _, vec![0])` fires on
/// exactly one replica: whichever composes first.
fn faulty_service(
    n_items: usize,
    rows: &[SparseRow],
    injectors: &[Arc<FaultInjector>],
) -> FanOutService<FaultyService<CfService>> {
    let subsets = partition_rows(n_items, rows.to_vec(), COMPONENTS).expect("components");
    let components = subsets
        .into_iter()
        .zip(injectors)
        .map(|(subset, inj)| {
            Component::build(
                subset,
                AggregationMode::Mean,
                synopsis_config(),
                FaultyService::new(CfService, inj.clone()),
            )
            .0
        })
        .collect();
    FanOutService::from_components(components)
}

/// A duplicate-heavy zipf-ish mix over the request pool: half the stream
/// is the hottest user, a quarter the next, the rest a cold tail.
fn zipf_mix(pool: &[ActiveUser], n: usize) -> Vec<ActiveUser> {
    (0..n)
        .map(|i| {
            let slot = match i % 16 {
                0..=7 => 0,
                8..=11 => 1,
                12 | 13 => 2,
                _ => 3 + i % 7,
            };
            pool[slot % pool.len()].clone()
        })
        .collect()
}

/// The replicated cluster answers every request of a duplicate-heavy mix
/// byte-identically to the single-service reference under every
/// clock-free policy, and the aggregated cluster view is coherent:
/// totals conserve and hash routing spreads the keys over the workers.
#[test]
fn replicated_cluster_matches_reference_and_aggregates() {
    const WORKERS: usize = 3;
    let (n_items, rows, pool) = ratings();
    let service = plain_service(n_items, &rows);
    let reference = plain_service(n_items, &rows);
    let cluster = ShardedServer::replicated(
        &service,
        ShardConfig::default()
            .with_workers(WORKERS)
            .with_worker(ServerConfig::default().with_max_batch(8)),
    );

    let mix = zipf_mix(&pool, 64);
    let policies = [
        ExecutionPolicy::SynopsisOnly,
        ExecutionPolicy::budgeted(2),
        ExecutionPolicy::Exact,
    ];
    let submitted = Instant::now();
    let mut homes_hit = [false; WORKERS];
    let tickets: Vec<_> = mix
        .iter()
        .enumerate()
        .map(|(i, req)| {
            let policy = policies[i % policies.len()];
            homes_hit[cluster.home_index(req)] = true;
            let ticket = cluster
                .try_submit_at(req.clone(), policy, submitted)
                .expect("room");
            (req.clone(), policy, ticket)
        })
        .collect();
    assert!(
        homes_hit.iter().all(|&hit| hit),
        "the mix must exercise every worker"
    );

    for (req, policy, ticket) in tickets {
        let got = ticket.wait().expect("healthy cluster fulfils everything");
        let want = reference.serve_at(&req, &policy, submitted);
        assert_eq!(got.response, want.response, "byte-identical responses");
        assert_eq!(got.components, want.components, "telemetry matches too");
        assert_eq!(got.policy_applied, policy, "no degradation without load");
    }

    let stats = cluster.shutdown();
    assert_eq!(stats.submitted(), mix.len() as u64);
    assert_eq!(stats.completed(), mix.len() as u64);
    assert_eq!(stats.shed(), 0);
    assert_eq!(stats.rejected(), 0);
    assert_eq!(stats.in_flight(), 0);
    let per_worker: u64 = stats.workers.iter().map(|w| w.submitted).sum();
    assert_eq!(per_worker, mix.len() as u64, "worker totals conserve");
    assert!(
        stats.workers.iter().filter(|w| w.submitted > 0).count() >= 2,
        "hash routing spreads a multi-key mix over workers"
    );
}

/// Failover end to end: one replica's composer panics with no restart
/// budget, so its worker terminally stops. The cluster keeps accepting
/// the dead worker's keys — placement spills them to a live sibling —
/// and answers them byte-identically, because replicas serve the same
/// data.
#[test]
fn dead_worker_fails_over_to_live_siblings() {
    const WORKERS: usize = 3;
    let (n_items, rows, pool) = ratings();
    let mut injectors: Vec<Arc<FaultInjector>> = (0..COMPONENTS)
        .map(|i| Arc::new(FaultInjector::new(2000 + i as u64)))
        .collect();
    // The very first compose call across the whole cluster panics; with
    // a zero restart budget that worker stops for good.
    injectors[0] = Arc::new(FaultInjector::new(23).with_rule(FaultRule::at_calls(
        FaultSite::Compose,
        FaultKind::Panic,
        vec![0],
    )));
    let service = faulty_service(n_items, &rows, &injectors);
    let reference = plain_service(n_items, &rows);
    // Stealing off: an idle sibling could otherwise poach the poisoned
    // request and die in the home worker's stead — the death must land
    // deterministically on `home_index(first)` for the assertions below.
    let cluster = ShardedServer::replicated(
        &service,
        ShardConfig::default()
            .with_workers(WORKERS)
            .with_work_stealing(false)
            .with_worker(
                ServerConfig::default()
                    .with_max_batch(1)
                    .with_max_restarts(0),
            ),
    );

    let policy = ExecutionPolicy::budgeted(2);
    let first = pool[0].clone();
    let dead = cluster.home_index(&first);
    let ticket = cluster.submit(first.clone(), policy).expect("accepting");
    assert!(
        ticket.wait().is_err(),
        "the poisoned compose cancels its own ticket"
    );
    // The supervisor marks the worker stopped after cancelling the
    // batch; wait for that (bounded) before testing placement.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cluster.worker(dead).expect("home exists").is_stopped() {
        assert!(Instant::now() < deadline, "worker must stop terminally");
        std::thread::yield_now();
    }

    // Every key — including the dead worker's — is still served, and
    // identically to the reference: replicas hold the same data.
    for req in zipf_mix(&pool, 32) {
        let got = cluster
            .submit(req.clone(), policy)
            .expect("failover accepts the dead worker's keys")
            .wait()
            .expect("live siblings fulfil");
        assert_eq!(got.response, reference.serve(&req, &policy).response);
    }

    let stats = cluster.shutdown();
    assert_eq!(stats.workers_stopped(), 1, "exactly one worker died");
    assert!(stats.workers[dead].stopped);
    assert_eq!(
        stats.workers[dead].completed, 0,
        "the dead worker only ever saw the poisoned round"
    );
    assert_eq!(stats.completed(), 32, "every failover round fulfilled");
}

/// The analytic shard model, fed the real deployment's route keys, picks
/// hash affinity for a duplicate-heavy mix — which is exactly the
/// `ShardConfig` default. Model and server agree on the default choice.
#[test]
fn shard_model_agrees_with_the_default_routing() {
    let (_, _, pool) = ratings();
    let keys: Vec<u64> = zipf_mix(&pool, 512)
        .iter()
        .map(RouteKey::route_key)
        .collect();
    let cfg = ShardSimConfig {
        workers: 4,
        cores: 1,
        max_batch: 64,
        ..ShardSimConfig::default()
    };
    let picked = pick_strategy(&keys, &cfg);
    assert_eq!(picked.strategy, ShardStrategy::HashAffinity);
    assert!(matches!(
        ShardConfig::default().routing,
        RoutingStrategy::HashAffinity
    ));
}

//! End-to-end recommender pipeline across all crates: generate ratings →
//! partition → offline synopsis creation → online approximate processing →
//! compose → accuracy.

use accuracytrader::prelude::*;
use accuracytrader::recommender::rmse;

fn deployment() -> (FanOutService<CfService>, RatingsDataset, Vec<(ActiveUser, Vec<f64>)>) {
    let n_users = 900;
    let n_items = 120;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 60,
        // Strong taste signal so exact CF clearly beats the user-mean
        // baseline even at this small test scale.
        noise: 0.25,
        ..RatingsConfig::small()
    });
    let (train, holdout) = data.holdout_split(0.8, 5);
    let matrix = accuracytrader::recommender::rating_matrix(n_users, n_items, &train);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, 5);
    let service = FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            svd: SvdConfig::default().with_epochs(20),
            size_ratio: 15,
            ..SynopsisConfig::default()
        },
        || CfService,
    );

    let mut evals = Vec::new();
    for user in 0..25u32 {
        let profile: Vec<(u32, f64)> = train
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        let mut held: Vec<(u32, f64)> = holdout
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        // ActiveUser sorts its targets; keep actuals parallel.
        held.sort_by_key(|h| h.0);
        if held.is_empty() || profile.len() < 4 {
            continue;
        }
        evals.push((
            ActiveUser::new(
                SparseRow::from_pairs(profile),
                held.iter().map(|h| h.0).collect(),
            ),
            held.iter().map(|h| h.1).collect(),
        ));
    }
    (service, data, evals)
}

#[test]
fn full_budget_broadcast_equals_exact() {
    let (service, _, evals) = deployment();
    for (active, _) in evals.iter().take(5) {
        let approx: Vec<_> = service
            .broadcast_budgeted(active, None, usize::MAX)
            .into_iter()
            .map(|o| o.output)
            .collect();
        let exact = service.broadcast_exact(active);
        let pa = compose_predictions(active, &approx);
        let pe = compose_predictions(active, &exact);
        for (a, e) in pa.iter().zip(&pe) {
            assert!((a - e).abs() < 1e-9, "approx {a} != exact {e}");
        }
    }
}

#[test]
fn predictions_beat_user_mean_baseline() {
    let (service, _, evals) = deployment();
    let mut cf_preds = Vec::new();
    let mut base_preds = Vec::new();
    let mut actuals = Vec::new();
    for (active, actual) in &evals {
        let exact = service.broadcast_exact(active);
        cf_preds.extend(compose_predictions(active, &exact));
        base_preds.extend(vec![active.mean_rating(); actual.len()]);
        actuals.extend_from_slice(actual);
    }
    let cf = rmse(&cf_preds, &actuals);
    let base = rmse(&base_preds, &actuals);
    assert!(
        cf < base,
        "exact CF (rmse {cf}) must beat the user-mean baseline (rmse {base})"
    );
}

#[test]
fn synopsis_estimate_close_to_exact_accuracy() {
    // The paper's central claim at the component level: the synopsis-only
    // result (budget 0, aggregated users standing in for their groups)
    // already lands near the exact accuracy.
    let (service, _, evals) = deployment();
    let mut synopsis_preds = Vec::new();
    let mut exact_preds = Vec::new();
    let mut actuals = Vec::new();
    for (active, actual) in &evals {
        let syn: Vec<_> = service
            .broadcast_budgeted(active, None, 0)
            .into_iter()
            .map(|o| o.output)
            .collect();
        synopsis_preds.extend(compose_predictions(active, &syn));
        exact_preds.extend(compose_predictions(active, &service.broadcast_exact(active)));
        actuals.extend_from_slice(actual);
    }
    let syn_rmse = rmse(&synopsis_preds, &actuals);
    let exact_rmse = rmse(&exact_preds, &actuals);
    let loss = accuracytrader::recommender::accuracy_loss_pct(exact_rmse, syn_rmse);
    assert!(
        loss < 25.0,
        "synopsis-only loss should be modest, got {loss}% (syn {syn_rmse} vs exact {exact_rmse})"
    );
}

#[test]
fn data_updates_keep_service_consistent() {
    let (mut service, data, evals) = deployment();
    // Stream new users into every component.
    for c in service.components_mut() {
        let row = SparseRow::from_pairs(
            data.ratings[..30]
                .iter()
                .map(|r| (r.item, r.stars))
                .collect(),
        );
        let rep = c.apply_updates(vec![DataUpdate::Add(row)]);
        assert_eq!(rep.added, 1);
        c.validate().expect("component consistent after update");
    }
    // The service still answers correctly after updates.
    let (active, _) = &evals[0];
    let approx: Vec<_> = service
        .broadcast_budgeted(active, None, usize::MAX)
        .into_iter()
        .map(|o| o.output)
        .collect();
    let exact = service.broadcast_exact(active);
    let pa = compose_predictions(active, &approx);
    let pe = compose_predictions(active, &exact);
    for (a, e) in pa.iter().zip(&pe) {
        assert!((a - e).abs() < 1e-9);
    }
}

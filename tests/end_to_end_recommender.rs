//! End-to-end recommender pipeline across all crates: generate ratings →
//! partition → offline synopsis creation → `FanOutService::serve` under an
//! execution policy → composed predictions → accuracy.

use accuracytrader::prelude::*;
use accuracytrader::recommender::rmse;
use std::time::{Duration, Instant};

type Evals = Vec<(ActiveUser, Vec<f64>)>;

fn deployment() -> (FanOutService<CfService>, RatingsDataset, Evals) {
    let n_users = 900;
    let n_items = 120;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 60,
        // Strong taste signal so exact CF clearly beats the user-mean
        // baseline even at this small test scale.
        noise: 0.25,
        ..RatingsConfig::small()
    });
    let (train, holdout) = data.holdout_split(0.8, 5);
    let matrix = accuracytrader::recommender::rating_matrix(n_users, n_items, &train);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, 5).expect("5 components");
    let service = FanOutService::build(
        subsets,
        AggregationMode::Mean,
        SynopsisConfig {
            svd: SvdConfig::default().with_epochs(20),
            size_ratio: 15,
            ..SynopsisConfig::default()
        },
        || CfService,
    );

    let mut evals = Vec::new();
    for user in 0..25u32 {
        let profile: Vec<(u32, f64)> = train
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        let mut held: Vec<(u32, f64)> = holdout
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        // ActiveUser sorts its targets; keep actuals parallel.
        held.sort_by_key(|h| h.0);
        if held.is_empty() || profile.len() < 4 {
            continue;
        }
        evals.push((
            ActiveUser::new(
                SparseRow::from_pairs(profile),
                held.iter().map(|h| h.0).collect(),
            ),
            held.iter().map(|h| h.1).collect(),
        ));
    }
    (service, data, evals)
}

#[test]
fn full_budget_serve_equals_exact() {
    let (service, _, evals) = deployment();
    for (active, _) in evals.iter().take(5) {
        let approx = service.serve(active, &ExecutionPolicy::budgeted(usize::MAX));
        let exact = service.serve(active, &ExecutionPolicy::Exact);
        assert_eq!(approx.mean_coverage(), 1.0);
        assert_eq!(exact.min_coverage(), 1.0);
        for (a, e) in approx.response.iter().zip(&exact.response) {
            assert!((a - e).abs() < 1e-9, "approx {a} != exact {e}");
        }
    }
}

#[test]
fn synopsis_only_serve_equals_zero_budget() {
    let (service, _, evals) = deployment();
    for (active, _) in evals.iter().take(5) {
        let syn = service.serve(active, &ExecutionPolicy::SynopsisOnly);
        let zero = service.serve(active, &ExecutionPolicy::budgeted(0));
        assert_eq!(syn.response, zero.response);
        assert_eq!(syn.sets_processed(), 0);
        assert_eq!(zero.sets_processed(), 0);
    }
}

#[test]
fn expired_deadline_serve_returns_synopsis_only_response() {
    let (service, _, evals) = deployment();
    let (active, _) = &evals[0];
    // Submitted long before serve_at runs: the deadline is already blown,
    // so every component must degrade to its synopsis-only result.
    let submitted = Instant::now() - Duration::from_millis(80);
    let served = service.serve_at(
        active,
        &ExecutionPolicy::deadline(Duration::from_millis(10)),
        submitted,
    );
    assert_eq!(served.sets_processed(), 0, "no improvement after deadline");
    assert_eq!(served.mean_coverage(), 0.0);
    let synopsis_only = service.serve(active, &ExecutionPolicy::SynopsisOnly);
    assert_eq!(served.response, synopsis_only.response);
    assert!(
        served.elapsed >= Duration::from_millis(80),
        "elapsed counts queueing"
    );
}

#[test]
fn generous_deadline_serve_matches_exact() {
    let (service, _, evals) = deployment();
    let (active, _) = &evals[0];
    let served = service.serve(active, &ExecutionPolicy::deadline(Duration::from_secs(30)));
    assert_eq!(
        served.mean_coverage(),
        1.0,
        "long deadline improves everything"
    );
    let exact = service.serve(active, &ExecutionPolicy::Exact);
    for (a, e) in served.response.iter().zip(&exact.response) {
        assert!((a - e).abs() < 1e-9);
    }
}

#[test]
fn serve_telemetry_is_consistent() {
    let (service, _, evals) = deployment();
    let (active, _) = &evals[0];
    let served = service.serve(active, &ExecutionPolicy::budgeted(2));
    assert_eq!(served.components.len(), service.len());
    for c in &served.components {
        assert_eq!(c.sets_processed, 2.min(c.sets_total));
        assert_eq!(c.sets_skipped, 0);
    }
    assert!(served.min_coverage() <= served.mean_coverage());
    assert_eq!(served.sets_skipped(), 0);
    assert!(served.elapsed > Duration::ZERO);
}

#[test]
fn predictions_beat_user_mean_baseline() {
    let (service, _, evals) = deployment();
    let mut cf_preds = Vec::new();
    let mut base_preds = Vec::new();
    let mut actuals = Vec::new();
    for (active, actual) in &evals {
        cf_preds.extend(service.serve(active, &ExecutionPolicy::Exact).response);
        base_preds.extend(vec![active.mean_rating(); actual.len()]);
        actuals.extend_from_slice(actual);
    }
    let cf = rmse(&cf_preds, &actuals);
    let base = rmse(&base_preds, &actuals);
    assert!(
        cf < base,
        "exact CF (rmse {cf}) must beat the user-mean baseline (rmse {base})"
    );
}

#[test]
fn synopsis_estimate_close_to_exact_accuracy() {
    // The paper's central claim at the service level: the synopsis-only
    // response (aggregated users standing in for their groups) already
    // lands near the exact accuracy.
    let (service, _, evals) = deployment();
    let mut synopsis_preds = Vec::new();
    let mut exact_preds = Vec::new();
    let mut actuals = Vec::new();
    for (active, actual) in &evals {
        synopsis_preds.extend(
            service
                .serve(active, &ExecutionPolicy::SynopsisOnly)
                .response,
        );
        exact_preds.extend(service.serve(active, &ExecutionPolicy::Exact).response);
        actuals.extend_from_slice(actual);
    }
    let syn_rmse = rmse(&synopsis_preds, &actuals);
    let exact_rmse = rmse(&exact_preds, &actuals);
    let loss = accuracytrader::recommender::accuracy_loss_pct(exact_rmse, syn_rmse);
    assert!(
        loss < 25.0,
        "synopsis-only loss should be modest, got {loss}% (syn {syn_rmse} vs exact {exact_rmse})"
    );
}

#[test]
fn async_server_predictions_match_synchronous_serve() {
    let (service, _, evals) = deployment();
    let server = Server::from_service(service, ServerConfig::default());
    let policy = ExecutionPolicy::budgeted(3);
    let pending: Vec<_> = evals
        .iter()
        .map(|(active, _)| {
            (
                active.clone(),
                server.try_submit(active.clone(), policy).expect("room"),
            )
        })
        .collect();
    for (active, ticket) in pending {
        let got = ticket.wait().expect("fulfilled");
        let want = server.service().serve(&active, &policy);
        assert_eq!(got.response, want.response, "async != sync serve");
        assert_eq!(got.components, want.components);
        assert_eq!(got.response.len(), active.targets.len());
        for p in &got.response {
            assert!((1.0..=5.0).contains(p), "prediction {p} out of range");
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed as usize, evals.len());
    assert_eq!(stats.in_flight, 0);
}

/// The load-adaptive control plane end to end: a burst that queues past
/// the controller's wait budget is degraded down the ladder, every
/// degraded response is still a valid prediction identical to serving
/// under the applied rung, and `policy_applied` reports the degradation.
#[test]
fn admission_control_degrades_overloaded_burst_to_valid_predictions() {
    let (service, _, evals) = deployment();
    let service = std::sync::Arc::new(service);
    let wait_budget = Duration::from_millis(15);
    let server = Server::with_controller(
        service.clone(),
        ServerConfig::default()
            .with_max_batch(16)
            .with_stats_window(32),
        LadderController::new(LadderConfig {
            step_fraction: 1.0,
            max_level: 3, // degradation only: never reach shed_level
            ..LadderConfig::for_deadline(wait_budget)
        }),
    );
    let requested = ExecutionPolicy::deadline(Duration::from_secs(30));
    server.pause();
    let tickets: Vec<_> = evals
        .iter()
        .cycle()
        .take(48)
        .map(|(active, _)| {
            (
                active.clone(),
                server.try_submit(active.clone(), requested).expect("room"),
            )
        })
        .collect();
    std::thread::sleep(3 * wait_budget); // the queue wait blows the budget
    server.resume();
    let mut degraded = 0usize;
    for (active, ticket) in tickets {
        let got = ticket
            .wait()
            .expect("degraded, never shed below shed_level");
        assert_eq!(got.response.len(), active.targets.len());
        for p in &got.response {
            assert!((1.0..=5.0).contains(p), "prediction {p} out of range");
        }
        if got.policy_applied != requested {
            degraded += 1;
            assert!(
                got.policy_applied.cost_rank() < requested.cost_rank(),
                "control only moves down the ladder: {:?}",
                got.policy_applied
            );
            assert!(got.policy_applied.is_clock_free());
            // Degraded rungs are clock-free: the response must be
            // byte-identical to serving under the applied policy.
            let want = service.serve(&active, &got.policy_applied);
            assert_eq!(got.response, want.response);
            assert_eq!(got.components, want.components);
        }
    }
    assert!(
        degraded > 0,
        "a burst waiting 3x the budget must trip the controller"
    );
    let stats = server.shutdown();
    assert_eq!(stats.shed, 0, "max_level below shed_level never sheds");
    assert_eq!(stats.completed, 48);
}

#[test]
fn data_updates_keep_service_consistent() {
    let (mut service, data, evals) = deployment();
    // Stream new users into every component.
    for c in service.components_mut() {
        let row = SparseRow::from_pairs(
            data.ratings[..30]
                .iter()
                .map(|r| (r.item, r.stars))
                .collect(),
        );
        let rep = c.apply_updates(vec![DataUpdate::Add(row)]);
        assert_eq!(rep.added, 1);
        c.validate().expect("component consistent after update");
    }
    // The service still answers correctly after updates.
    let (active, _) = &evals[0];
    let approx = service.serve(active, &ExecutionPolicy::budgeted(usize::MAX));
    let exact = service.serve(active, &ExecutionPolicy::Exact);
    assert_eq!(
        approx.sets_skipped(),
        0,
        "updates left no stale index entries"
    );
    for (a, e) in approx.response.iter().zip(&exact.response) {
        assert!((a - e).abs() < 1e-9);
    }
}

//! Property-based tests for the lazy ranking path: for any bound, the
//! prefix produced by `rank_top` must be byte-identical to the eager
//! `rank()` prefix — including tie ordering (node id) and NaN sinking.

use at_core::{rank, rank_top, Correlation};
use at_rtree::NodeId;
use proptest::prelude::*;

/// Scores drawn from a small discrete set to force heavy ties, plus NaN
/// and infinities as occasional hostile inputs.
fn score_from(code: u32) -> f64 {
    match code % 12 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        n => (n as f64 - 7.0) * 0.25,
    }
}

fn correlations(codes: &[u32]) -> Vec<Correlation> {
    codes
        .iter()
        .enumerate()
        .map(|(i, &code)| Correlation {
            node: NodeId::from_index(i as u32),
            score: score_from(code),
        })
        .collect()
}

/// Equality under ranking semantics: same node and same score bits-or-NaN.
fn same(a: &Correlation, b: &Correlation) -> bool {
    a.node == b.node && (a.score == b.score || (a.score.is_nan() && b.score.is_nan()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn rank_top_prefix_equals_rank_prefix(codes in prop::collection::vec(0u32..1000, 0..120),
                                          bound in 0usize..140) {
        let raw = correlations(&codes);
        let eager = rank(raw.clone());
        let mut lazy = raw.clone();
        let mut prefix = rank_top(&mut lazy, bound);
        for (i, want) in eager.iter().enumerate().take(bound) {
            let got = prefix.get(i).expect("within len");
            prop_assert!(same(&got, want),
                         "rank {} differs: {:?} vs {:?}", i, got, want);
        }
    }

    #[test]
    fn rank_top_extension_equals_full_rank(codes in prop::collection::vec(0u32..1000, 0..120),
                                           bound in 0usize..8) {
        // Start from a tiny bound and walk to the very end, the way
        // stale-set skips extend the prefix during execution.
        let raw = correlations(&codes);
        let eager = rank(raw.clone());
        let mut lazy = raw.clone();
        let mut prefix = rank_top(&mut lazy, bound);
        for (i, want) in eager.iter().enumerate() {
            let got = prefix.get(i).expect("within len");
            prop_assert!(same(&got, want), "rank {} differs after extension", i);
        }
        prop_assert_eq!(prefix.get(raw.len()), None);
    }
}

//! Property-based equivalence of the batched and sequential serving paths.
//!
//! For every [`ExecutionPolicy`] variant (with deadlines pinned to the
//! deterministic generous/expired extremes), `serve_batch_at` over a batch
//! of requests must produce responses and per-component `Outcome`
//! telemetry identical to mapping `serve_at` over the requests one at a
//! time — including stale-set skips (a service whose top-ranked set has no
//! index entry), tie ordering, and NaN correlation scores. Two fixtures
//! run every case: one service overriding the batch/pooling hooks (the
//! amortized single-pass path) and one on the trait defaults.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use at_core::{
    partition_rows, ApproximateService, ComposableService, Correlation, Ctx, ExecutionPolicy,
    FanOutService,
};
use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
use proptest::prelude::*;

/// Toy composable service: a request is a list of target columns; each
/// component sums those columns over its processed rows. Scores inject
/// ties (coarse quantization) and NaN (column 0 of an empty row sum is
/// still finite, so NaN is injected explicitly for one node id pattern).
/// Overrides the batch and pooling hooks like a production adapter.
struct ColumnSum;

/// Correlation score of an aggregated point for a request: the point's
/// value at the first target, quantized to force ties, with an injected
/// NaN on every 7th node to exercise hostile-score ordering.
fn score_of(p: &at_synopsis::AggregatedPoint, targets: &[u32]) -> f64 {
    if p.node.index() % 7 == 3 {
        return f64::NAN;
    }
    let raw = targets
        .first()
        .map_or(0.0, |&t| p.info.get(t).unwrap_or(0.0));
    (raw * 4.0).round() / 4.0
}

fn reset_out(out: &mut Vec<f64>, targets: &[u32]) {
    out.clear();
    out.resize(targets.len(), 0.0);
}

fn synopsis_step(
    p: &at_synopsis::AggregatedPoint,
    targets: &[u32],
    corr: &mut Vec<Correlation>,
    out: &mut [f64],
) {
    corr.push(Correlation {
        node: p.node,
        score: score_of(p, targets),
    });
    for (t, o) in targets.iter().zip(out.iter_mut()) {
        *o += p.info.get(*t).unwrap_or(0.0) * p.member_count as f64;
    }
}

impl ApproximateService for ColumnSum {
    type Request = Vec<u32>;
    type Output = Vec<f64>;

    fn process_synopsis(
        &self,
        ctx: Ctx<'_>,
        req: &Vec<u32>,
        corr: &mut Vec<Correlation>,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.process_synopsis_into(ctx, req, corr, &mut out);
        out
    }

    fn process_synopsis_into(
        &self,
        ctx: Ctx<'_>,
        req: &Vec<u32>,
        corr: &mut Vec<Correlation>,
        out: &mut Vec<f64>,
    ) {
        reset_out(out, req);
        for p in ctx.store.synopsis().iter() {
            synopsis_step(p, req, corr, out);
        }
    }

    fn process_synopsis_batch(
        &self,
        ctx: Ctx<'_>,
        reqs: &[Vec<u32>],
        corrs: &mut [Vec<Correlation>],
        outs: &mut Vec<Vec<f64>>,
    ) {
        at_core::prepare_outputs(
            outs,
            reqs.len(),
            |out, i| reset_out(out, &reqs[i]),
            |i| vec![0.0; reqs[i].len()],
        );
        // The shared single pass: aggregated points outer, requests inner.
        for (p, _) in ctx.store.synopsis().points_with_stats() {
            for ((req, corr), out) in reqs.iter().zip(corrs.iter_mut()).zip(outs.iter_mut()) {
                synopsis_step(p, req, corr, out);
            }
        }
    }

    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &Vec<u32>,
        out: &mut Vec<f64>,
        node: at_rtree::NodeId,
        members: &[u64],
    ) {
        if let Some(p) = ctx.store.synopsis().point(node) {
            for (t, o) in req.iter().zip(out.iter_mut()) {
                // Replace the aggregated estimate with the exact sum.
                *o -= p.info.get(*t).unwrap_or(0.0) * p.member_count as f64;
            }
        }
        for &m in members {
            let row = ctx.dataset.row(m);
            for (t, o) in req.iter().zip(out.iter_mut()) {
                *o += row.get(*t).unwrap_or(0.0);
            }
        }
    }

    fn process_exact(&self, ctx: Ctx<'_>, req: &Vec<u32>) -> Vec<f64> {
        let mut out = vec![0.0; req.len()];
        for id in ctx.dataset.ids() {
            let row = ctx.dataset.row(id);
            for (t, o) in req.iter().zip(out.iter_mut()) {
                *o += row.get(*t).unwrap_or(0.0);
            }
        }
        out
    }
}

impl ComposableService for ColumnSum {
    type Response = Vec<f64>;

    fn compose(&self, req: &Vec<u32>, parts: &[Vec<f64>]) -> Vec<f64> {
        let mut total = vec![0.0; req.len()];
        for part in parts {
            for (t, p) in total.iter_mut().zip(part) {
                *t += p;
            }
        }
        total
    }
}

/// `ColumnSum` on the **default** trait plumbing, plus one bogus
/// top-ranked stale set (infinite score, no index entry) so every policy
/// exercises skip accounting and lazy-prefix extension.
struct StaleColumnSum;

impl ApproximateService for StaleColumnSum {
    type Request = Vec<u32>;
    type Output = Vec<f64>;

    fn process_synopsis(
        &self,
        ctx: Ctx<'_>,
        req: &Vec<u32>,
        corr: &mut Vec<Correlation>,
    ) -> Vec<f64> {
        let out = ColumnSum.process_synopsis(ctx, req, corr);
        corr.push(Correlation {
            node: at_rtree::NodeId::from_index(u32::MAX),
            score: f64::INFINITY,
        });
        out
    }

    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &Vec<u32>,
        out: &mut Vec<f64>,
        node: at_rtree::NodeId,
        members: &[u64],
    ) {
        ColumnSum.improve(ctx, req, out, node, members);
    }

    fn process_exact(&self, ctx: Ctx<'_>, req: &Vec<u32>) -> Vec<f64> {
        ColumnSum.process_exact(ctx, req)
    }
}

impl ComposableService for StaleColumnSum {
    type Response = Vec<f64>;

    fn compose(&self, req: &Vec<u32>, parts: &[Vec<f64>]) -> Vec<f64> {
        ColumnSum.compose(req, parts)
    }
}

const N_COLUMNS: u32 = 10;

fn build<S: ApproximateService + Send + Sync>(make: impl Fn() -> S + Sync) -> FanOutService<S>
where
    S::Request: Sync,
    S::Output: Send,
{
    let rows: Vec<SparseRow> = (0..130u32)
        .map(|r| {
            SparseRow::from_pairs(
                (0..N_COLUMNS)
                    .map(|c| (c, ((r * 13 + c * 7) % 9) as f64 * 0.5))
                    .collect(),
            )
        })
        .collect();
    let subsets = partition_rows(N_COLUMNS as usize, rows, 3).expect("3 components");
    let cfg = SynopsisConfig {
        svd: at_linalg::svd::SvdConfig::default().with_epochs(8),
        size_ratio: 8,
        ..SynopsisConfig::default()
    };
    FanOutService::build(subsets, AggregationMode::Mean, cfg, &make)
}

fn overridden() -> &'static FanOutService<ColumnSum> {
    static SVC: OnceLock<FanOutService<ColumnSum>> = OnceLock::new();
    SVC.get_or_init(|| build(|| ColumnSum))
}

fn defaulted() -> &'static FanOutService<StaleColumnSum> {
    static SVC: OnceLock<FanOutService<StaleColumnSum>> = OnceLock::new();
    SVC.get_or_init(|| build(|| StaleColumnSum))
}

/// One policy per `ExecutionPolicy` variant, with the budget/imax knobs
/// randomized and deadlines pinned to the deterministic extremes.
fn policies() -> impl Strategy<Value = ExecutionPolicy> {
    let imax = (0usize..2, 1usize..6).prop_map(|(some, m)| (some == 1).then_some(m));
    let budgeted = ((0usize..6, 0usize..2), imax).prop_map(|((sets, unbounded), imax)| {
        ExecutionPolicy::Budgeted {
            sets: if unbounded == 1 { usize::MAX } else { sets },
            imax,
        }
    });
    let deadline = (0usize..2, 1usize..6).prop_map(|(some, m)| ExecutionPolicy::Deadline {
        // Generous: far beyond what a toy batch needs; expiry is driven by
        // the per-request submission instants, not the clock during a run.
        l_spe: Duration::from_secs(120),
        imax: (some == 1).then_some(m),
    });
    prop_oneof![
        Just(ExecutionPolicy::Exact),
        Just(ExecutionPolicy::SynopsisOnly),
        budgeted,
        deadline,
    ]
}

/// A batch of requests: each a short target-column list, plus a flag for
/// "queued past the whole deadline" (submission instant in the deep past).
fn batches() -> impl Strategy<Value = Vec<(Vec<u32>, bool)>> {
    prop::collection::vec(
        (prop::collection::vec(0u32..N_COLUMNS, 1..4), 0usize..2)
            .prop_map(|(targets, expired)| (targets, expired == 1)),
        1..6,
    )
}

/// Batches straddling the duplicate-collapse bailout threshold (the scan
/// bails once >50% of a ≥32-request prefix is unique): either drawn from a
/// tiny pool of 2–3 requests (duplicate-heavy — collapses throughout) or
/// freely generated (mostly unique — bails out mid-scan), both well past
/// the minimum scanned prefix so the threshold logic actually runs.
fn bailout_batches() -> impl Strategy<Value = Vec<(Vec<u32>, bool)>> {
    let request = || prop::collection::vec(0u32..N_COLUMNS, 1..4);
    let unique_heavy = prop::collection::vec(request(), 40..72);
    let dup_heavy = (
        prop::collection::vec(request(), 2..4),
        prop::collection::vec(0usize..4, 40..72),
    )
        .prop_map(|(pool, picks)| {
            picks
                .into_iter()
                .map(|p| pool[p % pool.len()].clone())
                .collect::<Vec<_>>()
        });
    prop_oneof![unique_heavy, dup_heavy]
        .prop_map(|reqs| reqs.into_iter().map(|r| (r, false)).collect())
}

/// Submission instants for a batch: 240 s ago for "queued past deadline"
/// requests (expired twice over against the 120 s deadline, a no-op for
/// every clockless policy) and now otherwise. `None` when the monotonic
/// clock is younger than the offset (fresh boot) — callers skip the case.
fn submitted_of(batch: &[(Vec<u32>, bool)]) -> Option<Vec<Instant>> {
    let now = Instant::now();
    let past = now.checked_sub(Duration::from_secs(240))?;
    Some(
        batch
            .iter()
            .map(|(_, expired)| if *expired { past } else { now })
            .collect(),
    )
}

fn assert_batch_equals_sequential<S>(
    service: &FanOutService<S>,
    batch: &[(Vec<u32>, bool)],
    policy: &ExecutionPolicy,
    label: &str,
) -> Result<(), TestCaseError>
where
    S: ComposableService<Request = Vec<u32>, Output = Vec<f64>, Response = Vec<f64>> + Sync,
{
    let reqs: Vec<Vec<u32>> = batch.iter().map(|(t, _)| t.clone()).collect();
    let Some(submitted) = submitted_of(batch) else {
        return Ok(());
    };
    let batched = service.serve_batch_at(&reqs, policy, &submitted);
    prop_assert_eq!(
        batched.len(),
        reqs.len(),
        "{}: one response per request",
        label
    );
    for (i, ((req, &sub), got)) in reqs.iter().zip(&submitted).zip(&batched).enumerate() {
        let want = service.serve_at(req, policy, sub);
        prop_assert_eq!(
            &got.response,
            &want.response,
            "{}: response {} under {:?}",
            label,
            i,
            policy
        );
        prop_assert_eq!(
            &got.components,
            &want.components,
            "{}: telemetry {} under {:?}",
            label,
            i,
            policy
        );
        if batch[i].1 && matches!(policy, ExecutionPolicy::Deadline { .. }) {
            prop_assert_eq!(
                got.sets_processed(),
                0,
                "{}: expired request {} must do no improvement work",
                label,
                i
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Batched == sequential for a service overriding the batch/pooling
    /// hooks (the amortized single-pass adapter shape).
    #[test]
    fn serve_batch_equals_mapped_serve_overridden_hooks(
        batch in batches(),
        policy in policies(),
    ) {
        assert_batch_equals_sequential(overridden(), &batch, &policy, "overridden")?;
    }

    /// Batched == sequential on the default trait plumbing, with a stale
    /// top-ranked set forcing skip accounting in every improvement loop.
    #[test]
    fn serve_batch_equals_mapped_serve_default_hooks_with_stale_set(
        batch in batches(),
        policy in policies(),
    ) {
        assert_batch_equals_sequential(defaulted(), &batch, &policy, "stale-default")?;
    }

    /// Batched == sequential on both sides of the collapse-bailout
    /// threshold: duplicate-heavy batches (which collapse end to end) and
    /// mostly-unique batches (where the scan bails out mid-way and serves
    /// the remainder uncollapsed) must both be invisible in the results.
    #[test]
    fn serve_batch_equals_mapped_serve_across_collapse_bailout(
        batch in bailout_batches(),
        policy in policies(),
    ) {
        assert_batch_equals_sequential(overridden(), &batch, &policy, "bailout")?;
    }

    /// Pool warmth must never change results: serving the same batch again
    /// (now entirely from recycled buffers) reproduces it bit-for-bit.
    #[test]
    fn warm_pool_reproduces_cold_results(
        batch in batches(),
        policy in policies(),
    ) {
        let service = overridden();
        let reqs: Vec<Vec<u32>> = batch.iter().map(|(t, _)| t.clone()).collect();
        let Some(submitted) = submitted_of(&batch) else {
            return Ok(());
        };
        let cold = service.serve_batch_at(&reqs, &policy, &submitted);
        let warm = service.serve_batch_at(&reqs, &policy, &submitted);
        for (c, w) in cold.iter().zip(&warm) {
            prop_assert_eq!(&c.response, &w.response);
            prop_assert_eq!(&c.components, &w.components);
        }
    }
}

//! Property-based tests for the degradation ladder: for any starting
//! policy, `degrade_one_step` must be monotone in `cost_rank`, must
//! terminate at the `SynopsisOnly` floor in bounded steps, and the
//! `DegradationLadder` built from it must inherit both invariants.

use std::time::Duration;

use at_core::{DegradationLadder, ExecutionPolicy};
use proptest::prelude::*;

/// Decode an arbitrary policy from three generated scalars, covering all
/// four variants including hostile budgets (0, usize::MAX) and imax caps.
fn policy_from(variant: u8, sets_code: usize, imax_code: usize) -> ExecutionPolicy {
    let sets = if sets_code.is_multiple_of(7) {
        usize::MAX
    } else {
        sets_code
    };
    let imax = match imax_code % 3 {
        0 => None,
        1 => Some(0),
        _ => Some(imax_code),
    };
    match variant % 4 {
        0 => ExecutionPolicy::Exact,
        1 => ExecutionPolicy::SynopsisOnly,
        2 => ExecutionPolicy::Budgeted { sets, imax },
        _ => ExecutionPolicy::Deadline {
            l_spe: Duration::from_millis((imax_code % 500) as u64),
            imax,
        },
    }
}

/// An upper bound on ladder depth: Exact → Budgeted{MAX} →
/// Budgeted{DEGRADED_SETS} → SynopsisOnly is the longest chain.
const MAX_STEPS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn degrade_is_monotone_and_terminates_at_the_floor(
        variant in 0u8..8,
        sets_code in 0usize..100_000,
        imax_code in 0usize..10_000,
    ) {
        let start = policy_from(variant, sets_code, imax_code);
        let mut current = start;
        let mut steps = 0;
        loop {
            let next = current.degrade_one_step();
            // Monotone: one step never climbs the cost order.
            prop_assert!(next.cost_rank() <= current.cost_rank(),
                         "{current:?} -> {next:?} climbed the ladder");
            if next == current {
                break;
            }
            // Equal-rank steps must still shrink work (Budgeted budgets).
            if next.cost_rank() == current.cost_rank() {
                match (current, next) {
                    (
                        ExecutionPolicy::Budgeted { sets: before, .. },
                        ExecutionPolicy::Budgeted { sets: after, .. },
                    ) => prop_assert!(after < before,
                                      "{current:?} -> {next:?} made no progress"),
                    _ => prop_assert!(false, "only Budgeted rungs may share a rank"),
                }
            }
            current = next;
            steps += 1;
            prop_assert!(steps <= MAX_STEPS, "ladder from {start:?} did not terminate");
        }
        // The fixed point is always the synopsis-only floor.
        prop_assert_eq!(current, ExecutionPolicy::SynopsisOnly);
    }

    #[test]
    fn ladder_inherits_the_step_invariants(
        variant in 0u8..8,
        sets in 0usize..1_000,
        imax_code in 0usize..10_000,
    ) {
        let start = policy_from(variant, sets, imax_code);
        let ladder = DegradationLadder::from_policy(start);
        prop_assert!(!ladder.is_empty());
        prop_assert!(ladder.len() <= MAX_STEPS + 1);
        prop_assert_eq!(*ladder.rung(0), start, "rung 0 is the requested policy");
        prop_assert_eq!(*ladder.floor(), ExecutionPolicy::SynopsisOnly);
        for pair in ladder.rungs().windows(2) {
            prop_assert!(pair[1].cost_rank() <= pair[0].cost_rank());
            prop_assert_eq!(pair[1], pair[0].degrade_one_step(),
                            "each rung is exactly one step below the last");
        }
        // Descending past the floor clamps instead of panicking.
        prop_assert_eq!(ladder.rung(usize::MAX), ladder.floor());
    }
}

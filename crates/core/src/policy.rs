//! First-class execution policies: *how much* work a request may spend.
//!
//! The paper exposes one knob pair — the latency deadline `l_spe` and the
//! ranked-set cap `i_max` (Algorithm 1) — but a serving system needs the
//! same request driven in several modes: exactly (the baseline
//! techniques), from the synopsis alone (heaviest load shedding), under a
//! deterministic set budget (accuracy evaluations, the simulator's
//! deadline→budget conversion), or against the wall clock (production).
//! [`ExecutionPolicy`] makes that choice a value, so every layer —
//! [`Algorithm1`](crate::Algorithm1), [`Component`](crate::Component),
//! [`FanOutService`](crate::FanOutService) — is driven through one
//! `execute`/`serve` call instead of per-mode method families.

use std::time::Duration;

/// How to process one request (Algorithm 1's degrees of freedom).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecutionPolicy {
    /// Full computation over the entire original input data — the paper's
    /// Basic / request-reissue / partial-execution baselines.
    Exact,
    /// Answer from the synopsis only (a zero-set budget): the fastest,
    /// least accurate response; what an already-expired deadline degrades
    /// to.
    SynopsisOnly,
    /// Improve the synopsis result with the top `sets` ranked sets of
    /// original points, deterministically (no clock involved). The
    /// simulator converts deadlines into such budgets via its
    /// queueing/interference model.
    Budgeted {
        /// Ranked sets to process (`usize::MAX` = all of them).
        sets: usize,
        /// Optional `i_max` cap on processed sets (paper: top 40% for the
        /// search engine); `None` processes as many as the budget allows.
        imax: Option<usize>,
    },
    /// Algorithm 1 verbatim: keep improving best-correlated-sets-first
    /// while `elapsed < l_spe && i <= i_max` (lines 4–10).
    Deadline {
        /// Specified service-latency deadline `l_spe` (paper: 100 ms),
        /// measured from the request's submission instant.
        l_spe: Duration,
        /// Optional `i_max` cap on processed sets.
        imax: Option<usize>,
    },
}

impl ExecutionPolicy {
    /// Deterministic budget of `sets` ranked sets, no `i_max` cap.
    pub fn budgeted(sets: usize) -> Self {
        ExecutionPolicy::Budgeted { sets, imax: None }
    }

    /// Wall-clock deadline `l_spe`, no `i_max` cap.
    pub fn deadline(l_spe: Duration) -> Self {
        ExecutionPolicy::Deadline { l_spe, imax: None }
    }

    /// The paper's CF-recommender setting: 100 ms deadline, no `i_max`
    /// ("process as many original data points as possible").
    pub fn recommender() -> Self {
        ExecutionPolicy::deadline(Duration::from_millis(100))
    }

    /// The paper's search-engine setting: 100 ms deadline, `i_max` capped
    /// at the top `fraction` (0.4) of `total_sets` ranked sets — they
    /// contain >98% of the actual top-10 pages.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn search(total_sets: usize, fraction: f64) -> Self {
        ExecutionPolicy::Deadline {
            l_spe: Duration::from_millis(100),
            imax: Some(Self::imax_for_fraction(total_sets, fraction)),
        }
    }

    /// The `i_max` capping processing at the top `fraction` of
    /// `total_sets` ranked sets: rounded up, floored at one set — except
    /// for an empty synopsis (`total_sets == 0`), whose only consistent
    /// cap is zero (there is no set a floor of one could ever admit, and
    /// [`effective_cap`](Self::effective_cap) must stay 0).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn imax_for_fraction(total_sets: usize, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        if total_sets == 0 {
            return 0;
        }
        ((total_sets as f64 * fraction).ceil() as usize).max(1)
    }

    /// True when the policy's outcome is a pure function of the request
    /// and component state — `Exact`, `SynopsisOnly`, `Budgeted` — and
    /// false for `Deadline`, whose work depends on the wall clock and the
    /// request's submission instant. Clock-free policies let the batched
    /// serving path collapse duplicate requests safely.
    pub fn is_clock_free(&self) -> bool {
        !matches!(self, ExecutionPolicy::Deadline { .. })
    }

    /// The `i_max` cap this policy implies, if any.
    pub fn imax(&self) -> Option<usize> {
        match *self {
            ExecutionPolicy::Exact | ExecutionPolicy::SynopsisOnly => None,
            ExecutionPolicy::Budgeted { imax, .. } | ExecutionPolicy::Deadline { imax, .. } => imax,
        }
    }

    /// Upper bound on the `sets_processed` this policy can report against a
    /// synopsis of `total_sets` sets — the number an admission controller
    /// should budget for. Consistent with execution telemetry: `Exact`
    /// reports full coverage (`total_sets`), `SynopsisOnly` none.
    pub fn effective_cap(&self, total_sets: usize) -> usize {
        let imax_cap = self.imax().map_or(total_sets, |m| m.min(total_sets));
        match *self {
            ExecutionPolicy::Exact => total_sets,
            ExecutionPolicy::SynopsisOnly => 0,
            ExecutionPolicy::Budgeted { sets, .. } => sets.min(imax_cap),
            ExecutionPolicy::Deadline { .. } => imax_cap,
        }
    }

    /// The set budget a `Deadline` policy degrades to: small enough to
    /// bound service time independently of the clock, large enough to keep
    /// coverage well above the synopsis-only floor (the paper's "a little
    /// accuracy for a lot of tail latency").
    pub const DEGRADED_SETS: usize = 4;

    /// This policy's rung on the degradation ladder — a **total cost
    /// order** over variants, costliest first:
    ///
    /// `Exact` (3) > `Deadline` (2) > `Budgeted` (1) > `SynopsisOnly` (0).
    ///
    /// The order ranks *degradation direction*, not absolute wall-clock
    /// work: under load, clock-free budgeted work is cheaper than deadline
    /// work because it is deterministic (no per-request clock racing) and
    /// collapsible (duplicate requests in a batch share one computation),
    /// and `Exact` always outranks everything because it ignores the
    /// synopsis entirely.
    pub fn cost_rank(&self) -> u8 {
        match self {
            ExecutionPolicy::SynopsisOnly => 0,
            ExecutionPolicy::Budgeted { .. } => 1,
            ExecutionPolicy::Deadline { .. } => 2,
            ExecutionPolicy::Exact => 3,
        }
    }

    /// One rung down the degradation ladder: the next-cheaper policy an
    /// admission controller flips an overloaded request to. Monotone in
    /// [`cost_rank`](Self::cost_rank) (never climbs) and terminates at the
    /// [`SynopsisOnly`](ExecutionPolicy::SynopsisOnly) floor, which is its
    /// own fixed point:
    ///
    /// * `Exact` → `Budgeted { sets: MAX }` — full coverage, but through
    ///   the synopsis-first path (rankable, collapsible).
    /// * `Deadline { imax }` → `Budgeted { sets: DEGRADED_SETS, imax }` —
    ///   decouple from the clock so queue wait stops eating the budget.
    /// * `Budgeted { sets > DEGRADED_SETS }` → `Budgeted { DEGRADED_SETS }`.
    /// * `Budgeted { sets <= DEGRADED_SETS }` → `SynopsisOnly`.
    /// * `SynopsisOnly` → `SynopsisOnly`.
    pub fn degrade_one_step(&self) -> ExecutionPolicy {
        match *self {
            ExecutionPolicy::Exact => ExecutionPolicy::Budgeted {
                sets: usize::MAX,
                imax: None,
            },
            ExecutionPolicy::Deadline { imax, .. } => ExecutionPolicy::Budgeted {
                sets: Self::DEGRADED_SETS,
                imax,
            },
            ExecutionPolicy::Budgeted { sets, imax } if sets > Self::DEGRADED_SETS => {
                ExecutionPolicy::Budgeted {
                    sets: Self::DEGRADED_SETS,
                    imax,
                }
            }
            ExecutionPolicy::Budgeted { .. } | ExecutionPolicy::SynopsisOnly => {
                ExecutionPolicy::SynopsisOnly
            }
        }
    }
}

/// The ordered sequence of [`ExecutionPolicy`] rungs a request can be
/// degraded through, from the requested policy down to the
/// [`SynopsisOnly`](ExecutionPolicy::SynopsisOnly) floor.
///
/// Built by iterating [`ExecutionPolicy::degrade_one_step`] to its fixed
/// point, so the ladder inherits its invariants: rung 0 is the requested
/// policy, [`cost_rank`](ExecutionPolicy::cost_rank) never increases down
/// the ladder, and the last rung is always the floor. An admission
/// controller picks *how many* steps to descend
/// ([`rung`](DegradationLadder::rung) clamps to the floor); the ladder
/// answers *what policy* that rung is.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationLadder {
    rungs: Vec<ExecutionPolicy>,
}

impl DegradationLadder {
    /// The ladder starting at `requested` (rung 0) and descending one
    /// [`degrade_one_step`](ExecutionPolicy::degrade_one_step) per rung to
    /// the `SynopsisOnly` floor.
    pub fn from_policy(requested: ExecutionPolicy) -> Self {
        let mut rungs = vec![requested];
        let mut last = requested;
        loop {
            let next = last.degrade_one_step();
            if next == last {
                break;
            }
            rungs.push(next);
            last = next;
        }
        DegradationLadder { rungs }
    }

    /// All rungs, costliest (the requested policy) first.
    pub fn rungs(&self) -> &[ExecutionPolicy] {
        &self.rungs
    }

    /// Rungs in the ladder (always >= 1).
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Never true: a ladder always holds at least its requested policy.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The policy `steps` rungs below the requested one, clamped to the
    /// floor — `rung(0)` is the requested policy itself.
    pub fn rung(&self, steps: usize) -> &ExecutionPolicy {
        let clamped = steps.min(self.rungs.len().saturating_sub(1));
        self.rungs
            .get(clamped)
            .unwrap_or(&ExecutionPolicy::SynopsisOnly)
    }

    /// The cheapest rung (always `SynopsisOnly`, or the requested policy
    /// itself when that *is* the floor).
    pub fn floor(&self) -> &ExecutionPolicy {
        // A ladder always holds >= 1 rung; the fallback is the floor every
        // ladder bottoms out at anyway.
        self.rungs.last().unwrap_or(&ExecutionPolicy::SynopsisOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommender_matches_paper() {
        let p = ExecutionPolicy::recommender();
        assert_eq!(
            p,
            ExecutionPolicy::Deadline {
                l_spe: Duration::from_millis(100),
                imax: None,
            }
        );
        assert_eq!(p.effective_cap(42), 42);
    }

    #[test]
    fn search_caps_at_fraction() {
        let p = ExecutionPolicy::search(100, 0.4);
        assert_eq!(p.imax(), Some(40));
        assert_eq!(p.effective_cap(100), 40);
        assert_eq!(p.effective_cap(10), 10, "cap cannot exceed total");
    }

    #[test]
    fn search_fraction_rounds_up_and_floors_at_one() {
        assert_eq!(ExecutionPolicy::search(3, 0.4).imax(), Some(2));
        assert_eq!(ExecutionPolicy::search(1, 0.01).imax(), Some(1));
    }

    #[test]
    fn empty_synopsis_caps_at_zero() {
        // Regression: the one-set floor must not apply to an empty
        // synopsis — `i_max` would otherwise claim one processable set
        // that cannot exist, and `effective_cap` would disagree with the
        // zero sets execution can ever report.
        assert_eq!(ExecutionPolicy::imax_for_fraction(0, 0.4), 0);
        assert_eq!(ExecutionPolicy::imax_for_fraction(0, 0.0), 0);
        assert_eq!(ExecutionPolicy::imax_for_fraction(0, 1.0), 0);
        let p = ExecutionPolicy::search(0, 0.4);
        assert_eq!(p.imax(), Some(0));
        assert_eq!(p.effective_cap(0), 0);
        // Non-empty synopses keep the floor-at-one behaviour.
        assert_eq!(ExecutionPolicy::imax_for_fraction(1, 0.0), 1);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        ExecutionPolicy::search(10, 1.5);
    }

    #[test]
    fn clock_free_by_variant() {
        assert!(ExecutionPolicy::Exact.is_clock_free());
        assert!(ExecutionPolicy::SynopsisOnly.is_clock_free());
        assert!(ExecutionPolicy::budgeted(3).is_clock_free());
        assert!(!ExecutionPolicy::recommender().is_clock_free());
        assert!(!ExecutionPolicy::deadline(Duration::from_secs(1)).is_clock_free());
    }

    #[test]
    fn degrade_steps_down_the_ladder() {
        // Exact keeps full coverage but leaves the exact path.
        assert_eq!(
            ExecutionPolicy::Exact.degrade_one_step(),
            ExecutionPolicy::budgeted(usize::MAX)
        );
        // Deadline decouples from the clock, keeping its imax cap.
        let p = ExecutionPolicy::Deadline {
            l_spe: Duration::from_millis(100),
            imax: Some(7),
        };
        assert_eq!(
            p.degrade_one_step(),
            ExecutionPolicy::Budgeted {
                sets: ExecutionPolicy::DEGRADED_SETS,
                imax: Some(7),
            }
        );
        // Large budgets shrink to the degraded budget, small ones floor out.
        assert_eq!(
            ExecutionPolicy::budgeted(100).degrade_one_step(),
            ExecutionPolicy::budgeted(ExecutionPolicy::DEGRADED_SETS)
        );
        assert_eq!(
            ExecutionPolicy::budgeted(ExecutionPolicy::DEGRADED_SETS).degrade_one_step(),
            ExecutionPolicy::SynopsisOnly
        );
        assert_eq!(
            ExecutionPolicy::budgeted(1).degrade_one_step(),
            ExecutionPolicy::SynopsisOnly
        );
        // The floor is a fixed point.
        assert_eq!(
            ExecutionPolicy::SynopsisOnly.degrade_one_step(),
            ExecutionPolicy::SynopsisOnly
        );
    }

    #[test]
    fn cost_rank_orders_variants() {
        assert!(ExecutionPolicy::Exact.cost_rank() > ExecutionPolicy::recommender().cost_rank());
        assert!(
            ExecutionPolicy::recommender().cost_rank() > ExecutionPolicy::budgeted(3).cost_rank()
        );
        assert!(
            ExecutionPolicy::budgeted(3).cost_rank() > ExecutionPolicy::SynopsisOnly.cost_rank()
        );
    }

    #[test]
    fn ladder_from_deadline_walks_to_the_floor() {
        let ladder = DegradationLadder::from_policy(ExecutionPolicy::recommender());
        assert_eq!(
            ladder.rungs(),
            &[
                ExecutionPolicy::recommender(),
                ExecutionPolicy::budgeted(ExecutionPolicy::DEGRADED_SETS),
                ExecutionPolicy::SynopsisOnly,
            ]
        );
        assert_eq!(ladder.len(), 3);
        assert!(!ladder.is_empty());
        assert_eq!(ladder.floor(), &ExecutionPolicy::SynopsisOnly);
        // Descending past the floor clamps.
        assert_eq!(ladder.rung(0), &ExecutionPolicy::recommender());
        assert_eq!(ladder.rung(99), &ExecutionPolicy::SynopsisOnly);
    }

    #[test]
    fn ladder_from_the_floor_is_a_single_rung() {
        let ladder = DegradationLadder::from_policy(ExecutionPolicy::SynopsisOnly);
        assert_eq!(ladder.rungs(), &[ExecutionPolicy::SynopsisOnly]);
        assert_eq!(ladder.floor(), &ExecutionPolicy::SynopsisOnly);
    }

    #[test]
    fn ladder_from_exact_passes_through_budgeted() {
        let ladder = DegradationLadder::from_policy(ExecutionPolicy::Exact);
        assert_eq!(
            ladder.rungs(),
            &[
                ExecutionPolicy::Exact,
                ExecutionPolicy::budgeted(usize::MAX),
                ExecutionPolicy::budgeted(ExecutionPolicy::DEGRADED_SETS),
                ExecutionPolicy::SynopsisOnly,
            ]
        );
    }

    #[test]
    fn effective_cap_by_variant() {
        assert_eq!(ExecutionPolicy::Exact.effective_cap(9), 9);
        assert_eq!(ExecutionPolicy::SynopsisOnly.effective_cap(9), 0);
        assert_eq!(ExecutionPolicy::budgeted(3).effective_cap(9), 3);
        assert_eq!(ExecutionPolicy::budgeted(usize::MAX).effective_cap(9), 9);
        let capped = ExecutionPolicy::Budgeted {
            sets: usize::MAX,
            imax: Some(4),
        };
        assert_eq!(capped.effective_cap(9), 4);
        assert_eq!(
            ExecutionPolicy::deadline(Duration::from_secs(1)).effective_cap(9),
            9
        );
    }
}

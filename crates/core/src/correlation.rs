//! Correlation estimates between aggregated data points and a request's
//! result accuracy (paper §2.3).
//!
//! Processing an aggregated point `ag_i` yields a score `c_i`; the paper
//! assumes a linear dependency between `c_i` and how much accuracy the
//! original points in `D_i` would contribute, so aggregated points are
//! ranked by `c_i` descending and their sets processed in that order.

use at_rtree::NodeId;

/// One aggregated data point's estimated correlation to result accuracy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Correlation {
    /// The aggregated point (R-tree node at the synopsis depth).
    pub node: NodeId,
    /// Estimated relatedness — higher means processing this point's
    /// original set should improve accuracy more. Service adapters put
    /// whatever their domain uses here (|Pearson weight| for CF, similarity
    /// score for search).
    pub score: f64,
}

/// The ranking order of Algorithm 1, line 2: descending by score with ties
/// broken by node id for determinism; NaN scores sink to the end (treated
/// as minus infinity). Total over all inputs, so eager sorting and lazy
/// partial selection produce byte-identical prefixes.
pub fn cmp_ranked(a: &Correlation, b: &Correlation) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or_else(|| match (a.score.is_nan(), b.score.is_nan()) {
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            _ => std::cmp::Ordering::Equal,
        })
        .then_with(|| a.node.cmp(&b.node))
}

/// Rank correlations descending by score (Algorithm 1, line 2); ties break
/// by node id for determinism. NaN scores sink to the end.
///
/// This is the **eager** `O(m log m)` path, kept for the Figure-4 style
/// [`sections`] analyses that genuinely need the whole ranking. The serving
/// path uses [`rank_top`], whose sort work is proportional to the policy's
/// set budget.
pub fn rank(mut correlations: Vec<Correlation>) -> Vec<Correlation> {
    correlations.sort_by(cmp_ranked);
    correlations
}

/// Lazily ranked correlations: only a prefix is ever put in ranked order,
/// and the prefix grows on demand.
///
/// Backed by `select_nth_unstable_by` partitioning (average `O(m)`) plus a
/// sort of just the requested prefix — `O(m + b log b)` for a bound `b`
/// instead of the eager `O(m log m)`. When stale (skipped) sets force the
/// driver past its initial bound, the sorted prefix is extended
/// geometrically, so an overrun costs amortised `O(m)` extra, not a select
/// per rank.
///
/// The produced order is identical to [`rank`] for every prefix, including
/// tie and NaN ordering, because both use [`cmp_ranked`] — a total order in
/// which distinct elements never compare equal (node ids are unique per
/// synopsis).
#[derive(Debug)]
pub struct RankedPrefix<'a> {
    items: &'a mut [Correlation],
    sorted: usize,
}

/// Partially rank `items` in place so that the best `bound` correlations
/// are in final ranked order at the front; the tail stays unordered until
/// [`RankedPrefix::get`] demands more.
pub fn rank_top(items: &mut [Correlation], bound: usize) -> RankedPrefix<'_> {
    let mut prefix = RankedPrefix { items, sorted: 0 };
    prefix.ensure(bound);
    prefix
}

impl RankedPrefix<'_> {
    /// Total number of correlations (ranked or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no correlations at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// How many leading items are already in final ranked order.
    pub fn sorted_len(&self) -> usize {
        self.sorted
    }

    /// The rank-`i` correlation (0 = best), extending the sorted prefix
    /// geometrically if `i` lies beyond it; `None` past the end.
    pub fn get(&mut self, i: usize) -> Option<Correlation> {
        if i >= self.items.len() {
            return None;
        }
        if i >= self.sorted {
            // Grow by at least doubling so a run of stale sets costs one
            // select per doubling, not one per rank.
            let target = (self.sorted.max(4) * 2).max(i + 1).min(self.items.len());
            self.ensure(target);
        }
        self.items.get(i).copied()
    }

    /// Make the first `n` items (capped at `len`) final-ranked.
    fn ensure(&mut self, n: usize) {
        let n = n.min(self.items.len());
        if n <= self.sorted {
            return;
        }
        // lint: allow(panic-freedom) reason=sorted <= items.len() is the struct invariant; n is clamped to len above
        let tail = &mut self.items[self.sorted..];
        let k = n - self.sorted;
        if k < tail.len() {
            // Partition: best k of the tail to its front (unordered)...
            tail.select_nth_unstable_by(k - 1, cmp_ranked);
        }
        // ...then order just those k.
        // lint: allow(panic-freedom) reason=k = n - sorted <= tail.len() because n was clamped to items.len()
        tail[..k].sort_unstable_by(cmp_ranked);
        self.sorted = n;
    }
}

/// Split a ranked list into `k` near-equal contiguous sections (Figure 4
/// divides the ranked aggregated points into 10 sections). Sections differ
/// in size by at most one; empty input gives `k` empty sections.
pub fn sections(ranked: &[Correlation], k: usize) -> Vec<&[Correlation]> {
    assert!(k > 0, "sections: k must be >= 1");
    let n = ranked.len();
    (0..k)
        // lint: allow(panic-freedom) reason=i*n/k and (i+1)*n/k are monotone and capped at n for i < k
        .map(|i| &ranked[i * n / k..(i + 1) * n / k])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32, s: f64) -> Correlation {
        Correlation {
            node: NodeId::from_index(i),
            score: s,
        }
    }

    #[test]
    fn rank_descending() {
        let r = rank(vec![c(0, 0.1), c(1, 0.9), c(2, 0.5)]);
        let scores: Vec<f64> = r.iter().map(|x| x.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.1]);
    }

    #[test]
    fn rank_ties_by_node() {
        let r = rank(vec![c(5, 0.5), c(1, 0.5), c(3, 0.5)]);
        let nodes: Vec<u32> = r.iter().map(|x| x.node.index()).collect();
        assert_eq!(nodes, vec![1, 3, 5]);
    }

    #[test]
    fn rank_nan_sinks() {
        let r = rank(vec![c(0, f64::NAN), c(1, 0.2), c(2, -0.5)]);
        assert_eq!(r[0].node.index(), 1);
        assert_eq!(r[1].node.index(), 2);
        assert!(r[2].score.is_nan());
    }

    #[test]
    fn rank_empty() {
        assert!(rank(vec![]).is_empty());
    }

    #[test]
    fn rank_top_prefix_matches_eager_rank() {
        let raw: Vec<Correlation> = (0..40).map(|i| c(i, ((i * 7) % 11) as f64 * 0.1)).collect();
        let eager = rank(raw.clone());
        for bound in [0usize, 1, 5, 39, 40, 100] {
            let mut lazy = raw.clone();
            let mut prefix = rank_top(&mut lazy, bound);
            for (i, want) in eager.iter().enumerate().take(bound) {
                assert_eq!(prefix.get(i), Some(*want), "bound {bound} rank {i}");
            }
        }
    }

    #[test]
    fn rank_top_extends_past_initial_bound() {
        let raw: Vec<Correlation> = (0..64).map(|i| c(i, (i % 9) as f64)).collect();
        let eager = rank(raw.clone());
        let mut lazy = raw.clone();
        let mut prefix = rank_top(&mut lazy, 3);
        assert_eq!(prefix.sorted_len(), 3);
        // Walking past the bound (stale-set overrun) extends geometrically
        // and still agrees with the eager ranking, all the way to the end.
        for (i, want) in eager.iter().enumerate() {
            assert_eq!(prefix.get(i), Some(*want), "rank {i}");
        }
        assert_eq!(prefix.get(64), None);
        assert_eq!(prefix.len(), 64);
    }

    #[test]
    fn rank_top_handles_ties_and_nan_like_rank() {
        let raw = vec![
            c(9, 0.5),
            c(1, f64::NAN),
            c(4, 0.5),
            c(0, f64::NAN),
            c(7, 0.9),
            c(2, -1.0),
        ];
        let eager = rank(raw.clone());
        let mut lazy = raw.clone();
        let mut prefix = rank_top(&mut lazy, 2);
        for (i, want) in eager.iter().enumerate() {
            let got = prefix.get(i).unwrap();
            assert_eq!(got.node, want.node, "rank {i}");
            assert_eq!(got.score.is_nan(), want.score.is_nan());
        }
    }

    #[test]
    fn rank_top_empty() {
        let mut empty: Vec<Correlation> = Vec::new();
        let mut prefix = rank_top(&mut empty, 10);
        assert!(prefix.is_empty());
        assert_eq!(prefix.get(0), None);
    }

    #[test]
    fn sections_partition_evenly() {
        let ranked = rank((0..25).map(|i| c(i, 1.0 - i as f64 * 0.01)).collect());
        let secs = sections(&ranked, 10);
        assert_eq!(secs.len(), 10);
        let total: usize = secs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 25);
        let max = secs.iter().map(|s| s.len()).max().unwrap();
        let min = secs.iter().map(|s| s.len()).min().unwrap();
        assert!(max - min <= 1);
        // Order preserved: first section has the best scores.
        assert!(secs[0][0].score >= secs[9].last().unwrap().score);
    }

    #[test]
    fn sections_of_empty_input() {
        let secs = sections(&[], 10);
        assert_eq!(secs.len(), 10);
        assert!(secs.iter().all(|s| s.is_empty()));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn sections_zero_k_panics() {
        sections(&[], 0);
    }
}

//! Correlation estimates between aggregated data points and a request's
//! result accuracy (paper §2.3).
//!
//! Processing an aggregated point `ag_i` yields a score `c_i`; the paper
//! assumes a linear dependency between `c_i` and how much accuracy the
//! original points in `D_i` would contribute, so aggregated points are
//! ranked by `c_i` descending and their sets processed in that order.

use at_rtree::NodeId;

/// One aggregated data point's estimated correlation to result accuracy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Correlation {
    /// The aggregated point (R-tree node at the synopsis depth).
    pub node: NodeId,
    /// Estimated relatedness — higher means processing this point's
    /// original set should improve accuracy more. Service adapters put
    /// whatever their domain uses here (|Pearson weight| for CF, similarity
    /// score for search).
    pub score: f64,
}

/// Rank correlations descending by score (Algorithm 1, line 2); ties break
/// by node id for determinism. NaN scores sink to the end.
pub fn rank(mut correlations: Vec<Correlation>) -> Vec<Correlation> {
    correlations.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or_else(|| {
                // Treat NaN as minus infinity.
                match (a.score.is_nan(), b.score.is_nan()) {
                    (true, false) => std::cmp::Ordering::Greater,
                    (false, true) => std::cmp::Ordering::Less,
                    _ => std::cmp::Ordering::Equal,
                }
            })
            .then_with(|| a.node.cmp(&b.node))
    });
    correlations
}

/// Split a ranked list into `k` near-equal contiguous sections (Figure 4
/// divides the ranked aggregated points into 10 sections). Sections differ
/// in size by at most one; empty input gives `k` empty sections.
pub fn sections(ranked: &[Correlation], k: usize) -> Vec<&[Correlation]> {
    assert!(k > 0, "sections: k must be >= 1");
    let n = ranked.len();
    (0..k)
        .map(|i| &ranked[i * n / k..(i + 1) * n / k])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32, s: f64) -> Correlation {
        Correlation {
            node: NodeId::from_index(i),
            score: s,
        }
    }

    #[test]
    fn rank_descending() {
        let r = rank(vec![c(0, 0.1), c(1, 0.9), c(2, 0.5)]);
        let scores: Vec<f64> = r.iter().map(|x| x.score).collect();
        assert_eq!(scores, vec![0.9, 0.5, 0.1]);
    }

    #[test]
    fn rank_ties_by_node() {
        let r = rank(vec![c(5, 0.5), c(1, 0.5), c(3, 0.5)]);
        let nodes: Vec<u32> = r.iter().map(|x| x.node.index()).collect();
        assert_eq!(nodes, vec![1, 3, 5]);
    }

    #[test]
    fn rank_nan_sinks() {
        let r = rank(vec![c(0, f64::NAN), c(1, 0.2), c(2, -0.5)]);
        assert_eq!(r[0].node.index(), 1);
        assert_eq!(r[1].node.index(), 2);
        assert!(r[2].score.is_nan());
    }

    #[test]
    fn rank_empty() {
        assert!(rank(vec![]).is_empty());
    }

    #[test]
    fn sections_partition_evenly() {
        let ranked = rank((0..25).map(|i| c(i, 1.0 - i as f64 * 0.01)).collect());
        let secs = sections(&ranked, 10);
        assert_eq!(secs.len(), 10);
        let total: usize = secs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 25);
        let max = secs.iter().map(|s| s.len()).max().unwrap();
        let min = secs.iter().map(|s| s.len()).min().unwrap();
        assert!(max - min <= 1);
        // Order preserved: first section has the best scores.
        assert!(secs[0][0].score >= secs[9].last().unwrap().score);
    }

    #[test]
    fn sections_of_empty_input() {
        let secs = sections(&[], 10);
        assert_eq!(secs.len(), 10);
        assert!(secs.iter().all(|s| s.is_empty()));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn sections_zero_k_panics() {
        sections(&[], 0);
    }
}

//! Request routing keys for multi-worker placement.
//!
//! A sharded front end (see `at-server`'s `ShardedServer`) places each
//! submission on one of N workers. The placement that preserves the
//! paper's batched-serving win is **hash affinity**: requests that are
//! byte-equal land on the same worker, so the duplicate collapse inside
//! [`FanOutService::serve_batch`](crate::FanOutService::serve_batch)
//! keeps seeing its duplicates — a zipf-skewed stream split round-robin
//! would scatter each hot request across every worker's micro-batches
//! and pay the synopsis pass once *per worker* instead of once.
//!
//! [`RouteKey`] is the one contract that placement needs: a stable hash
//! of the request's identity. The law mirrors `Eq`/`Hash`: two requests
//! that compare equal under the service's `PartialEq` (the equality the
//! duplicate collapse uses) **must** return the same key. Unequal
//! requests should usually differ, but collisions only cost locality,
//! never correctness.
//!
//! The default building block is the FNV-1a streaming hash — small,
//! allocation-free, and stable across runs and platforms (routing must
//! be reproducible for replayed request streams, so `std`'s randomly
//! seeded `DefaultHasher` is not an option).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher: feed words, take the key.
///
/// Allocation-free and deterministic across processes — the properties
/// the routing hot path and replayed-stream reproducibility need.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Start a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mix one byte.
    #[inline]
    pub fn write_u8(&mut self, byte: u8) {
        self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }

    /// Mix a `u32` (little-endian bytes).
    #[inline]
    pub fn write_u32(&mut self, word: u32) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Mix a `u64` (little-endian bytes).
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Mix an `f64` by its bit pattern (routing hashes identity, not
    /// numeric equivalence classes; `-0.0` and `0.0` may differ — that
    /// only costs locality on requests `PartialEq` would also separate
    /// when produced by different float computations).
    #[inline]
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The accumulated 64-bit hash.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Hash a byte slice with FNV-1a (convenience over [`Fnv1a`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    for &b in bytes {
        h.write_u8(b);
    }
    h.finish()
}

/// A stable routing key for multi-worker placement.
///
/// # Contract
/// `a == b` (the request type's `PartialEq`, i.e. the equality the
/// batched duplicate collapse uses) implies
/// `a.route_key() == b.route_key()`. The key must be deterministic
/// across runs — replayed request streams route identically.
pub trait RouteKey {
    /// This request's stable placement hash.
    fn route_key(&self) -> u64;
}

macro_rules! impl_route_key_uint {
    ($($t:ty),*) => {$(
        impl RouteKey for $t {
            #[inline]
            fn route_key(&self) -> u64 {
                let mut h = Fnv1a::new();
                h.write_u64(*self as u64);
                h.finish()
            }
        }
    )*};
}

impl_route_key_uint!(u8, u16, u32, u64, usize);

impl<K: RouteKey + ?Sized> RouteKey for &K {
    fn route_key(&self) -> u64 {
        (**self).route_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn equal_requests_share_a_key() {
        assert_eq!(7u32.route_key(), 7u32.route_key());
        // The blanket `&K` impl, called explicitly, forwards to the
        // value impl.
        let seven = 7u32;
        assert_eq!(<&u32 as RouteKey>::route_key(&&seven), seven.route_key());
    }

    #[test]
    fn keys_spread_small_domains() {
        // 24 distinct requests over 4 workers: every worker owns at
        // least one key (the quick-deployment shape the shard bench
        // routes).
        let mut owners = [false; 4];
        for r in 0..24u32 {
            owners[(r.route_key() % 4) as usize] = true;
        }
        assert!(
            owners.iter().all(|&o| o),
            "hash must spread 24 keys over 4 workers"
        );
    }

    #[test]
    fn streaming_words_match_byte_feed() {
        let mut h = Fnv1a::new();
        h.write_u32(0x0403_0201);
        assert_eq!(h.finish(), fnv1a(&[1, 2, 3, 4]));
    }
}

//! A service component: one subset of input data plus its synopsis.
//!
//! The paper deploys 108 parallel components, each processing one subset.
//! A [`Component`] owns the subset ([`RowStore`]), the offline artifacts
//! ([`SynopsisStore`]), and the service hooks; it exposes one online entry
//! point — [`execute`](Component::execute) under an [`ExecutionPolicy`] —
//! plus incremental data updating.

use std::sync::Arc;
use std::time::Instant;

use at_synopsis::{
    AggregationMode, DataUpdate, RowStore, SynopsisConfig, SynopsisStore, UpdateReport,
};

use crate::outcome::Outcome;
use crate::policy::ExecutionPolicy;
use crate::pool::OutputPool;
use crate::processor::{Algorithm1, ApproximateService, Ctx};

/// The shareable read-only half of a [`Component`]: the input subset and
/// its offline artifacts. Replicated serving workers (see
/// [`FanOutService::replica`](crate::FanOutService::replica)) hold one
/// `Arc` of this each — N workers, one copy of the data.
#[derive(Clone, Debug)]
struct ComponentData {
    dataset: RowStore,
    store: SynopsisStore,
}

/// One parallel component of an online service.
///
/// The data half (subset + synopsis) lives behind an [`Arc`], so
/// [`replica`](Self::replica) can stamp out additional serving instances
/// over the *same* read-only data at the cost of a pointer copy.
/// Mutation ([`apply_updates`](Self::apply_updates)) is copy-on-write:
/// a component whose data is currently shared first un-shares it, so an
/// updated instance diverges from its replicas instead of racing them.
pub struct Component<S> {
    data: Arc<ComponentData>,
    service: S,
}

impl<S: ApproximateService> Component<S> {
    /// Build a component: runs the offline synopsis-creation pipeline over
    /// `dataset`.
    pub fn build(
        dataset: RowStore,
        mode: AggregationMode,
        config: SynopsisConfig,
        service: S,
    ) -> (Self, at_synopsis::BuildReport) {
        let (store, report) = SynopsisStore::build(&dataset, mode, config);
        (
            Component {
                data: Arc::new(ComponentData { dataset, store }),
                service,
            },
            report,
        )
    }

    /// Wrap pre-built state (used by tests and the simulator's calibration).
    pub fn from_parts(dataset: RowStore, store: SynopsisStore, service: S) -> Self {
        Component {
            data: Arc::new(ComponentData { dataset, store }),
            service,
        }
    }

    /// A serving replica over the **same** read-only data: the subset and
    /// synopsis are `Arc`-shared (no copy), only the service hooks are
    /// cloned. The scale-out primitive behind
    /// [`FanOutService::replica`](crate::FanOutService::replica).
    pub fn replica(&self) -> Self
    where
        S: Clone,
    {
        Component {
            data: Arc::clone(&self.data),
            service: self.service.clone(),
        }
    }

    /// The subset of input data.
    pub fn dataset(&self) -> &RowStore {
        &self.data.dataset
    }

    /// The offline artifacts (synopsis, index file, R-tree, reducer).
    pub fn store(&self) -> &SynopsisStore {
        &self.data.store
    }

    /// The service hooks.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Read-only processing context.
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx {
            dataset: &self.data.dataset,
            store: &self.data.store,
        }
    }

    /// Process one request under `policy`. `submitted` is the request
    /// submission instant, so upstream queueing delay counts against a
    /// deadline policy exactly as in the paper.
    pub fn execute(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> Outcome<S::Output> {
        Algorithm1::new(&self.data.dataset, &self.data.store, &self.service)
            .execute(req, policy, submitted)
    }

    /// [`execute`](Self::execute) with the output buffer drawn from (and
    /// eventually returned to) `pool` by the caller.
    pub fn execute_pooled(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
        pool: &OutputPool<S::Output>,
    ) -> Outcome<S::Output> {
        Algorithm1::new(&self.data.dataset, &self.data.store, &self.service)
            .execute_pooled(req, policy, submitted, pool)
    }

    /// Process a whole batch of requests under one `policy` through a
    /// single shared synopsis pass; `submitted[i]` is request `i`'s
    /// submission instant (see [`Algorithm1::execute_batch`]).
    pub fn execute_batch(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
        submitted: &[Instant],
    ) -> Vec<Outcome<S::Output>> {
        Algorithm1::new(&self.data.dataset, &self.data.store, &self.service)
            .execute_batch(reqs, policy, submitted)
    }

    /// [`execute_batch`](Self::execute_batch) with output buffers recycled
    /// through `pool`.
    pub fn execute_batch_pooled(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
        submitted: &[Instant],
        pool: &OutputPool<S::Output>,
    ) -> Vec<Outcome<S::Output>> {
        Algorithm1::new(&self.data.dataset, &self.data.store, &self.service)
            .execute_batch_pooled(reqs, policy, submitted, pool)
    }

    /// Apply input-data changes and incrementally update the synopsis.
    ///
    /// Copy-on-write with respect to [`replica`](Self::replica): when the
    /// data is currently shared, it is deep-copied first, so replicas keep
    /// serving the pre-update snapshot (refresh them by taking new
    /// replicas after the update).
    pub fn apply_updates(&mut self, updates: Vec<DataUpdate>) -> UpdateReport {
        let data = Arc::make_mut(&mut self.data);
        data.store.apply_updates(&mut data.dataset, updates)
    }

    /// Consistency check of the offline artifacts.
    pub fn validate(&self) -> Result<(), String> {
        self.data.store.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::Correlation;
    use at_linalg::svd::SvdConfig;
    use at_synopsis::SparseRow;

    struct CountService;

    impl ApproximateService for CountService {
        type Request = ();
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _req: &(), corr: &mut Vec<Correlation>) -> usize {
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: p.member_count as f64,
            }));
            0
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _req: &(),
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _req: &()) -> usize {
            ctx.dataset.len()
        }
    }

    fn data(n: usize) -> RowStore {
        let mut s = RowStore::new(8);
        for r in 0..n as u32 {
            s.push_row(SparseRow::from_pairs(
                (0..8).map(|c| (c, ((r + c) % 5) as f64)).collect(),
            ));
        }
        s
    }

    fn quick() -> SynopsisConfig {
        SynopsisConfig {
            svd: SvdConfig::default().with_epochs(10),
            size_ratio: 15,
            ..SynopsisConfig::default()
        }
    }

    #[test]
    fn build_and_process() {
        let (c, report) = Component::build(data(150), AggregationMode::Mean, quick(), CountService);
        assert_eq!(report.n_points, 150);
        c.validate().unwrap();
        // Full budget processes every member exactly once.
        let o = c.execute(&(), &ExecutionPolicy::budgeted(usize::MAX), Instant::now());
        assert_eq!(o.output, 150);
        let exact = c.execute(&(), &ExecutionPolicy::Exact, Instant::now());
        assert_eq!(exact.output, 150);
    }

    #[test]
    fn updates_flow_through() {
        let (mut c, _) = Component::build(data(100), AggregationMode::Mean, quick(), CountService);
        let row = SparseRow::from_pairs((0..8).map(|x| (x, 1.0)).collect());
        let rep = c.apply_updates(vec![DataUpdate::Add(row)]);
        assert_eq!(rep.added, 1);
        c.validate().expect("component consistent after update");
        assert_eq!(
            c.execute(&(), &ExecutionPolicy::Exact, Instant::now())
                .output,
            101
        );
        let o = c.execute(&(), &ExecutionPolicy::budgeted(usize::MAX), Instant::now());
        assert_eq!(o.output, 101);
    }
}

//! Algorithm 1: accuracy-aware approximate processing on a component.
//!
//! The engine is generic over an [`ApproximateService`] that supplies the
//! three service-specific operations (synopsis processing, improvement with
//! one ranked set, and the exact baseline). One driver runs them all:
//!
//! * [`execute`](Algorithm1::execute) — drive a request under any
//!   [`ExecutionPolicy`]: the exact baseline, the synopsis alone, a
//!   deterministic set budget (accuracy evaluations; the simulator converts
//!   deadlines into budgets via its queueing/interference model), or the
//!   literal wall-clock loop of Algorithm 1 (lines 4–10, checking
//!   `l_ela < l_spe` between sets).
//! * [`execute_batch`](Algorithm1::execute_batch) — drive a whole batch of
//!   requests through **one** stage-1 pass over the synopsis
//!   ([`ApproximateService::process_synopsis_batch`]), each request keeping
//!   its own deadline/budget accounting; bit-identical to mapping
//!   `execute` over the batch. The `*_pooled` variants recycle output
//!   buffers through an [`OutputPool`](crate::OutputPool).
//!
//! Ranked sets whose aggregated point has gone stale (present in the
//! synopsis but missing from the index file) are *skipped*, not fatal:
//! they are counted in [`Outcome::sets_skipped`] so operators can alarm on
//! index corruption without the serving path crashing.
//!
//! # Hot-path invariants
//!
//! `execute` is the per-request serving path and holds two invariants:
//!
//! * **No per-set allocation.** The correlation vector is a per-worker
//!   scratch buffer reused across requests (a thread-local, so every rayon
//!   worker in [`FanOutService::serve`](crate::FanOutService::serve) keeps
//!   its own); [`ApproximateService::process_synopsis`] fills it in place.
//!   Weight computation ([`at_linalg::pearson_on_common`]) is a streaming
//!   merge with no intermediate vectors, and neighbour means come from the
//!   [`at_linalg::RowStats`] caches in the stores.
//! * **Sort work proportional to the budget.** Ranking goes through
//!   [`rank_top`](crate::correlation::rank_top): only the top `bound` ranks
//!   implied by the policy (`i_max`, set budget; full for a live deadline)
//!   are put in order — `O(m + b log b)` instead of `O(m log m)` — and the
//!   prefix extends geometrically only when stale-set skips force the loop
//!   past its initial bound. The eager [`rank`] stays available for the
//!   Figure-4 `sections` analyses, and both orders are identical for every
//!   prefix (same total comparator, [`crate::correlation::cmp_ranked`]).

use std::cell::RefCell;
use std::time::Instant;

use at_synopsis::{RowStore, SynopsisStore};

use crate::clock;
use crate::correlation::{rank, rank_top, Correlation};
use crate::outcome::Outcome;
use crate::policy::ExecutionPolicy;
use crate::pool::OutputPool;

thread_local! {
    /// Per-worker correlation scratch, reused across requests. Capacity
    /// converges to the largest synopsis this worker has served.
    static CORR_SCRATCH: RefCell<Vec<Correlation>> = const { RefCell::new(Vec::new()) };

    /// Per-worker batch correlation scratch: one vector per in-flight
    /// request of a batch, reused across batches. Grows to the largest
    /// batch this worker has served.
    static BATCH_SCRATCH: RefCell<Vec<Vec<Correlation>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with this worker's cleared correlation scratch buffer. Falls
/// back to a fresh vector under re-entrancy (a service calling back into
/// `execute` on the same thread) so the serving path can never deadlock on
/// its own scratch.
fn with_corr_scratch<R>(f: impl FnOnce(&mut Vec<Correlation>) -> R) -> R {
    CORR_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            buf.clear();
            f(&mut buf)
        }
        Err(_) => f(&mut Vec::new()),
    })
}

/// Run `f` with `n` cleared correlation scratch buffers from this worker's
/// batch scratch (fresh vectors under re-entrancy, like
/// [`with_corr_scratch`]).
fn with_batch_scratch<R>(n: usize, f: impl FnOnce(&mut [Vec<Correlation>]) -> R) -> R {
    BATCH_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut bufs) => {
            if bufs.len() < n {
                bufs.resize_with(n, Vec::new);
            }
            // lint: allow(panic-freedom) reason=bufs was resized to at least n directly above
            for buf in &mut bufs[..n] {
                buf.clear();
            }
            // lint: allow(panic-freedom) reason=bufs was resized to at least n directly above
            f(&mut bufs[..n])
        }
        Err(_) => {
            let mut fresh = vec![Vec::new(); n];
            f(&mut fresh)
        }
    })
}

/// Read-only view a service implementation gets of a component's state.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    /// The component's subset of original input data.
    pub dataset: &'a RowStore,
    /// The synopsis store (synopsis + index file + R-tree + reducer).
    pub store: &'a SynopsisStore,
}

/// Service-specific request processing hooks.
///
/// Incorporating AccuracyTrader "does not require any modification in the
/// request processing algorithm, but controlling the input dataset fed to
/// the algorithm" (§3.2): `process_synopsis` feeds it the synopsis,
/// `improve` feeds it one ranked set of original points, `process_exact`
/// feeds it everything.
pub trait ApproximateService {
    /// Request type (active user + target items; query terms; …).
    type Request;
    /// Per-component result type (rating estimate; top-k heap; …).
    type Output: Clone;

    /// Stage 1: produce the initial approximate result from the synopsis
    /// and estimate each aggregated point's correlation to result accuracy
    /// (Algorithm 1, line 1), pushing one [`Correlation`] per aggregated
    /// point into `corr`.
    ///
    /// `corr` arrives empty; it is a reusable scratch buffer owned by the
    /// driver (per-worker, reused across requests), so implementations must
    /// only push into it — never assume ownership or keep references.
    fn process_synopsis(
        &self,
        ctx: Ctx<'_>,
        req: &Self::Request,
        corr: &mut Vec<Correlation>,
    ) -> Self::Output;

    /// Stage 1 into a **recycled** output buffer: reset `out` in place to
    /// exactly the value [`process_synopsis`](Self::process_synopsis)
    /// would return, filling `corr` identically.
    ///
    /// The default overwrites `out` with a fresh allocation, which is
    /// always correct; services participating in output pooling
    /// ([`OutputPool`]) override this to reuse `out`'s storage so a warm
    /// server allocates nothing for outputs. A recycled buffer may come
    /// from *any* earlier request, so implementations must fully reset it
    /// before accumulating.
    fn process_synopsis_into(
        &self,
        ctx: Ctx<'_>,
        req: &Self::Request,
        corr: &mut Vec<Correlation>,
        out: &mut Self::Output,
    ) {
        *out = self.process_synopsis(ctx, req, corr);
    }

    /// Stage 1 over a whole **batch** of requests.
    ///
    /// Contract: after the call, `outs.len() == reqs.len()` and for every
    /// request `i`, `(corrs[i], outs[i])` equal what
    /// [`process_synopsis_into`](Self::process_synopsis_into) would produce
    /// for `reqs[i]` — same correlation order, same floating-point
    /// operation order, so batched and sequential execution are
    /// bit-identical. `outs` arrives holding up to `reqs.len()` recycled
    /// buffers (from an [`OutputPool`]) which must be reset and reused;
    /// missing buffers are created fresh. `corrs` arrives with one cleared
    /// vector per request.
    ///
    /// The default runs the per-request hook once per request. Services
    /// override it to make **one pass over the synopsis shared by every
    /// request in the batch** (outer loop over aggregated points, inner
    /// loop over requests), which keeps each point's row hot in cache and
    /// amortizes the pass — the paper's Storm topology processes request
    /// *streams*, and this hook is where that amortization lives.
    fn process_synopsis_batch(
        &self,
        ctx: Ctx<'_>,
        reqs: &[Self::Request],
        corrs: &mut [Vec<Correlation>],
        outs: &mut Vec<Self::Output>,
    ) {
        debug_assert_eq!(reqs.len(), corrs.len());
        outs.truncate(reqs.len());
        let recycled = outs.len();
        for (i, (req, corr)) in reqs.iter().zip(corrs.iter_mut()).enumerate() {
            if i < recycled {
                // lint: allow(panic-freedom) reason=i < recycled = outs.len() in this branch
                self.process_synopsis_into(ctx, req, corr, &mut outs[i]);
            } else {
                outs.push(self.process_synopsis(ctx, req, corr));
            }
        }
    }

    /// Stage 2: improve the result using the original data points of one
    /// ranked set (Algorithm 1, line 7). `node` identifies the aggregated
    /// point the set came from, so implementations can subtract its
    /// synopsis-estimated contribution before adding the exact one.
    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &Self::Request,
        out: &mut Self::Output,
        node: at_rtree::NodeId,
        members: &[u64],
    );

    /// Baseline: full computation over the entire input data — what the
    /// paper's Basic / request-reissue / partial-execution techniques run.
    fn process_exact(&self, ctx: Ctx<'_>, req: &Self::Request) -> Self::Output;
}

/// A fan-out service that can merge ordered per-component partial outputs
/// into the final user-visible response (the paper's composing component,
/// §4.3).
///
/// `parts` arrive in component order, so implementations that namespace
/// results per component (e.g. the search engine's global document ids)
/// can use the slice position.
pub trait ComposableService: ApproximateService {
    /// The user-visible response (predictions per target; merged top-k; …).
    type Response;

    /// Compose per-component outputs into the final response.
    fn compose(&self, req: &Self::Request, parts: &[Self::Output]) -> Self::Response;
}

/// The Algorithm 1 engine bound to one component's state.
pub struct Algorithm1<'a, S> {
    ctx: Ctx<'a>,
    service: &'a S,
}

impl<'a, S: ApproximateService> Algorithm1<'a, S> {
    /// Bind the engine to a component's dataset/synopsis and service hooks.
    pub fn new(dataset: &'a RowStore, store: &'a SynopsisStore, service: &'a S) -> Self {
        Algorithm1 {
            ctx: Ctx { dataset, store },
            service,
        }
    }

    /// Stage 1 + full eager ranking: initial synopsis result and the ranked
    /// sets, without any improvement (the Figure-4 style effectiveness
    /// analyses, which consume the entire ranking).
    pub fn ranked(&self, req: &S::Request) -> (S::Output, Vec<Correlation>) {
        let mut corr = Vec::new();
        let out = self.service.process_synopsis(self.ctx, req, &mut corr);
        (out, rank(corr))
    }

    /// Run one request under `policy`. `submitted` is the request
    /// submission instant: queueing delay upstream of this call counts
    /// against a [`ExecutionPolicy::Deadline`] exactly as in the paper.
    pub fn execute(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> Outcome<S::Output> {
        if let ExecutionPolicy::Exact = policy {
            return self.execute_exact(req);
        }
        with_corr_scratch(|corr| {
            let mut out = self.service.process_synopsis(self.ctx, req, corr);
            self.improve_best_first(req, policy, submitted, corr, &mut out)
                .map(|()| out)
        })
    }

    /// [`execute`](Self::execute), drawing the output buffer from `pool`
    /// when one is available (stage 1 then resets it in place via
    /// [`ApproximateService::process_synopsis_into`]). The caller owns the
    /// returned output and is responsible for returning it to the pool once
    /// composed — [`FanOutService::serve`](crate::FanOutService::serve)
    /// does both ends.
    pub fn execute_pooled(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
        pool: &OutputPool<S::Output>,
    ) -> Outcome<S::Output> {
        if let ExecutionPolicy::Exact = policy {
            // The exact baseline rebuilds its output from all original
            // data; it is not the steady-state serving path, so it is not
            // pooled.
            return self.execute_exact(req);
        }
        with_corr_scratch(|corr| {
            let mut out = match pool.get() {
                Some(mut buf) => {
                    self.service
                        .process_synopsis_into(self.ctx, req, corr, &mut buf);
                    buf
                }
                None => self.service.process_synopsis(self.ctx, req, corr),
            };
            self.improve_best_first(req, policy, submitted, corr, &mut out)
                .map(|()| out)
        })
    }

    /// Run a whole **batch** of requests under one `policy`, making a
    /// single stage-1 pass over the synopsis shared by every request
    /// ([`ApproximateService::process_synopsis_batch`]) and then improving
    /// each request independently. `submitted[i]` is request `i`'s
    /// submission instant, so every request keeps its own deadline/budget
    /// accounting and its own [`Outcome`] telemetry — under clock-free
    /// policies, batched execution is bit-identical to mapping
    /// [`execute`](Self::execute) over the batch (a *live*
    /// [`ExecutionPolicy::Deadline`] additionally counts time spent behind
    /// earlier batch members, like any queueing delay).
    ///
    /// # Panics
    /// Panics when `reqs` and `submitted` differ in length.
    pub fn execute_batch(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
        submitted: &[Instant],
    ) -> Vec<Outcome<S::Output>> {
        self.execute_batch_with(reqs, policy, submitted, None)
    }

    /// [`execute_batch`](Self::execute_batch) with output buffers recycled
    /// through `pool` (one `get` per request where the pool has buffers,
    /// fresh allocations only for the remainder).
    pub fn execute_batch_pooled(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
        submitted: &[Instant],
        pool: &OutputPool<S::Output>,
    ) -> Vec<Outcome<S::Output>> {
        self.execute_batch_with(reqs, policy, submitted, Some(pool))
    }

    fn execute_batch_with(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
        submitted: &[Instant],
        pool: Option<&OutputPool<S::Output>>,
    ) -> Vec<Outcome<S::Output>> {
        assert_eq!(
            reqs.len(),
            submitted.len(),
            "execute_batch: one submission instant per request"
        );
        if reqs.is_empty() {
            return Vec::new();
        }
        if let ExecutionPolicy::Exact = policy {
            return reqs.iter().map(|req| self.execute_exact(req)).collect();
        }
        with_batch_scratch(reqs.len(), |corrs| {
            let mut outs = Vec::with_capacity(reqs.len());
            if let Some(pool) = pool {
                pool.get_up_to(reqs.len(), &mut outs);
            }
            self.service
                .process_synopsis_batch(self.ctx, reqs, corrs, &mut outs);
            // Hard contract check (O(1) per batch): a short `outs` would
            // otherwise silently truncate the zip below and serve the
            // tail of the batch from nothing.
            assert_eq!(
                outs.len(),
                reqs.len(),
                "process_synopsis_batch must produce one output per request"
            );
            outs.into_iter()
                .zip(corrs.iter_mut())
                .zip(reqs.iter().zip(submitted))
                .map(|((mut out, corr), (req, &sub))| {
                    self.improve_best_first(req, policy, sub, corr, &mut out)
                        .map(|()| out)
                })
                .collect()
        })
    }

    /// The exact baseline with uniform full-coverage telemetry. (The sets
    /// count is the synopsis size — stage 1 never runs here, so a service
    /// emitting extra/fewer correlations than synopsis points reports the
    /// canonical count instead.)
    fn execute_exact(&self, req: &S::Request) -> Outcome<S::Output> {
        let total = self.ctx.store.synopsis().len();
        Outcome {
            output: self.service.process_exact(self.ctx, req),
            sets_processed: total,
            sets_total: total,
            sets_skipped: 0,
        }
    }

    /// Stage 2, Algorithm 1 lines 2–10: rank `corr` lazily and improve
    /// `out` best-sets-first within `policy`'s limits. Shared by the
    /// single-request and batch drivers so both process identical sets.
    fn improve_best_first(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
        corr: &mut [Correlation],
        out: &mut S::Output,
    ) -> Outcome<()> {
        // Work limits before any sort work: when no set can ever be
        // processed (SynopsisOnly, a zero budget, or a deadline that
        // expired while queueing) the bound is 0 and no sorting happens.
        let (work_cap, deadline) = match *policy {
            ExecutionPolicy::SynopsisOnly => (0, None),
            ExecutionPolicy::Budgeted { sets, .. } => (sets, None),
            ExecutionPolicy::Deadline { l_spe, .. } => {
                if clock::elapsed_since(submitted) >= l_spe {
                    (0, None)
                } else {
                    (usize::MAX, Some(l_spe))
                }
            }
            // lint: allow(panic-freedom) reason=both execute drivers return via execute_exact before ranking; reaching here is a driver bug worth crashing on
            ExecutionPolicy::Exact => unreachable!("exact path never ranks"),
        };
        let total = corr.len();
        // `i_max` bounds which *ranks* may ever be considered
        // (Algorithm 1's `i <= i_max` loop condition) — a stale entry
        // inside the cut must not pull in sets beyond it. The set
        // budget bounds *work done*, so skipped (unprocessable) sets do
        // not consume it, and a skip may extend the lazily ranked
        // prefix past the initial bound (never past `rank_bound`).
        let rank_bound = policy.imax().map_or(total, |m| m.min(total));
        let mut ranked = rank_top(corr, work_cap.min(rank_bound));
        let mut processed = 0usize;
        let mut skipped = 0usize;
        let mut i = 0usize;
        while i < rank_bound && processed < work_cap {
            if let Some(l_spe) = deadline {
                if clock::elapsed_since(submitted) >= l_spe {
                    break;
                }
            }
            // `i < rank_bound <= len`, so `get` cannot miss; breaking keeps
            // the serving path panic-free even if that invariant broke.
            let Some(corr) = ranked.get(i) else { break };
            match self.ctx.store.index().members(corr.node) {
                Some(members) => {
                    self.service.improve(self.ctx, req, out, corr.node, members);
                    processed += 1;
                }
                // Stale synopsis entry (e.g. an index-file update raced
                // or was corrupted): degrade gracefully, keep serving.
                None => skipped += 1,
            }
            i += 1;
        }
        Outcome {
            output: (),
            sets_processed: processed,
            sets_total: total,
            sets_skipped: skipped,
        }
    }

    /// The component context (for adapters needing direct access).
    pub fn ctx(&self) -> Ctx<'a> {
        self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_linalg::svd::SvdConfig;
    use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
    use std::time::Duration;

    /// Toy service: request is a target column; output is the sum of that
    /// column over processed rows. Correlation of an aggregated point = its
    /// aggregated value at the column (higher = more mass there).
    struct SumService;

    impl ApproximateService for SumService {
        type Request = u32;
        type Output = f64;

        fn process_synopsis(&self, ctx: Ctx<'_>, req: &u32, corr: &mut Vec<Correlation>) -> f64 {
            for p in ctx.store.synopsis().iter() {
                corr.push(Correlation {
                    node: p.node,
                    score: p.info.get(*req).unwrap_or(0.0),
                });
            }
            // Initial estimate: aggregated value × member count, summed.
            ctx.store
                .synopsis()
                .iter()
                .map(|p| p.info.get(*req).unwrap_or(0.0) * p.member_count as f64)
                .sum()
        }

        fn improve(
            &self,
            ctx: Ctx<'_>,
            req: &u32,
            out: &mut f64,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            // "Improvement" here: recompute this group's contribution
            // exactly. The synopsis-estimate contribution is replaced.
            let agg: f64 = ctx
                .dataset
                .aggregate(members, AggregationMode::Mean)
                .get(*req)
                .unwrap_or(0.0)
                * members.len() as f64;
            let exact: f64 = members
                .iter()
                .filter_map(|&m| ctx.dataset.row(m).get(*req))
                .sum();
            *out += exact - agg;
        }

        fn process_exact(&self, ctx: Ctx<'_>, req: &u32) -> f64 {
            (0..ctx.dataset.len() as u64)
                .filter_map(|m| ctx.dataset.row(m).get(*req))
                .sum()
        }
    }

    /// `SumService` that additionally reports one bogus (stale) ranked set
    /// with the highest correlation score.
    struct StaleIndexService;

    impl ApproximateService for StaleIndexService {
        type Request = u32;
        type Output = f64;

        fn process_synopsis(&self, ctx: Ctx<'_>, req: &u32, corr: &mut Vec<Correlation>) -> f64 {
            let out = SumService.process_synopsis(ctx, req, corr);
            corr.push(Correlation {
                node: at_rtree::NodeId::from_index(u32::MAX),
                score: f64::INFINITY,
            });
            out
        }

        fn improve(
            &self,
            ctx: Ctx<'_>,
            req: &u32,
            out: &mut f64,
            node: at_rtree::NodeId,
            members: &[u64],
        ) {
            SumService.improve(ctx, req, out, node, members);
        }

        fn process_exact(&self, ctx: Ctx<'_>, req: &u32) -> f64 {
            SumService.process_exact(ctx, req)
        }
    }

    fn setup() -> (RowStore, SynopsisStore) {
        let mut data = RowStore::new(12);
        for r in 0..120u32 {
            let base = if r % 2 == 0 { 1.0 } else { 4.0 };
            let pairs: Vec<(u32, f64)> = (0..12)
                .map(|c| (c, base + ((r + c) % 3) as f64 * 0.25))
                .collect();
            data.push_row(SparseRow::from_pairs(pairs));
        }
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(20),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let (store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg);
        (data, store)
    }

    fn exact_of(engine: &Algorithm1<'_, SumService>, req: u32) -> f64 {
        engine
            .execute(&req, &ExecutionPolicy::Exact, Instant::now())
            .output
    }

    /// The eager reference driver: full `rank()` sort, then the same
    /// improvement loop — what `execute` ran before lazy ranking. Used to
    /// prove `Outcome` equivalence of the lazy path for every policy.
    fn execute_eager<S: ApproximateService>(
        engine: &Algorithm1<'_, S>,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> Outcome<S::Output> {
        if let ExecutionPolicy::Exact = policy {
            let total = engine.ctx.store.synopsis().len();
            return Outcome {
                output: engine.service.process_exact(engine.ctx, req),
                sets_processed: total,
                sets_total: total,
                sets_skipped: 0,
            };
        }
        let (mut out, ranked) = engine.ranked(req);
        let total = ranked.len();
        let rank_bound = policy.imax().map_or(total, |m| m.min(total));
        let (work_cap, deadline) = match *policy {
            ExecutionPolicy::SynopsisOnly => (0, None),
            ExecutionPolicy::Budgeted { sets, .. } => (sets, None),
            ExecutionPolicy::Deadline { l_spe, .. } => (usize::MAX, Some(l_spe)),
            ExecutionPolicy::Exact => unreachable!(),
        };
        let mut processed = 0usize;
        let mut skipped = 0usize;
        for corr in ranked.iter().take(rank_bound) {
            if processed >= work_cap {
                break;
            }
            if let Some(l_spe) = deadline {
                if submitted.elapsed() >= l_spe {
                    break;
                }
            }
            match engine.ctx.store.index().members(corr.node) {
                Some(members) => {
                    engine
                        .service
                        .improve(engine.ctx, req, &mut out, corr.node, members);
                    processed += 1;
                }
                None => skipped += 1,
            }
        }
        Outcome {
            output: out,
            sets_processed: processed,
            sets_total: total,
            sets_skipped: skipped,
        }
    }

    #[test]
    fn synopsis_only_returns_synopsis_estimate() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.execute(&3, &ExecutionPolicy::SynopsisOnly, Instant::now());
        assert_eq!(o.sets_processed, 0);
        assert_eq!(o.sets_skipped, 0);
        assert!(o.sets_total > 0);
        // Mean-aggregation estimate of a dense column is exact up to FP.
        assert!((o.output - exact_of(&engine, 3)).abs() < 1e-6);
    }

    #[test]
    fn synopsis_only_equals_zero_budget() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let a = engine.execute(&3, &ExecutionPolicy::SynopsisOnly, Instant::now());
        let b = engine.execute(&3, &ExecutionPolicy::budgeted(0), Instant::now());
        assert_eq!(a.output, b.output);
        assert_eq!(a.sets_processed, b.sets_processed);
    }

    #[test]
    fn full_budget_equals_exact() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.execute(&5, &ExecutionPolicy::budgeted(usize::MAX), Instant::now());
        assert_eq!(o.sets_processed, o.sets_total);
        let exact = exact_of(&engine, 5);
        assert!((o.output - exact).abs() < 1e-6, "{} vs {exact}", o.output);
    }

    #[test]
    fn exact_policy_reports_full_coverage() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.execute(&5, &ExecutionPolicy::Exact, Instant::now());
        assert_eq!(o.sets_processed, o.sets_total);
        assert_eq!(o.coverage(), 1.0);
    }

    #[test]
    fn imax_caps_processing() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.execute(
            &0,
            &ExecutionPolicy::Budgeted {
                sets: usize::MAX,
                imax: Some(2),
            },
            Instant::now(),
        );
        assert_eq!(o.sets_processed, 2);
    }

    #[test]
    fn budget_caps_processing() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.execute(&0, &ExecutionPolicy::budgeted(3), Instant::now());
        assert_eq!(o.sets_processed, 3.min(o.sets_total));
    }

    #[test]
    fn ranked_sets_processed_best_first() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let (_, ranked) = engine.ranked(&0);
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "ranking not descending");
        }
    }

    #[test]
    fn deadline_already_expired_processes_no_sets() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let policy = ExecutionPolicy::deadline(Duration::from_millis(10));
        // Request "submitted" well before the deadline window.
        let start = Instant::now() - Duration::from_millis(50);
        let o = engine.execute(&1, &policy, start);
        assert_eq!(
            o.sets_processed, 0,
            "expired deadline must still return the synopsis result"
        );
    }

    #[test]
    fn generous_deadline_processes_everything() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let policy = ExecutionPolicy::deadline(Duration::from_secs(30));
        let o = engine.execute(&1, &policy, Instant::now());
        assert_eq!(o.sets_processed, o.sets_total);
    }

    #[test]
    fn stale_index_entry_is_skipped_not_fatal() {
        let (data, store) = setup();
        let svc = StaleIndexService;
        let engine = Algorithm1::new(&data, &store, &svc);
        // The bogus set ranks first (infinite correlation); the driver must
        // skip it, process every real set, and still match exact.
        let o = engine.execute(&2, &ExecutionPolicy::budgeted(usize::MAX), Instant::now());
        assert_eq!(o.sets_skipped, 1);
        assert_eq!(o.sets_processed, o.sets_total - 1);
        let exact = engine
            .execute(&2, &ExecutionPolicy::Exact, Instant::now())
            .output;
        assert!((o.output - exact).abs() < 1e-6);
    }

    #[test]
    fn skipped_sets_do_not_consume_budget() {
        let (data, store) = setup();
        let svc = StaleIndexService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.execute(&2, &ExecutionPolicy::budgeted(2), Instant::now());
        assert_eq!(o.sets_skipped, 1, "the bogus top-ranked set is skipped");
        assert_eq!(o.sets_processed, 2, "budget buys 2 real sets");
    }

    #[test]
    fn imax_bounds_ranks_not_processed_count() {
        let (data, store) = setup();
        let svc = StaleIndexService;
        let engine = Algorithm1::new(&data, &store, &svc);
        // The bogus set ranks first (infinite correlation). With
        // `i_max = 2`, only ranks 0..2 may ever be considered (Algorithm
        // 1's `i <= i_max`): the skip must not pull in rank 2.
        let o = engine.execute(
            &2,
            &ExecutionPolicy::Budgeted {
                sets: usize::MAX,
                imax: Some(2),
            },
            Instant::now(),
        );
        assert_eq!(o.sets_skipped, 1);
        assert_eq!(
            o.sets_processed, 1,
            "only one real set inside the i_max cut"
        );
    }

    /// The tentpole's correctness bar: the lazy-ranking `execute` must
    /// produce an `Outcome` identical (all fields) to the eager full-sort
    /// driver under every `ExecutionPolicy` variant, including with stale
    /// sets forcing prefix extension past the initial bound.
    #[test]
    fn lazy_execute_equals_eager_for_every_policy() {
        let (data, store) = setup();
        let policies = [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(0),
            ExecutionPolicy::budgeted(2),
            ExecutionPolicy::budgeted(usize::MAX),
            ExecutionPolicy::Budgeted {
                sets: usize::MAX,
                imax: Some(3),
            },
            ExecutionPolicy::Budgeted {
                sets: 1,
                imax: Some(2),
            },
            // Deterministic deadlines only: one generous (processes all),
            // one already expired (processes none).
            ExecutionPolicy::deadline(Duration::from_secs(600)),
            ExecutionPolicy::deadline(Duration::from_nanos(1)),
        ];
        let svc = SumService;
        let stale = StaleIndexService;
        let plain = Algorithm1::new(&data, &store, &svc);
        let staled = Algorithm1::new(&data, &store, &stale);
        for policy in &policies {
            for req in [0u32, 3, 7] {
                let submitted = Instant::now();
                let lazy = plain.execute(&req, policy, submitted);
                let eager = execute_eager(&plain, &req, policy, submitted);
                assert_eq!(lazy.output, eager.output, "{policy:?} req {req}");
                assert_eq!(lazy.sets_processed, eager.sets_processed, "{policy:?}");
                assert_eq!(lazy.sets_total, eager.sets_total, "{policy:?}");
                assert_eq!(lazy.sets_skipped, eager.sets_skipped, "{policy:?}");

                let lazy = staled.execute(&req, policy, submitted);
                let eager = execute_eager(&staled, &req, policy, submitted);
                assert_eq!(lazy.output, eager.output, "stale {policy:?} req {req}");
                assert_eq!(
                    lazy.sets_processed, eager.sets_processed,
                    "stale {policy:?}"
                );
                assert_eq!(lazy.sets_total, eager.sets_total, "stale {policy:?}");
                assert_eq!(lazy.sets_skipped, eager.sets_skipped, "stale {policy:?}");
            }
        }
    }

    /// Every policy the deterministic drivers can be compared under (live
    /// deadlines excluded except the generous/expired extremes).
    fn deterministic_policies() -> Vec<ExecutionPolicy> {
        vec![
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(0),
            ExecutionPolicy::budgeted(2),
            ExecutionPolicy::budgeted(usize::MAX),
            ExecutionPolicy::Budgeted {
                sets: usize::MAX,
                imax: Some(3),
            },
            ExecutionPolicy::deadline(Duration::from_secs(600)),
            ExecutionPolicy::deadline(Duration::from_nanos(1)),
        ]
    }

    #[test]
    fn execute_batch_equals_mapped_execute_for_every_policy() {
        let (data, store) = setup();
        let svc = SumService;
        let stale = StaleIndexService;
        let plain = Algorithm1::new(&data, &store, &svc);
        let staled = Algorithm1::new(&data, &store, &stale);
        let reqs: Vec<u32> = vec![0, 3, 7, 3, 11];
        for policy in deterministic_policies() {
            let submitted = vec![Instant::now(); reqs.len()];
            let batch = plain.execute_batch(&reqs, &policy, &submitted);
            assert_eq!(batch.len(), reqs.len());
            for ((req, &sub), got) in reqs.iter().zip(&submitted).zip(&batch) {
                let want = plain.execute(req, &policy, sub);
                assert_eq!(got.output, want.output, "{policy:?} req {req}");
                assert_eq!(got.stats(), want.stats(), "{policy:?} req {req}");
            }
            let batch = staled.execute_batch(&reqs, &policy, &submitted);
            for ((req, &sub), got) in reqs.iter().zip(&submitted).zip(&batch) {
                let want = staled.execute(req, &policy, sub);
                assert_eq!(got.output, want.output, "stale {policy:?} req {req}");
                assert_eq!(got.stats(), want.stats(), "stale {policy:?} req {req}");
            }
        }
    }

    #[test]
    fn execute_batch_accounts_deadlines_per_request() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let policy = ExecutionPolicy::deadline(Duration::from_secs(30));
        // Request 1 was queued past its whole deadline; requests 0 and 2
        // are fresh — only the expired one must degrade to synopsis-only.
        let now = Instant::now();
        let Some(past) = now.checked_sub(Duration::from_secs(60)) else {
            return; // monotonic clock younger than the offset (fresh boot)
        };
        let submitted = vec![now, past, now];
        let batch = engine.execute_batch(&[2u32, 2, 2], &policy, &submitted);
        assert_eq!(batch[0].sets_processed, batch[0].sets_total);
        assert_eq!(batch[1].sets_processed, 0, "expired request does no work");
        assert_eq!(batch[2].sets_processed, batch[2].sets_total);
    }

    #[test]
    #[should_panic(expected = "one submission instant per request")]
    fn execute_batch_length_mismatch_panics() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        engine.execute_batch(&[1u32, 2], &ExecutionPolicy::budgeted(1), &[Instant::now()]);
    }

    #[test]
    fn execute_batch_empty_is_empty() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        assert!(engine
            .execute_batch(&[], &ExecutionPolicy::budgeted(1), &[])
            .is_empty());
    }

    #[test]
    fn pooled_execution_recycles_and_matches_unpooled() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let pool = crate::OutputPool::new();
        let reqs: Vec<u32> = vec![1, 4, 9];
        let submitted = vec![Instant::now(); reqs.len()];
        for policy in deterministic_policies() {
            // Two rounds: the first warms the pool, the second reuses.
            for _ in 0..2 {
                let batch = engine.execute_batch_pooled(&reqs, &policy, &submitted, &pool);
                for ((req, &sub), got) in reqs.iter().zip(&submitted).zip(batch) {
                    let want = engine.execute(req, &policy, sub);
                    assert_eq!(got.output, want.output, "{policy:?} req {req}");
                    assert_eq!(got.stats(), want.stats(), "{policy:?} req {req}");
                    pool.put(got.output);
                }
                let single = engine.execute_pooled(&reqs[0], &policy, submitted[0], &pool);
                assert_eq!(
                    single.output,
                    engine.execute(&reqs[0], &policy, submitted[0]).output
                );
                pool.put(single.output);
            }
        }
        assert!(pool.reuses() > 0, "warm pool must have served buffers");
    }

    #[test]
    fn scratch_reuse_is_request_isolated() {
        // Back-to-back requests on one thread share the scratch buffer;
        // results must be identical to fresh-buffer execution.
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let first = engine.execute(&1, &ExecutionPolicy::budgeted(3), Instant::now());
        for _ in 0..4 {
            let again = engine.execute(&1, &ExecutionPolicy::budgeted(3), Instant::now());
            assert_eq!(first.output, again.output);
            assert_eq!(first.sets_processed, again.sets_processed);
            assert_eq!(first.sets_total, again.sets_total);
        }
    }
}

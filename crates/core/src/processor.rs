//! Algorithm 1: accuracy-aware approximate processing on a component.
//!
//! The engine is generic over an [`ApproximateService`] that supplies the
//! three service-specific operations (synopsis processing, improvement with
//! one ranked set, and the exact baseline). Two drivers are provided:
//!
//! * [`run_budgeted`](Algorithm1::run_budgeted) — processes the synopsis
//!   plus a caller-fixed number of ranked sets. Deterministic; used by the
//!   accuracy evaluations and by the cluster simulator, which converts a
//!   deadline into a set budget via its queueing/interference model.
//! * [`run_deadline`](Algorithm1::run_deadline) — the literal wall-clock
//!   loop of Algorithm 1 (lines 4–10), checking `l_ela < l_spe` between
//!   sets.

use std::time::Instant;

use at_synopsis::{RowStore, SynopsisStore};

use crate::config::ProcessingConfig;
use crate::correlation::{rank, Correlation};
use crate::outcome::Outcome;

/// Read-only view a service implementation gets of a component's state.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    /// The component's subset of original input data.
    pub dataset: &'a RowStore,
    /// The synopsis store (synopsis + index file + R-tree + reducer).
    pub store: &'a SynopsisStore,
}

/// Service-specific request processing hooks.
///
/// Incorporating AccuracyTrader "does not require any modification in the
/// request processing algorithm, but controlling the input dataset fed to
/// the algorithm" (§3.2): `process_synopsis` feeds it the synopsis,
/// `improve` feeds it one ranked set of original points, `process_exact`
/// feeds it everything.
pub trait ApproximateService {
    /// Request type (active user + target items; query terms; …).
    type Request;
    /// Per-component result type (rating estimate; top-k heap; …).
    type Output: Clone;

    /// Stage 1: produce the initial approximate result from the synopsis
    /// and estimate each aggregated point's correlation to result accuracy
    /// (Algorithm 1, line 1).
    fn process_synopsis(&self, ctx: Ctx<'_>, req: &Self::Request)
        -> (Self::Output, Vec<Correlation>);

    /// Stage 2: improve the result using the original data points of one
    /// ranked set (Algorithm 1, line 7). `node` identifies the aggregated
    /// point the set came from, so implementations can subtract its
    /// synopsis-estimated contribution before adding the exact one.
    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &Self::Request,
        out: &mut Self::Output,
        node: at_rtree::NodeId,
        members: &[u64],
    );

    /// Baseline: full computation over the entire input data — what the
    /// paper's Basic / request-reissue / partial-execution techniques run.
    fn process_exact(&self, ctx: Ctx<'_>, req: &Self::Request) -> Self::Output;
}

/// The Algorithm 1 engine bound to one component's state.
pub struct Algorithm1<'a, S> {
    ctx: Ctx<'a>,
    service: &'a S,
}

impl<'a, S: ApproximateService> Algorithm1<'a, S> {
    /// Bind the engine to a component's dataset/synopsis and service hooks.
    pub fn new(dataset: &'a RowStore, store: &'a SynopsisStore, service: &'a S) -> Self {
        Algorithm1 {
            ctx: Ctx { dataset, store },
            service,
        }
    }

    /// Stage 1 + ranking only: initial result and the ranked sets, without
    /// any improvement. Exposed for the Figure-4 style effectiveness
    /// analyses.
    pub fn rank_only(&self, req: &S::Request) -> (S::Output, Vec<Correlation>) {
        let (out, corr) = self.service.process_synopsis(self.ctx, req);
        (out, rank(corr))
    }

    /// Run Algorithm 1 with a **set budget**: improve with the top
    /// `budget_sets` ranked sets (still capped by `imax`). Deterministic.
    pub fn run_budgeted(
        &self,
        req: &S::Request,
        imax: Option<usize>,
        budget_sets: usize,
    ) -> Outcome<S::Output> {
        let (mut out, ranked) = self.rank_only(req);
        let total = ranked.len();
        let cap = imax.map_or(total, |m| m.min(total)).min(budget_sets);
        let mut processed = 0usize;
        for corr in ranked.iter().take(cap) {
            let members = self
                .ctx
                .store
                .index()
                .members(corr.node)
                .expect("ranked node missing from index file");
            self.service.improve(self.ctx, req, &mut out, corr.node, members);
            processed += 1;
        }
        Outcome {
            output: out,
            sets_processed: processed,
            sets_total: total,
        }
    }

    /// Run Algorithm 1 against the wall clock: keep improving while
    /// `elapsed < deadline && i <= i_max` (lines 4–10). `start` is the
    /// request submission instant, so queueing delay counts against the
    /// deadline exactly as in the paper.
    pub fn run_deadline(
        &self,
        req: &S::Request,
        config: &ProcessingConfig,
        start: Instant,
    ) -> Outcome<S::Output> {
        let (mut out, ranked) = self.rank_only(req);
        let total = ranked.len();
        let cap = config.effective_imax(total);
        let mut processed = 0usize;
        for corr in ranked.iter().take(cap) {
            if start.elapsed() >= config.deadline {
                break;
            }
            let members = self
                .ctx
                .store
                .index()
                .members(corr.node)
                .expect("ranked node missing from index file");
            self.service.improve(self.ctx, req, &mut out, corr.node, members);
            processed += 1;
        }
        Outcome {
            output: out,
            sets_processed: processed,
            sets_total: total,
        }
    }

    /// The exact baseline over the full subset.
    pub fn run_exact(&self, req: &S::Request) -> S::Output {
        self.service.process_exact(self.ctx, req)
    }

    /// The component context (for adapters needing direct access).
    pub fn ctx(&self) -> Ctx<'a> {
        self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_linalg::svd::SvdConfig;
    use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
    use std::time::Duration;

    /// Toy service: request is a target column; output is the sum of that
    /// column over processed rows. Correlation of an aggregated point = its
    /// aggregated value at the column (higher = more mass there).
    struct SumService;

    impl ApproximateService for SumService {
        type Request = u32;
        type Output = f64;

        fn process_synopsis(&self, ctx: Ctx<'_>, req: &u32) -> (f64, Vec<Correlation>) {
            let mut corr = Vec::new();
            for p in ctx.store.synopsis().iter() {
                corr.push(Correlation {
                    node: p.node,
                    score: p.info.get(*req).unwrap_or(0.0),
                });
            }
            // Initial estimate: aggregated value × member count, summed.
            let est = ctx
                .store
                .synopsis()
                .iter()
                .map(|p| p.info.get(*req).unwrap_or(0.0) * p.member_count as f64)
                .sum();
            (est, corr)
        }

        fn improve(
            &self,
            ctx: Ctx<'_>,
            req: &u32,
            out: &mut f64,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            // "Improvement" here: recompute this group's contribution
            // exactly. The synopsis-estimate contribution is replaced.
            let agg: f64 = ctx
                .dataset
                .aggregate(members, AggregationMode::Mean)
                .get(*req)
                .unwrap_or(0.0)
                * members.len() as f64;
            let exact: f64 = members
                .iter()
                .filter_map(|&m| ctx.dataset.row(m).get(*req))
                .sum();
            *out += exact - agg;
        }

        fn process_exact(&self, ctx: Ctx<'_>, req: &u32) -> f64 {
            (0..ctx.dataset.len() as u64)
                .filter_map(|m| ctx.dataset.row(m).get(*req))
                .sum()
        }
    }

    fn setup() -> (RowStore, SynopsisStore) {
        let mut data = RowStore::new(12);
        for r in 0..120u32 {
            let base = if r % 2 == 0 { 1.0 } else { 4.0 };
            let pairs: Vec<(u32, f64)> = (0..12)
                .map(|c| (c, base + ((r + c) % 3) as f64 * 0.25))
                .collect();
            data.push_row(SparseRow::from_pairs(pairs));
        }
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(20),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let (store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg);
        (data, store)
    }

    #[test]
    fn zero_budget_returns_synopsis_estimate() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.run_budgeted(&3, None, 0);
        assert_eq!(o.sets_processed, 0);
        assert!(o.sets_total > 0);
        // Mean-aggregation estimate of a dense column is exact up to FP.
        let exact = engine.run_exact(&3);
        assert!((o.output - exact).abs() < 1e-6);
    }

    #[test]
    fn full_budget_equals_exact() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.run_budgeted(&5, None, usize::MAX);
        assert_eq!(o.sets_processed, o.sets_total);
        let exact = engine.run_exact(&5);
        assert!((o.output - exact).abs() < 1e-6, "{} vs {exact}", o.output);
    }

    #[test]
    fn imax_caps_processing() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.run_budgeted(&0, Some(2), usize::MAX);
        assert_eq!(o.sets_processed, 2);
    }

    #[test]
    fn budget_caps_processing() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let o = engine.run_budgeted(&0, None, 3);
        assert_eq!(o.sets_processed, 3.min(o.sets_total));
    }

    #[test]
    fn ranked_sets_processed_best_first() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let (_, ranked) = engine.rank_only(&0);
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "ranking not descending");
        }
    }

    #[test]
    fn deadline_already_expired_processes_no_sets() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let cfg = ProcessingConfig {
            deadline: Duration::from_millis(10),
            imax: None,
        };
        // Request "submitted" well before the deadline window.
        let start = Instant::now() - Duration::from_millis(50);
        let o = engine.run_deadline(&1, &cfg, start);
        assert_eq!(
            o.sets_processed, 0,
            "expired deadline must still return the synopsis result"
        );
    }

    #[test]
    fn generous_deadline_processes_everything() {
        let (data, store) = setup();
        let svc = SumService;
        let engine = Algorithm1::new(&data, &store, &svc);
        let cfg = ProcessingConfig {
            deadline: Duration::from_secs(30),
            imax: None,
        };
        let o = engine.run_deadline(&1, &cfg, Instant::now());
        assert_eq!(o.sets_processed, o.sets_total);
    }
}

//! The serving stack's single clock gateway.
//!
//! Every wall-clock read on the serving path — deadline checks in
//! [`Algorithm1`](crate::Algorithm1), submission stamps and latency
//! telemetry in [`FanOutService`](crate::FanOutService), queue timestamps
//! in `at-server` — goes through [`now`] / [`elapsed_since`] instead of
//! calling [`Instant::now`] directly. Two things fall out of funnelling
//! the reads:
//!
//! * **The clock-free contract becomes observable.** Collapsing duplicate
//!   requests in `serve_batch` is only sound because execution under a
//!   [clock-free](crate::ExecutionPolicy::is_clock_free) policy is a
//!   deterministic function of component state and request — i.e. it
//!   never reads the clock. Each gateway read ticks a global counter
//!   ([`reads`]), so a test can run a serving path and assert *exactly*
//!   how many clock reads happened (see `tests/probe_clock.rs`). A relaxed
//!   atomic increment costs a fraction of the `clock_gettime` call it
//!   accompanies, so the probe is always on.
//! * **The static allowlist stays one line long.** The `clock-discipline`
//!   rule in `analysis.toml` forbids `Instant::now()` / `SystemTime::now()`
//!   / `.elapsed()` across the serving crates; this module is the single
//!   allowlisted escape, so a stray clock read anywhere else fails
//!   `at-analysis --check`.
//!
//! See `ANALYSIS.md` for the invariant this enforces and the probe that
//! proves it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Global count of clock reads through the gateway (process-wide).
static READS: AtomicU64 = AtomicU64::new(0);

/// Read the monotonic clock, ticking the read counter.
#[inline]
pub fn now() -> Instant {
    READS.fetch_add(1, Ordering::Relaxed);
    // lint: allow(clock-discipline) reason=the gateway itself; every other callsite routes here
    Instant::now()
}

/// Time elapsed since `earlier` — a clock read, so it ticks the counter.
#[inline]
pub fn elapsed_since(earlier: Instant) -> Duration {
    READS.fetch_add(1, Ordering::Relaxed);
    // lint: allow(clock-discipline) reason=the gateway itself; every other callsite routes here
    earlier.elapsed()
}

/// Total clock reads made through the gateway since process start.
///
/// Monotonically increasing and process-global: probes snapshot it before
/// and after driving a serving path and assert on the delta. Tests doing
/// so must run single-threaded paths (or tolerate concurrent readers).
#[inline]
pub fn reads() -> u64 {
    READS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_gateway_read_ticks_the_counter() {
        let before = reads();
        let t = now();
        let mid = reads();
        assert!(mid > before, "now() must tick the counter");
        let _ = elapsed_since(t);
        assert!(reads() > mid, "elapsed_since() must tick the counter");
    }

    #[test]
    fn elapsed_since_measures_forward_time() {
        let t = now();
        assert!(elapsed_since(t) >= Duration::ZERO);
    }
}

//! A fan-out online service: request partitioning over parallel components
//! and response composition.
//!
//! Mirrors the paper's deployment (§4.3): one partitioning component, `n`
//! parallel processing components, one composing component. In-process we
//! fan out with rayon (the Storm-topology substitute); the latency behaviour
//! of a *distributed* deployment is modelled separately by `at-sim`.
//!
//! [`FanOutService::serve`] is the single request-lifecycle entry point:
//! it fans the request out under one [`ExecutionPolicy`], composes the
//! per-component partial outputs through the service's
//! [`ComposableService::compose`] hook, and returns the response together
//! with aggregated telemetry ([`ServiceResponse`]).
//!
//! Request *streams* go through [`FanOutService::serve_batch`]: one
//! fan-out and one per-component synopsis pass cover the whole batch, each
//! request keeping its own submission instant, policy accounting, and
//! telemetry — provably identical to serving the requests one at a time
//! under every clock-free policy (live deadlines additionally count time
//! spent waiting behind the batch, like any queueing delay).
//! [`FanOutService::serve_with`] drives heterogeneous per-component
//! policies through the same plumbing. Output buffers are recycled across
//! all of these via the service's [`OutputPool`].

use std::fmt;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::clock;
use crate::component::Component;
use crate::containment;
use crate::outcome::Outcome;
use crate::policy::ExecutionPolicy;
use crate::pool::OutputPool;
use crate::processor::{ApproximateService, ComposableService};

/// Errors from service construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// A partitioning or construction call asked for zero components.
    ZeroComponents,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ZeroComponents => {
                write!(f, "a fan-out service needs at least one component")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Requests scanned before the duplicate-collapse scan may bail out.
/// Below this, the scan is trivially cheap and uniqueness estimates are
/// too noisy to act on.
const COLLAPSE_BAIL_MIN_SCAN: usize = 32;

/// Bail out of collapsing once more than half of the scanned prefix is
/// unique: the linear probe per request is then quadratic work buying
/// almost no deduplication (zipf-skewed production mixes sit far below
/// this; adversarially unique batches sit far above).
fn collapse_should_bail(uniques: usize, scanned: usize) -> bool {
    scanned >= COLLAPSE_BAIL_MIN_SCAN && uniques * 2 > scanned
}

/// Split rows round-robin into `n` subsets of a `feature_dim`-column space —
/// the "entire input data is divided into n subsets" step. Round-robin keeps
/// subset sizes within one row of each other.
///
/// Returns [`ServiceError::ZeroComponents`] when `n == 0`.
pub fn partition_rows(
    feature_dim: usize,
    rows: Vec<SparseRow>,
    n: usize,
) -> Result<Vec<RowStore>, ServiceError> {
    if n == 0 {
        return Err(ServiceError::ZeroComponents);
    }
    let mut subsets: Vec<RowStore> = (0..n).map(|_| RowStore::new(feature_dim)).collect();
    for (i, row) in rows.into_iter().enumerate() {
        // lint: allow(panic-freedom) reason=i % n < n == subsets.len()
        subsets[i % n].push_row(row);
    }
    Ok(subsets)
}

/// Per-component processing counters of one served request: an
/// [`Outcome`] stripped of its output (see [`Outcome::stats`]), so the
/// counters and [`coverage`](Outcome::coverage) live in one place.
pub type ComponentTelemetry = Outcome<()>;

/// A composed response plus the request's aggregated telemetry.
#[derive(Clone, Debug)]
pub struct ServiceResponse<R> {
    /// The user-visible composed response.
    pub response: R,
    /// The policy this request actually ran under. Equal to the requested
    /// policy on the direct serving paths; differs when an admission
    /// controller degraded the request on its way through a server, which
    /// is exactly what this field lets callers observe. Heterogeneous
    /// per-component serving ([`FanOutService::serve_with`]) records the
    /// costliest per-component policy ([`ExecutionPolicy::cost_rank`],
    /// ties broken by the larger effective set budget) — an upper bound
    /// on the work any single component spent.
    pub policy_applied: ExecutionPolicy,
    /// Per-component counters, in component order. A component that
    /// failed or was skipped by its breaker still has an entry — all of
    /// its sets counted as skipped, so coverage accounting charges the
    /// failure honestly.
    pub components: Vec<ComponentTelemetry>,
    /// Components (by index) whose fan-out leg did not contribute to
    /// this response: the leg panicked inside the containment boundary,
    /// or its [`CircuitBreaker`] was open and the leg was skipped.
    /// Empty on the healthy path — and deliberately a never-allocated
    /// `Vec::new()` there, so failure telemetry costs the hot path
    /// nothing.
    pub components_failed: Vec<usize>,
    /// Wall-clock time from submission to composed response.
    pub elapsed: Duration,
}

impl<R> ServiceResponse<R> {
    /// Mean per-component coverage of ranked sets, in `[0, 1]`.
    pub fn mean_coverage(&self) -> f64 {
        if self.components.is_empty() {
            return 1.0;
        }
        self.components.iter().map(|c| c.coverage()).sum::<f64>() / self.components.len() as f64
    }

    /// Worst per-component coverage (the straggler), in `[0, 1]`.
    pub fn min_coverage(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.coverage())
            .fold(1.0, f64::min)
    }

    /// Ranked sets processed, summed over components.
    pub fn sets_processed(&self) -> usize {
        self.components.iter().map(|c| c.sets_processed).sum()
    }

    /// Ranked sets available, summed over components.
    pub fn sets_total(&self) -> usize {
        self.components.iter().map(|c| c.sets_total).sum()
    }

    /// Stale sets skipped, summed over components. Nonzero signals
    /// either index corruption somewhere in the deployment or a failed /
    /// breaker-skipped component (whose whole subset counts as skipped —
    /// see [`components_failed`](Self::components_failed) to tell the
    /// two apart).
    pub fn sets_skipped(&self) -> usize {
        self.components.iter().map(|c| c.sets_skipped).sum()
    }

    /// True when every component contributed (no contained failures, no
    /// open breakers).
    pub fn is_complete(&self) -> bool {
        self.components_failed.is_empty()
    }

    /// Map the response, keeping the telemetry.
    pub fn map<U>(self, f: impl FnOnce(R) -> U) -> ServiceResponse<U> {
        ServiceResponse {
            response: f(self.response),
            policy_applied: self.policy_applied,
            components: self.components,
            components_failed: self.components_failed,
            elapsed: self.elapsed,
        }
    }
}

/// An online service fanned out over parallel components.
///
/// Owns an [`OutputPool`] of per-component output buffers: every serve
/// call checks buffers out for stage 1 and returns them after composing
/// the response, so a **warm** service serves requests and whole batches
/// without allocating outputs (see [`crate::pool`]).
///
/// # Partial failure
///
/// Each fan-out leg of [`serve`](Self::serve) / [`serve_batch`]
/// (Self::serve_batch) runs inside the workspace's single unwind
/// containment boundary ([`crate::containment`]) and behind a
/// per-component [`CircuitBreaker`]: a panicking component costs its own
/// coverage (recorded in [`ServiceResponse::components_failed`], its
/// sets counted as skipped) instead of unwinding the whole batch, and a
/// *persistently* failing component trips its breaker and is skipped at
/// ≈ 0 cost until a half-open probe finds it healthy again. `compose`
/// runs over the surviving components' parts, on the caller's thread,
/// **outside** the boundary — a composing-component failure is the
/// caller's to supervise. [`broadcast`](Self::broadcast) is raw and
/// uncontained by design (its callers want the outcomes, panics and
/// all).
pub struct FanOutService<S: ApproximateService> {
    components: Vec<Component<S>>,
    breakers: Vec<CircuitBreaker>,
    pool: OutputPool<S::Output>,
}

impl<S> FanOutService<S>
where
    S: ApproximateService + Sync,
    S::Request: Sync,
    S::Output: Send,
{
    /// Build every component from its subset (parallel offline pipeline).
    pub fn build(
        subsets: Vec<RowStore>,
        mode: AggregationMode,
        config: SynopsisConfig,
        make_service: impl Fn() -> S + Sync,
    ) -> Self
    where
        S: Send,
    {
        assert!(!subsets.is_empty(), "service needs >= 1 component");
        let components: Vec<Component<S>> = subsets
            .into_par_iter()
            .map(|subset| Component::build(subset, mode, config, make_service()).0)
            .collect();
        Self::from_components(components)
    }

    /// Wrap pre-built components.
    ///
    /// # Panics
    /// Panics on an empty component list: a zero-component service is a
    /// construction bug, not a runtime condition (data-driven partitioning
    /// reports [`ServiceError::ZeroComponents`] from [`partition_rows`]
    /// before ever reaching a constructor).
    pub fn from_components(components: Vec<Component<S>>) -> Self {
        assert!(!components.is_empty(), "service needs >= 1 component");
        let breakers = components
            .iter()
            .map(|_| CircuitBreaker::new(BreakerConfig::default()))
            .collect();
        FanOutService {
            components,
            breakers,
            pool: OutputPool::new(),
        }
    }

    /// A replicated serving instance over the **same** read-only data:
    /// every component's subset and synopsis are `Arc`-shared with this
    /// service (see [`Component::replica`]), while the mutable serving
    /// state — circuit breakers and the output pool — is fresh, so
    /// replicas fail, recover, and recycle buffers independently.
    ///
    /// This is the scale-out hook behind `at-server`'s replicated
    /// multi-worker deployment: N workers serve N request streams against
    /// one copy of the offline artifacts. Breakers start `Closed` under
    /// the default [`BreakerConfig`]; apply
    /// [`with_breaker_config`](Self::with_breaker_config) per replica to
    /// retune them.
    pub fn replica(&self) -> Self
    where
        S: Clone,
    {
        FanOutService {
            components: self.components.iter().map(Component::replica).collect(),
            breakers: self
                .components
                .iter()
                .map(|_| CircuitBreaker::new(BreakerConfig::default()))
                .collect(),
            pool: OutputPool::new(),
        }
    }

    /// Replace every component's circuit breaker with a fresh one under
    /// `config` (builder style; state resets to `Closed`).
    pub fn with_breaker_config(mut self, config: BreakerConfig) -> Self {
        self.breakers = self
            .components
            .iter()
            .map(|_| CircuitBreaker::new(config))
            .collect();
        self
    }

    /// Per-component circuit breakers, in component order (telemetry:
    /// state, trip counts).
    pub fn breakers(&self) -> &[CircuitBreaker] {
        &self.breakers
    }

    /// Components currently skipped by an open breaker — the service's
    /// fault-induced capacity loss, surfaced through `at-server`'s
    /// `LoadSnapshot` so admission control sees it.
    pub fn open_components(&self) -> usize {
        self.breakers
            .iter()
            .filter(|b| b.state() == BreakerState::Open)
            .count()
    }

    /// The service's output-buffer recycler (telemetry: a warm server's
    /// [`OutputPool::reuses`] grows with every request served).
    pub fn pool(&self) -> &OutputPool<S::Output> {
        &self.pool
    }

    /// Number of parallel components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the service has no components (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrow the components.
    pub fn components(&self) -> &[Component<S>] {
        &self.components
    }

    /// Mutably borrow the components (for applying data updates).
    pub fn components_mut(&mut self) -> &mut [Component<S>] {
        &mut self.components
    }

    /// Run component `index`'s fan-out leg behind its breaker and inside
    /// the containment boundary. `None` ⇒ the leg was skipped (open
    /// breaker) or failed (contained panic); the caller charges it to
    /// [`ServiceResponse::components_failed`].
    fn leg<T>(&self, index: usize, run: impl FnOnce() -> T) -> Option<T> {
        // get(): breakers are built 1:1 with components, but indexing
        // would still be a panic-freedom finding.
        let breaker = self.breakers.get(index)?;
        if !breaker.should_attempt() {
            return None;
        }
        match containment::contain(run) {
            Ok(out) => {
                breaker.record_success();
                Some(out)
            }
            Err(()) => {
                breaker.record_failure();
                None
            }
        }
    }

    /// The telemetry row of a failed or breaker-skipped leg: zero sets
    /// processed, the component's whole ranked-set inventory skipped, so
    /// [`coverage`](Outcome::coverage) reads 0 and batch-level coverage
    /// accounting charges the loss.
    fn failed_telemetry(component: &Component<S>) -> ComponentTelemetry {
        let total = component.store().synopsis().len();
        Outcome {
            output: (),
            sets_processed: 0,
            sets_total: total,
            sets_skipped: total,
        }
    }

    /// Fan a request out to all components under one policy; raw outcomes
    /// arrive in component order. Prefer [`serve`](Self::serve) when the
    /// service composes a user-visible response.
    pub fn broadcast(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> Vec<Outcome<S::Output>> {
        self.components
            .par_iter()
            .map(|c| c.execute(req, policy, submitted))
            .collect()
    }

    /// Serve one request end to end: fan out under `policy`, compose the
    /// partial outputs, and aggregate telemetry. The request is treated as
    /// submitted now; use [`serve_at`](Self::serve_at) when upstream
    /// queueing delay must count against a deadline policy.
    ///
    /// The per-component hot path is allocation-free across requests: each
    /// rayon worker reuses a thread-local correlation scratch buffer inside
    /// [`Algorithm1::execute`](crate::Algorithm1::execute), so steady-state
    /// serving performs no per-set allocation (see the hot-path invariants
    /// in [`crate::processor`]).
    pub fn serve(&self, req: &S::Request, policy: &ExecutionPolicy) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        self.serve_at(req, policy, clock::now())
    }

    /// [`serve`](Self::serve) with an explicit submission instant.
    pub fn serve_at(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        self.serve_with_at(req, |_| *policy, submitted)
    }

    /// Serve one request with a **per-component** policy: component `i`
    /// executes under `policy_of(i)`. This is how heterogeneous budgets are
    /// driven — e.g. replaying a simulator's per-component set budgets, or
    /// an admission controller degrading only overloaded components.
    /// `serve` is the uniform special case (`policy_of = |_| policy`).
    pub fn serve_with(
        &self,
        req: &S::Request,
        policy_of: impl Fn(usize) -> ExecutionPolicy + Sync + Send,
    ) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        self.serve_with_at(req, policy_of, clock::now())
    }

    /// [`serve_with`](Self::serve_with) with an explicit submission instant.
    pub fn serve_with_at(
        &self,
        req: &S::Request,
        policy_of: impl Fn(usize) -> ExecutionPolicy + Sync + Send,
        submitted: Instant,
    ) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        let pool = &self.pool;
        let policy_of = &policy_of;
        let outcomes: Vec<Option<Outcome<S::Output>>> = self
            .components
            .par_iter()
            .enumerate()
            .map(|(i, c)| self.leg(i, || c.execute_pooled(req, &policy_of(i), submitted, pool)))
            .collect();
        // Costliest per-component policy, ties to the larger effective cap;
        // the fold from `policy_of(0)` keeps `>=` so later equal-key
        // policies win, exactly like `max_by_key`, without an `expect` on
        // the (constructor-guaranteed) non-emptiness.
        let key = |p: &ExecutionPolicy| (p.cost_rank(), p.effective_cap(usize::MAX));
        let policy_applied =
            (1..self.components.len())
                .map(policy_of)
                .fold(
                    policy_of(0),
                    |best, p| {
                        if key(&p) >= key(&best) {
                            p
                        } else {
                            best
                        }
                    },
                );
        let mut components: Vec<ComponentTelemetry> = Vec::with_capacity(self.components.len());
        let mut components_failed: Vec<usize> = Vec::new();
        let mut parts: Vec<S::Output> = Vec::with_capacity(self.components.len());
        for ((i, outcome), component) in outcomes.into_iter().enumerate().zip(&self.components) {
            match outcome {
                Some(o) => {
                    components.push(o.stats());
                    parts.push(o.output);
                }
                None => {
                    components.push(Self::failed_telemetry(component));
                    components_failed.push(i);
                }
            }
        }
        // lint: allow(panic-freedom) reason=components nonempty, asserted in from_components
        let response = self.components[0].service().compose(req, &parts);
        for part in parts {
            self.pool.put(part);
        }
        ServiceResponse {
            response,
            policy_applied,
            components,
            components_failed,
            elapsed: clock::elapsed_since(submitted),
        }
    }

    /// Serve a whole **batch** of requests end to end under one policy,
    /// all treated as submitted now. One fan-out covers the entire batch:
    /// each component worker makes a single stage-1 pass over its synopsis
    /// shared by every request
    /// ([`ApproximateService::process_synopsis_batch`]), then improves and
    /// composes each request independently. Under
    /// [clock-free](ExecutionPolicy::is_clock_free) policies (and the
    /// degenerate deadline cases — already expired, or generous enough to
    /// improve everything), responses and telemetry are identical to
    /// mapping [`serve`](Self::serve) over the batch, at a fraction of the
    /// fan-out and allocation cost. A *live* `Deadline` races the shared
    /// batch pass against each request's own clock: every request keeps
    /// its own accounting, but late-in-batch requests see more elapsed
    /// time than they would served alone — exactly the paper's queueing
    /// semantics, where waiting behind a batch *is* queueing delay.
    ///
    /// Under a [clock-free](ExecutionPolicy::is_clock_free) policy,
    /// duplicate requests in the batch are **collapsed**: services are
    /// deterministic functions of component state and request, so each
    /// distinct request is processed once and its response re-composed per
    /// occurrence. Zipf-skewed query mixes (the paper's workload shape)
    /// repeat hot requests constantly, making this the dominant batching
    /// win at peak load. `Deadline` batches are never collapsed — each
    /// request's outcome legitimately depends on its own submission
    /// instant.
    ///
    /// ```
    /// use at_core::{partition_rows, ApproximateService, ComposableService,
    ///               Correlation, Ctx, ExecutionPolicy, FanOutService};
    /// use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
    ///
    /// // A toy service: count the original rows each component processed.
    /// struct CountRows;
    /// impl ApproximateService for CountRows {
    ///     type Request = ();
    ///     type Output = usize;
    ///     fn process_synopsis(&self, ctx: Ctx<'_>, _r: &(), corr: &mut Vec<Correlation>) -> usize {
    ///         corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
    ///             node: p.node,
    ///             score: p.member_count as f64,
    ///         }));
    ///         0
    ///     }
    ///     fn improve(&self, _c: Ctx<'_>, _r: &(), out: &mut usize,
    ///                _n: at_rtree::NodeId, members: &[u64]) {
    ///         *out += members.len();
    ///     }
    ///     fn process_exact(&self, ctx: Ctx<'_>, _r: &()) -> usize {
    ///         ctx.dataset.len()
    ///     }
    /// }
    /// impl ComposableService for CountRows {
    ///     type Response = usize;
    ///     fn compose(&self, _r: &(), parts: &[usize]) -> usize {
    ///         parts.iter().sum()
    ///     }
    /// }
    ///
    /// let rows: Vec<SparseRow> = (0..90u32)
    ///     .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
    ///     .collect();
    /// let subsets = partition_rows(6, rows, 3).expect("n >= 1");
    /// let cfg = SynopsisConfig { size_ratio: 10, ..SynopsisConfig::default() };
    /// let service = FanOutService::build(subsets, AggregationMode::Mean, cfg, || CountRows);
    ///
    /// // A burst of four requests shares one fan-out and synopsis pass.
    /// let batch = vec![(); 4];
    /// let policy = ExecutionPolicy::budgeted(usize::MAX);
    /// let responses = service.serve_batch(&batch, &policy);
    /// assert_eq!(responses.len(), 4);
    /// for resp in &responses {
    ///     assert_eq!(resp.response, 90);
    ///     // Identical to serving the request alone.
    ///     assert_eq!(resp.response, service.serve(&(), &policy).response);
    /// }
    /// ```
    pub fn serve_batch(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
    ) -> Vec<ServiceResponse<S::Response>>
    where
        S: ComposableService,
        S::Request: Clone + PartialEq,
    {
        let submitted = vec![clock::now(); reqs.len()];
        self.serve_batch_at(reqs, policy, &submitted)
    }

    /// [`serve_batch`](Self::serve_batch) with one explicit submission
    /// instant per request (from the accept loop), so upstream queueing
    /// delay counts against each request's own deadline.
    ///
    /// # Panics
    /// Panics when `reqs` and `submitted` differ in length.
    pub fn serve_batch_at(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
        submitted: &[Instant],
    ) -> Vec<ServiceResponse<S::Response>>
    where
        S: ComposableService,
        S::Request: Clone + PartialEq,
    {
        assert_eq!(
            reqs.len(),
            submitted.len(),
            "serve_batch: one submission instant per request"
        );
        if reqs.is_empty() {
            return Vec::new();
        }
        // Batch-of-one fast path: collapse scanning, unique-index
        // bookkeeping, pooled batch buffers and the regroup/compose passes
        // all exist to share work *between* requests — with one request
        // there is nothing to share, so delegate straight to the single-
        // request path. `serve_at` runs the identical per-component op
        // sequence (`execute_pooled` ≡ `execute_batch_pooled` at width 1,
        // proptest-pinned by `serve_batch_equals_mapped_serve`), so the
        // response is the same — this branch only sheds the batch
        // bookkeeping that made serve_batch_1 measurably slower than a
        // bare serve.
        if reqs.len() == 1 {
            if let (Some(req), Some(&sub)) = (reqs.first(), submitted.first()) {
                return vec![self.serve_at(req, policy, sub)];
            }
        }
        // Collapse duplicate requests (clock-free policies only):
        // `firsts[u]` is the original index of unique request `u`,
        // `unique_of[i]` the unique index serving original request `i`.
        // The linear probe per request is trivial on the duplicate-heavy
        // batches collapsing exists for, but O(batch × uniques) on
        // high-uniqueness batches — so once the scanned prefix proves
        // mostly unique ([`collapse_should_bail`]) the remainder is taken
        // as-is, each request its own unique. Collapsing is purely an
        // optimization: uncollapsed duplicates are still served correctly,
        // just without sharing their computation.
        let mut firsts: Vec<usize> = Vec::new();
        let mut unique_of: Vec<usize> = Vec::with_capacity(reqs.len());
        if policy.is_clock_free() {
            for (i, req) in reqs.iter().enumerate() {
                if collapse_should_bail(firsts.len(), i) {
                    for j in i..reqs.len() {
                        unique_of.push(firsts.len());
                        firsts.push(j);
                    }
                    break;
                }
                // lint: allow(panic-freedom) reason=f collected from enumerate over reqs, always in bounds
                match firsts.iter().position(|&f| reqs[f] == *req) {
                    Some(u) => unique_of.push(u),
                    None => {
                        unique_of.push(firsts.len());
                        firsts.push(i);
                    }
                }
            }
        } else {
            firsts = (0..reqs.len()).collect();
            unique_of = firsts.clone();
        }

        // One fan-out for the whole (collapsed) batch: `per_component[c][u]`
        // is component c's outcome for unique request u — or `None` for
        // the whole leg when component c failed (contained panic) or was
        // skipped by its open breaker. A leg-fatal fault planned for any
        // request of the batch fails the component's whole batch leg:
        // containment is per-leg, not per-request.
        let pool = &self.pool;
        let per_component: Vec<Option<Vec<Outcome<S::Output>>>> = if firsts.len() < reqs.len() {
            // lint: allow(panic-freedom) reason=firsts holds indices of reqs by construction; reqs.len() == submitted.len() asserted above
            let unique_reqs: Vec<S::Request> = firsts.iter().map(|&i| reqs[i].clone()).collect();
            // lint: allow(panic-freedom) reason=firsts holds indices of reqs by construction; reqs.len() == submitted.len() asserted above
            let unique_submitted: Vec<Instant> = firsts.iter().map(|&i| submitted[i]).collect();
            self.components
                .par_iter()
                .enumerate()
                .map(|(ci, c)| {
                    self.leg(ci, || {
                        c.execute_batch_pooled(&unique_reqs, policy, &unique_submitted, pool)
                    })
                })
                .collect()
        } else {
            self.components
                .par_iter()
                .enumerate()
                .map(|(ci, c)| {
                    self.leg(ci, || c.execute_batch_pooled(reqs, policy, submitted, pool))
                })
                .collect()
        };

        // Regroup by unique request, splitting telemetry from outputs.
        // A failed leg contributes a failed-telemetry row to every unique
        // request (the component was down for the whole batch) and no
        // output part: compose sees the survivors only.
        let mut telemetry: Vec<Vec<ComponentTelemetry>> = (0..firsts.len())
            .map(|_| Vec::with_capacity(self.components.len()))
            .collect();
        let mut parts: Vec<Vec<S::Output>> = (0..firsts.len())
            .map(|_| Vec::with_capacity(self.components.len()))
            .collect();
        let mut components_failed: Vec<usize> = Vec::new();
        for ((ci, leg_outcomes), component) in
            per_component.into_iter().enumerate().zip(&self.components)
        {
            match leg_outcomes {
                Some(outcomes) => {
                    for (u, outcome) in outcomes.into_iter().enumerate() {
                        // lint: allow(panic-freedom) reason=execute_batch returns one outcome per unique request, so u < firsts.len()
                        telemetry[u].push(outcome.stats());
                        // lint: allow(panic-freedom) reason=execute_batch returns one outcome per unique request, so u < firsts.len()
                        parts[u].push(outcome.output);
                    }
                }
                None => {
                    components_failed.push(ci);
                    for rows in &mut telemetry {
                        rows.push(Self::failed_telemetry(component));
                    }
                }
            }
        }

        // Compose per original request (each from its unique's parts),
        // then recycle every unique request's buffers.
        // lint: allow(panic-freedom) reason=components nonempty, asserted in from_components
        let composer = self.components[0].service();
        let responses = reqs
            .iter()
            .zip(submitted)
            .zip(&unique_of)
            .map(|((req, &sub), &u)| ServiceResponse {
                // lint: allow(panic-freedom) reason=unique_of maps into firsts, so u < firsts.len() == parts.len() == telemetry.len()
                response: composer.compose(req, &parts[u]),
                policy_applied: *policy,
                // lint: allow(panic-freedom) reason=unique_of maps into firsts, so u < firsts.len() == parts.len() == telemetry.len()
                components: telemetry[u].clone(),
                // An empty clone never allocates: failure-free batches
                // pay nothing for the failure channel.
                components_failed: components_failed.clone(),
                elapsed: clock::elapsed_since(sub),
            })
            .collect();
        for unique_parts in parts {
            for part in unique_parts {
                self.pool.put(part);
            }
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::Correlation;
    use crate::processor::Ctx;
    use at_linalg::svd::SvdConfig;

    struct CountService;

    impl ApproximateService for CountService {
        type Request = ();
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _r: &(), corr: &mut Vec<Correlation>) -> usize {
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: 1.0,
            }));
            0
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _r: &(),
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _r: &()) -> usize {
            ctx.dataset.len()
        }
    }

    impl ComposableService for CountService {
        type Response = usize;

        fn compose(&self, _r: &(), parts: &[usize]) -> usize {
            parts.iter().sum()
        }
    }

    fn rows(n: usize) -> Vec<SparseRow> {
        (0..n as u32)
            .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
            .collect()
    }

    fn quick_service(n_rows: usize, n_components: usize) -> FanOutService<CountService> {
        let subsets = partition_rows(6, rows(n_rows), n_components).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        FanOutService::build(subsets, AggregationMode::Mean, cfg, || CountService)
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        let subsets = partition_rows(6, rows(103), 10).unwrap();
        assert_eq!(subsets.len(), 10);
        let sizes: Vec<usize> = subsets.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_zero_is_an_error() {
        let err = partition_rows(6, vec![], 0).unwrap_err();
        assert_eq!(err, ServiceError::ZeroComponents);
        let msg = ServiceError::ZeroComponents.to_string();
        assert!(msg.contains("at least one component"), "got: {msg}");
    }

    #[test]
    fn serve_covers_all_subsets() {
        let svc = quick_service(120, 4);
        assert_eq!(svc.len(), 4);
        let full = svc.serve(&(), &ExecutionPolicy::budgeted(usize::MAX));
        assert_eq!(
            full.response, 120,
            "all components processed their whole subset"
        );
        assert_eq!(full.components.len(), 4);
        assert_eq!(full.mean_coverage(), 1.0);
        assert_eq!(full.min_coverage(), 1.0);
        assert_eq!(full.sets_skipped(), 0);
        let exact = svc.serve(&(), &ExecutionPolicy::Exact);
        assert_eq!(exact.response, 120);
    }

    #[test]
    fn serve_synopsis_only_touches_nothing() {
        let svc = quick_service(120, 4);
        let r = svc.serve(&(), &ExecutionPolicy::SynopsisOnly);
        assert_eq!(r.response, 0, "no members processed under SynopsisOnly");
        assert_eq!(r.sets_processed(), 0);
        assert!(r.sets_total() > 0);
        assert_eq!(r.mean_coverage(), 0.0);
    }

    #[test]
    fn serve_telemetry_tracks_partial_budgets() {
        let svc = quick_service(160, 4);
        let r = svc.serve(&(), &ExecutionPolicy::budgeted(1));
        assert_eq!(r.components.len(), 4);
        for c in &r.components {
            assert_eq!(c.sets_processed, 1.min(c.sets_total));
        }
        assert!(r.mean_coverage() > 0.0 && r.mean_coverage() < 1.0);
        assert!(r.min_coverage() <= r.mean_coverage());
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn serve_expired_deadline_degrades_to_synopsis() {
        let svc = quick_service(120, 3);
        let submitted = Instant::now() - Duration::from_millis(50);
        let r = svc.serve_at(
            &(),
            &ExecutionPolicy::deadline(Duration::from_millis(10)),
            submitted,
        );
        let synopsis_only = svc.serve(&(), &ExecutionPolicy::SynopsisOnly);
        assert_eq!(r.response, synopsis_only.response);
        assert_eq!(r.sets_processed(), 0);
    }

    #[test]
    fn serve_batch_equals_mapped_serve() {
        let svc = quick_service(120, 4);
        let reqs = vec![(); 5];
        for policy in [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(2),
            ExecutionPolicy::budgeted(usize::MAX),
        ] {
            let submitted = vec![Instant::now(); reqs.len()];
            let batch = svc.serve_batch_at(&reqs, &policy, &submitted);
            assert_eq!(batch.len(), reqs.len());
            for ((req, &sub), got) in reqs.iter().zip(&submitted).zip(&batch) {
                let want = svc.serve_at(req, &policy, sub);
                assert_eq!(got.response, want.response, "{policy:?}");
                assert_eq!(got.components, want.components, "{policy:?}");
            }
        }
    }

    /// `CountService` with an invocation counter on stage 1, to observe
    /// how many requests actually reach the components.
    struct MeteredService(std::sync::Arc<std::sync::atomic::AtomicUsize>);

    impl ApproximateService for MeteredService {
        type Request = u32;
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _r: &u32, corr: &mut Vec<Correlation>) -> usize {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: 1.0,
            }));
            0
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _r: &u32,
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _r: &u32) -> usize {
            ctx.dataset.len()
        }
    }

    impl ComposableService for MeteredService {
        type Response = usize;

        fn compose(&self, _r: &u32, parts: &[usize]) -> usize {
            parts.iter().sum()
        }
    }

    #[test]
    fn duplicate_requests_collapse_only_under_clock_free_policies() {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let subsets = partition_rows(6, rows(90), 3).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let svc = FanOutService::build(subsets, AggregationMode::Mean, cfg, || {
            MeteredService(calls.clone())
        });
        let batch = [7u32, 9, 7, 7, 9];

        calls.store(0, std::sync::atomic::Ordering::Relaxed);
        let responses = svc.serve_batch(&batch, &ExecutionPolicy::budgeted(1));
        assert_eq!(responses.len(), batch.len(), "one response per occurrence");
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            2 * svc.len(),
            "clock-free batch computes each distinct request once per component"
        );
        assert_eq!(responses[0].response, responses[2].response);
        assert_eq!(responses[0].components, responses[2].components);

        calls.store(0, std::sync::atomic::Ordering::Relaxed);
        svc.serve_batch(&batch, &ExecutionPolicy::deadline(Duration::from_secs(30)));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            batch.len() * svc.len(),
            "deadline batches are never collapsed"
        );
    }

    #[test]
    fn high_uniqueness_batch_bails_out_of_collapsing_but_stays_correct() {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let subsets = partition_rows(6, rows(90), 3).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let svc = FanOutService::build(subsets, AggregationMode::Mean, cfg, || {
            MeteredService(calls.clone())
        });
        // 48 distinct requests, then 16 duplicates of the first: the scan
        // proves the prefix mostly unique at COLLAPSE_BAIL_MIN_SCAN and
        // bails, so the duplicate tail is deliberately NOT collapsed.
        let batch: Vec<u32> = (0..48u32).chain(std::iter::repeat_n(0u32, 16)).collect();
        let policy = ExecutionPolicy::budgeted(1);
        let responses = svc.serve_batch(&batch, &policy);
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            batch.len() * svc.len(),
            "bailed-out batch computes every occurrence"
        );
        // Bailing out never changes what each request gets.
        assert_eq!(responses.len(), batch.len());
        for (req, got) in batch.iter().zip(&responses) {
            let want = svc.serve(req, &policy);
            assert_eq!(got.response, want.response);
            assert_eq!(got.components, want.components);
        }
    }

    #[test]
    fn low_uniqueness_batch_past_threshold_still_collapses() {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let subsets = partition_rows(6, rows(90), 3).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let svc = FanOutService::build(subsets, AggregationMode::Mean, cfg, || {
            MeteredService(calls.clone())
        });
        // 64 requests over two distinct values (a zipf-like hot mix): the
        // unique count never approaches half the scanned prefix, so the
        // whole batch collapses to two computations per component.
        let batch: Vec<u32> = (0..64u32).map(|i| if i % 3 == 0 { 7 } else { 9 }).collect();
        let responses = svc.serve_batch(&batch, &ExecutionPolicy::budgeted(1));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            2 * svc.len(),
            "hot mix still collapses to its distinct requests"
        );
        assert_eq!(responses[0].response, responses[3].response);
        assert_eq!(responses[1].response, responses[2].response);
    }

    #[test]
    fn collapse_bail_threshold_shape() {
        // Below the minimum scan, never bail (even fully unique).
        assert!(!collapse_should_bail(31, 31));
        // At the boundary: more than half unique bails...
        assert!(collapse_should_bail(17, 32));
        // ...exactly half (or less) keeps collapsing.
        assert!(!collapse_should_bail(16, 32));
        assert!(!collapse_should_bail(2, 4096));
    }

    #[test]
    fn serve_batch_empty_is_empty() {
        let svc = quick_service(60, 2);
        assert!(svc
            .serve_batch(&[], &ExecutionPolicy::budgeted(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "one submission instant per request")]
    fn serve_batch_length_mismatch_panics() {
        let svc = quick_service(60, 2);
        svc.serve_batch_at(&[(), ()], &ExecutionPolicy::budgeted(1), &[Instant::now()]);
    }

    #[test]
    fn serve_batch_deadlines_are_per_request() {
        let svc = quick_service(120, 3);
        let now = Instant::now();
        let Some(past) = now.checked_sub(Duration::from_secs(60)) else {
            return; // monotonic clock younger than the offset (fresh boot)
        };
        // Middle request queued past its whole deadline.
        let submitted = vec![now, past, now];
        let policy = ExecutionPolicy::deadline(Duration::from_secs(30));
        let batch = svc.serve_batch_at(&[(), (), ()], &policy, &submitted);
        assert!(batch[0].mean_coverage() > 0.0);
        assert_eq!(batch[1].sets_processed(), 0, "expired request sheds work");
        assert!(batch[2].mean_coverage() > 0.0);
        assert!(batch[1].elapsed >= Duration::from_secs(60));
    }

    #[test]
    fn warm_service_recycles_output_buffers() {
        let svc = quick_service(120, 4);
        let policy = ExecutionPolicy::budgeted(1);
        let cold = svc.serve(&(), &policy);
        let before = svc.pool().reuses();
        let warm = svc.serve(&(), &policy);
        assert_eq!(cold.response, warm.response);
        assert!(
            svc.pool().reuses() > before,
            "second request must reuse pooled outputs"
        );
        let batch = svc.serve_batch(&[(); 6], &policy);
        assert!(batch.iter().all(|r| r.response == cold.response));
        assert!(svc.pool().idle() > 0, "batch buffers returned to the pool");
    }

    #[test]
    fn serve_with_uniform_policy_equals_serve() {
        let svc = quick_service(120, 4);
        for policy in [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(2),
        ] {
            let a = svc.serve(&(), &policy);
            let b = svc.serve_with(&(), |_| policy);
            assert_eq!(a.response, b.response);
            assert_eq!(a.components, b.components);
        }
    }

    #[test]
    fn serve_with_heterogeneous_budgets() {
        let svc = quick_service(160, 4);
        // Component i gets budget i: coverage must differ per component.
        let r = svc.serve_with(&(), ExecutionPolicy::budgeted);
        assert_eq!(r.components[0].sets_processed, 0);
        for (i, c) in r.components.iter().enumerate() {
            assert_eq!(c.sets_processed, i.min(c.sets_total));
        }
    }

    #[test]
    fn responses_record_the_policy_applied() {
        let svc = quick_service(120, 4);
        for policy in [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(2),
        ] {
            assert_eq!(svc.serve(&(), &policy).policy_applied, policy);
            let batch = svc.serve_batch(&[(); 3], &policy);
            assert!(batch.iter().all(|r| r.policy_applied == policy));
        }
        // Heterogeneous serving records the costliest per-component policy.
        let r = svc.serve_with(&(), |i| {
            if i == 2 {
                ExecutionPolicy::Exact
            } else {
                ExecutionPolicy::SynopsisOnly
            }
        });
        assert_eq!(r.policy_applied, ExecutionPolicy::Exact);
        // Equal-rank ties break on the larger budget: the reported policy
        // stays an upper bound on any component's work.
        let r = svc.serve_with(&(), |i| {
            if i == 0 {
                ExecutionPolicy::budgeted(100)
            } else {
                ExecutionPolicy::budgeted(1)
            }
        });
        assert_eq!(r.policy_applied, ExecutionPolicy::budgeted(100));
        // map() keeps it.
        let mapped = svc.serve(&(), &ExecutionPolicy::budgeted(1)).map(|n| n + 1);
        assert_eq!(mapped.policy_applied, ExecutionPolicy::budgeted(1));
    }

    use crate::breaker::BreakerState;
    use crate::fault::{FaultInjector, FaultKind, FaultRule, FaultSite, FaultyService};
    use std::sync::Arc;

    /// A fan-out of `CountService` components, component `i` wrapped
    /// around `injectors[i]` — the canonical chaos-test construction
    /// (one injector per component keeps ordinals deterministic).
    fn chaos_service(
        n_rows: usize,
        injectors: &[Arc<FaultInjector>],
    ) -> FanOutService<FaultyService<CountService>> {
        let subsets = partition_rows(6, rows(n_rows), injectors.len()).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let components: Vec<_> = subsets
            .into_iter()
            .zip(injectors)
            .map(|(subset, inj)| {
                Component::build(
                    subset,
                    AggregationMode::Mean,
                    cfg,
                    FaultyService::new(CountService, inj.clone()),
                )
                .0
            })
            .collect();
        FanOutService::from_components(components)
    }

    fn injectors(n: usize) -> Vec<Arc<FaultInjector>> {
        (0..n)
            .map(|i| Arc::new(FaultInjector::new(1000 + i as u64)))
            .collect()
    }

    #[test]
    fn transparent_injector_serves_byte_identically() {
        let inj = injectors(3);
        let faulty = chaos_service(90, &inj);
        let plain = quick_service(90, 3);
        let policy = ExecutionPolicy::budgeted(2);
        let a = faulty.serve(&(), &policy);
        let b = plain.serve(&(), &policy);
        assert_eq!(a.response, b.response);
        assert_eq!(a.components, b.components);
        assert!(a.components_failed.is_empty() && a.is_complete());
        let batch_a = faulty.serve_batch(&[(); 5], &policy);
        let batch_b = plain.serve_batch(&[(); 5], &policy);
        for (x, y) in batch_a.iter().zip(&batch_b) {
            assert_eq!(x.response, y.response);
            assert_eq!(x.components, y.components);
        }
    }

    #[test]
    fn panicking_component_is_contained_and_charged() {
        let inj = injectors(3);
        let inj1 = Arc::new(FaultInjector::new(7).with_rule(FaultRule::with_probability(
            FaultSite::Stage1,
            FaultKind::Panic,
            1.0,
        )));
        let svc = chaos_service(90, &[inj[0].clone(), inj1.clone(), inj[2].clone()]);
        let healthy = chaos_service(90, &injectors(3));
        let policy = ExecutionPolicy::budgeted(usize::MAX);

        let r = svc.serve(&(), &policy);
        assert_eq!(r.components_failed, vec![1], "only the faulty leg fails");
        assert!(!r.is_complete());
        assert_eq!(r.components.len(), 3, "failed leg still has telemetry");
        assert_eq!(r.components[1].sets_processed, 0);
        assert_eq!(r.components[1].sets_skipped, r.components[1].sets_total);
        assert_eq!(r.min_coverage(), 0.0, "failure charged as zero coverage");
        assert!(r.sets_skipped() > 0);
        // Survivors compose exactly what they would without the faulty
        // component: the row counts of subsets 0 and 2 alone.
        assert_eq!(
            r.response,
            svc.components()[0].dataset().len() + svc.components()[2].dataset().len()
        );
        assert_eq!(healthy.serve(&(), &policy).response, 90);
        assert_eq!(inj1.injected_panics(), 1);
    }

    #[test]
    fn batch_with_failed_leg_marks_every_request() {
        let inj0 = Arc::new(FaultInjector::new(3).with_rule(FaultRule::with_probability(
            FaultSite::Stage1,
            FaultKind::Error,
            1.0,
        )));
        let rest = injectors(2);
        let svc = chaos_service(90, &[inj0.clone(), rest[0].clone(), rest[1].clone()]);
        let batch = svc.serve_batch(&[(); 4], &ExecutionPolicy::budgeted(usize::MAX));
        assert_eq!(batch.len(), 4);
        for r in &batch {
            assert_eq!(r.components_failed, vec![0]);
            assert_eq!(r.components[0].sets_processed, 0);
            assert!(r.response > 0, "survivors still answer");
        }
        assert!(inj0.injected_errors() >= 1);
    }

    #[test]
    fn corrupted_scores_keep_serving_without_leg_failure() {
        let inj = injectors(3);
        let corrupting = Arc::new(FaultInjector::new(5).with_rule(FaultRule::with_probability(
            FaultSite::Stage1,
            FaultKind::CorruptScores,
            1.0,
        )));
        let svc = chaos_service(90, &[inj[0].clone(), corrupting.clone(), inj[2].clone()]);
        let r = svc.serve(&(), &ExecutionPolicy::budgeted(1));
        assert!(
            r.components_failed.is_empty(),
            "NaN scores degrade ranking, they do not fail the leg"
        );
        // The corrupted component still improves its budgeted set — NaN
        // sinks in `cmp_ranked`, so ranking stays total and serving
        // proceeds, just with a garbage-ordered prefix.
        assert_eq!(
            r.components[1].sets_processed,
            1.min(r.components[1].sets_total)
        );
        assert_eq!(corrupting.injected_corruptions(), 1);
    }

    #[test]
    fn breaker_trips_after_threshold_and_skips_the_leg() {
        let healthy = injectors(2);
        let broken = Arc::new(
            FaultInjector::new(11).with_rule(FaultRule::with_probability(
                FaultSite::Stage1,
                FaultKind::Panic,
                1.0,
            )),
        );
        let svc = chaos_service(
            90,
            &[healthy[0].clone(), broken.clone(), healthy[1].clone()],
        )
        .with_breaker_config(crate::breaker::BreakerConfig {
            failure_threshold: 3,
            cooldown: 2,
        });
        let policy = ExecutionPolicy::budgeted(1);
        for _ in 0..3 {
            let r = svc.serve(&(), &policy);
            assert_eq!(r.components_failed, vec![1]);
        }
        assert_eq!(svc.breakers()[1].state(), BreakerState::Open);
        assert_eq!(svc.open_components(), 1);
        let attempts_when_tripped = broken.calls(FaultSite::Stage1);

        // While open, the leg is skipped: no stage-1 call reaches it,
        // but the response still charges the component as failed.
        let r = svc.serve(&(), &policy);
        assert_eq!(r.components_failed, vec![1]);
        assert_eq!(
            broken.calls(FaultSite::Stage1),
            attempts_when_tripped,
            "open breaker skips the component at zero stage-1 cost"
        );

        // cooldown=2: the next serve is the half-open probe; it fails
        // (the schedule still panics) and the breaker re-opens.
        let _ = svc.serve(&(), &policy);
        assert_eq!(
            broken.calls(FaultSite::Stage1),
            attempts_when_tripped + 1,
            "half-open admits exactly one probe"
        );
        assert_eq!(svc.breakers()[1].state(), BreakerState::Open);
        assert_eq!(svc.breakers()[1].trips(), 2);
    }

    #[test]
    fn breaker_recovers_when_the_component_heals() {
        let healthy = injectors(2);
        // Panics on its first three stage-1 calls, healthy after.
        let flaky = Arc::new(FaultInjector::new(13).with_rule(FaultRule::at_calls(
            FaultSite::Stage1,
            FaultKind::Panic,
            vec![0, 1, 2],
        )));
        let svc = chaos_service(90, &[healthy[0].clone(), flaky.clone(), healthy[1].clone()])
            .with_breaker_config(crate::breaker::BreakerConfig {
                failure_threshold: 3,
                cooldown: 1,
            });
        let policy = ExecutionPolicy::budgeted(usize::MAX);
        for _ in 0..3 {
            let _ = svc.serve(&(), &policy);
        }
        assert_eq!(svc.breakers()[1].state(), BreakerState::Open);
        // cooldown=1 ⇒ next serve probes; ordinal 3 is healthy ⇒ closed,
        // and the response is complete again.
        let r = svc.serve(&(), &policy);
        assert!(r.is_complete(), "healed component contributes again");
        assert_eq!(r.response, 90);
        assert_eq!(svc.breakers()[1].state(), BreakerState::Closed);
        assert_eq!(svc.open_components(), 0);
    }

    #[test]
    fn stalled_component_still_answers() {
        let healthy = injectors(2);
        let slow = Arc::new(FaultInjector::new(17).with_rule(FaultRule::at_calls(
            FaultSite::Stage1,
            FaultKind::Stall(Duration::from_millis(5)),
            vec![0],
        )));
        let svc = chaos_service(90, &[healthy[0].clone(), slow.clone(), healthy[1].clone()]);
        let r = svc.serve(&(), &ExecutionPolicy::budgeted(usize::MAX));
        assert!(r.is_complete(), "a stall is latency, not failure");
        assert_eq!(r.response, 90);
        assert!(r.elapsed >= Duration::from_millis(5));
        assert_eq!(slow.injected_stalls(), 1);
    }

    #[test]
    fn broadcast_full_budget_covers_everything() {
        let svc = quick_service(100, 2);
        let total: usize = svc
            .broadcast(&(), &ExecutionPolicy::budgeted(usize::MAX), Instant::now())
            .into_iter()
            .map(|o| o.output)
            .sum();
        assert_eq!(total, 100);
        let exact: usize = svc
            .broadcast(&(), &ExecutionPolicy::Exact, Instant::now())
            .into_iter()
            .map(|o| o.output)
            .sum();
        assert_eq!(exact, 100);
    }
}

//! A fan-out online service: request partitioning over parallel components
//! and response composition.
//!
//! Mirrors the paper's deployment (§4.3): one partitioning component, `n`
//! parallel processing components, one composing component. In-process we
//! fan out with rayon (the Storm-topology substitute); the latency behaviour
//! of a *distributed* deployment is modelled separately by `at-sim`.

use rayon::prelude::*;

use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig};

use crate::component::Component;
use crate::outcome::Outcome;
use crate::processor::ApproximateService;

/// Split rows round-robin into `n` subsets of a `feature_dim`-column space —
/// the "entire input data is divided into n subsets" step. Round-robin keeps
/// subset sizes within one row of each other.
pub fn partition_rows(feature_dim: usize, rows: Vec<SparseRow>, n: usize) -> Vec<RowStore> {
    assert!(n > 0, "partition_rows: n must be >= 1");
    let mut subsets: Vec<RowStore> = (0..n).map(|_| RowStore::new(feature_dim)).collect();
    for (i, row) in rows.into_iter().enumerate() {
        subsets[i % n].push_row(row);
    }
    subsets
}

/// An online service fanned out over parallel components.
pub struct FanOutService<S> {
    components: Vec<Component<S>>,
}

impl<S> FanOutService<S>
where
    S: ApproximateService + Sync,
    S::Request: Sync,
    S::Output: Send,
{
    /// Build every component from its subset (parallel offline pipeline).
    pub fn build(
        subsets: Vec<RowStore>,
        mode: AggregationMode,
        config: SynopsisConfig,
        make_service: impl Fn() -> S + Sync,
    ) -> Self
    where
        S: Send,
    {
        let components: Vec<Component<S>> = subsets
            .into_par_iter()
            .map(|subset| Component::build(subset, mode, config, make_service()).0)
            .collect();
        FanOutService { components }
    }

    /// Wrap pre-built components.
    pub fn from_components(components: Vec<Component<S>>) -> Self {
        assert!(!components.is_empty(), "service needs >= 1 component");
        FanOutService { components }
    }

    /// Number of parallel components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the service has no components (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrow the components.
    pub fn components(&self) -> &[Component<S>] {
        &self.components
    }

    /// Mutably borrow the components (for applying data updates).
    pub fn components_mut(&mut self) -> &mut [Component<S>] {
        &mut self.components
    }

    /// Fan a request out to all components with a per-component set budget;
    /// results arrive in component order.
    pub fn broadcast_budgeted(
        &self,
        req: &S::Request,
        imax: Option<usize>,
        budget_sets: usize,
    ) -> Vec<Outcome<S::Output>> {
        self.components
            .par_iter()
            .map(|c| c.approx_budgeted(req, imax, budget_sets))
            .collect()
    }

    /// Fan a request out for exact processing on all components.
    pub fn broadcast_exact(&self, req: &S::Request) -> Vec<S::Output> {
        self.components.par_iter().map(|c| c.exact(req)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::Correlation;
    use crate::processor::Ctx;
    use at_linalg::svd::SvdConfig;

    struct CountService;

    impl ApproximateService for CountService {
        type Request = ();
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _r: &()) -> (usize, Vec<Correlation>) {
            let corr = ctx
                .store
                .synopsis()
                .iter()
                .map(|p| Correlation {
                    node: p.node,
                    score: 1.0,
                })
                .collect();
            (0, corr)
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _r: &(),
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _r: &()) -> usize {
            ctx.dataset.len()
        }
    }

    fn rows(n: usize) -> Vec<SparseRow> {
        (0..n as u32)
            .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
            .collect()
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        let subsets = partition_rows(6, rows(103), 10);
        assert_eq!(subsets.len(), 10);
        let sizes: Vec<usize> = subsets.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    #[should_panic(expected = "n must be")]
    fn partition_zero_panics() {
        partition_rows(6, vec![], 0);
    }

    #[test]
    fn broadcast_covers_all_subsets() {
        let subsets = partition_rows(6, rows(120), 4);
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let svc = FanOutService::build(subsets, AggregationMode::Mean, cfg, || CountService);
        assert_eq!(svc.len(), 4);
        let outs = svc.broadcast_budgeted(&(), None, usize::MAX);
        let total: usize = outs.iter().map(|o| o.output).sum();
        assert_eq!(total, 120, "all components processed their whole subset");
        let exact: usize = svc.broadcast_exact(&()).iter().sum();
        assert_eq!(exact, 120);
    }
}

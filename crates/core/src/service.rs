//! A fan-out online service: request partitioning over parallel components
//! and response composition.
//!
//! Mirrors the paper's deployment (§4.3): one partitioning component, `n`
//! parallel processing components, one composing component. In-process we
//! fan out with rayon (the Storm-topology substitute); the latency behaviour
//! of a *distributed* deployment is modelled separately by `at-sim`.
//!
//! [`FanOutService::serve`] is the single request-lifecycle entry point:
//! it fans the request out under one [`ExecutionPolicy`], composes the
//! per-component partial outputs through the service's
//! [`ComposableService::compose`] hook, and returns the response together
//! with aggregated telemetry ([`ServiceResponse`]).
//!
//! Request *streams* go through [`FanOutService::serve_batch`]: one
//! fan-out and one per-component synopsis pass cover the whole batch, each
//! request keeping its own submission instant, policy accounting, and
//! telemetry — provably identical to serving the requests one at a time
//! under every clock-free policy (live deadlines additionally count time
//! spent waiting behind the batch, like any queueing delay).
//! [`FanOutService::serve_with`] drives heterogeneous per-component
//! policies through the same plumbing. Output buffers are recycled across
//! all of these via the service's [`OutputPool`].

use std::fmt;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig};

use crate::clock;
use crate::component::Component;
use crate::outcome::Outcome;
use crate::policy::ExecutionPolicy;
use crate::pool::OutputPool;
use crate::processor::{ApproximateService, ComposableService};

/// Errors from service construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// A partitioning or construction call asked for zero components.
    ZeroComponents,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ZeroComponents => {
                write!(f, "a fan-out service needs at least one component")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Requests scanned before the duplicate-collapse scan may bail out.
/// Below this, the scan is trivially cheap and uniqueness estimates are
/// too noisy to act on.
const COLLAPSE_BAIL_MIN_SCAN: usize = 32;

/// Bail out of collapsing once more than half of the scanned prefix is
/// unique: the linear probe per request is then quadratic work buying
/// almost no deduplication (zipf-skewed production mixes sit far below
/// this; adversarially unique batches sit far above).
fn collapse_should_bail(uniques: usize, scanned: usize) -> bool {
    scanned >= COLLAPSE_BAIL_MIN_SCAN && uniques * 2 > scanned
}

/// Split rows round-robin into `n` subsets of a `feature_dim`-column space —
/// the "entire input data is divided into n subsets" step. Round-robin keeps
/// subset sizes within one row of each other.
///
/// Returns [`ServiceError::ZeroComponents`] when `n == 0`.
pub fn partition_rows(
    feature_dim: usize,
    rows: Vec<SparseRow>,
    n: usize,
) -> Result<Vec<RowStore>, ServiceError> {
    if n == 0 {
        return Err(ServiceError::ZeroComponents);
    }
    let mut subsets: Vec<RowStore> = (0..n).map(|_| RowStore::new(feature_dim)).collect();
    for (i, row) in rows.into_iter().enumerate() {
        // lint: allow(panic-freedom) reason=i % n < n == subsets.len()
        subsets[i % n].push_row(row);
    }
    Ok(subsets)
}

/// Per-component processing counters of one served request: an
/// [`Outcome`] stripped of its output (see [`Outcome::stats`]), so the
/// counters and [`coverage`](Outcome::coverage) live in one place.
pub type ComponentTelemetry = Outcome<()>;

/// A composed response plus the request's aggregated telemetry.
#[derive(Clone, Debug)]
pub struct ServiceResponse<R> {
    /// The user-visible composed response.
    pub response: R,
    /// The policy this request actually ran under. Equal to the requested
    /// policy on the direct serving paths; differs when an admission
    /// controller degraded the request on its way through a server, which
    /// is exactly what this field lets callers observe. Heterogeneous
    /// per-component serving ([`FanOutService::serve_with`]) records the
    /// costliest per-component policy ([`ExecutionPolicy::cost_rank`],
    /// ties broken by the larger effective set budget) — an upper bound
    /// on the work any single component spent.
    pub policy_applied: ExecutionPolicy,
    /// Per-component counters, in component order.
    pub components: Vec<ComponentTelemetry>,
    /// Wall-clock time from submission to composed response.
    pub elapsed: Duration,
}

impl<R> ServiceResponse<R> {
    /// Mean per-component coverage of ranked sets, in `[0, 1]`.
    pub fn mean_coverage(&self) -> f64 {
        if self.components.is_empty() {
            return 1.0;
        }
        self.components.iter().map(|c| c.coverage()).sum::<f64>() / self.components.len() as f64
    }

    /// Worst per-component coverage (the straggler), in `[0, 1]`.
    pub fn min_coverage(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.coverage())
            .fold(1.0, f64::min)
    }

    /// Ranked sets processed, summed over components.
    pub fn sets_processed(&self) -> usize {
        self.components.iter().map(|c| c.sets_processed).sum()
    }

    /// Ranked sets available, summed over components.
    pub fn sets_total(&self) -> usize {
        self.components.iter().map(|c| c.sets_total).sum()
    }

    /// Stale sets skipped, summed over components; nonzero signals index
    /// corruption somewhere in the deployment.
    pub fn sets_skipped(&self) -> usize {
        self.components.iter().map(|c| c.sets_skipped).sum()
    }

    /// Map the response, keeping the telemetry.
    pub fn map<U>(self, f: impl FnOnce(R) -> U) -> ServiceResponse<U> {
        ServiceResponse {
            response: f(self.response),
            policy_applied: self.policy_applied,
            components: self.components,
            elapsed: self.elapsed,
        }
    }
}

/// An online service fanned out over parallel components.
///
/// Owns an [`OutputPool`] of per-component output buffers: every serve
/// call checks buffers out for stage 1 and returns them after composing
/// the response, so a **warm** service serves requests and whole batches
/// without allocating outputs (see [`crate::pool`]).
pub struct FanOutService<S: ApproximateService> {
    components: Vec<Component<S>>,
    pool: OutputPool<S::Output>,
}

impl<S> FanOutService<S>
where
    S: ApproximateService + Sync,
    S::Request: Sync,
    S::Output: Send,
{
    /// Build every component from its subset (parallel offline pipeline).
    pub fn build(
        subsets: Vec<RowStore>,
        mode: AggregationMode,
        config: SynopsisConfig,
        make_service: impl Fn() -> S + Sync,
    ) -> Self
    where
        S: Send,
    {
        assert!(!subsets.is_empty(), "service needs >= 1 component");
        let components: Vec<Component<S>> = subsets
            .into_par_iter()
            .map(|subset| Component::build(subset, mode, config, make_service()).0)
            .collect();
        Self::from_components(components)
    }

    /// Wrap pre-built components.
    ///
    /// # Panics
    /// Panics on an empty component list: a zero-component service is a
    /// construction bug, not a runtime condition (data-driven partitioning
    /// reports [`ServiceError::ZeroComponents`] from [`partition_rows`]
    /// before ever reaching a constructor).
    pub fn from_components(components: Vec<Component<S>>) -> Self {
        assert!(!components.is_empty(), "service needs >= 1 component");
        FanOutService {
            components,
            pool: OutputPool::new(),
        }
    }

    /// The service's output-buffer recycler (telemetry: a warm server's
    /// [`OutputPool::reuses`] grows with every request served).
    pub fn pool(&self) -> &OutputPool<S::Output> {
        &self.pool
    }

    /// Number of parallel components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the service has no components (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrow the components.
    pub fn components(&self) -> &[Component<S>] {
        &self.components
    }

    /// Mutably borrow the components (for applying data updates).
    pub fn components_mut(&mut self) -> &mut [Component<S>] {
        &mut self.components
    }

    /// Fan a request out to all components under one policy; raw outcomes
    /// arrive in component order. Prefer [`serve`](Self::serve) when the
    /// service composes a user-visible response.
    pub fn broadcast(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> Vec<Outcome<S::Output>> {
        self.components
            .par_iter()
            .map(|c| c.execute(req, policy, submitted))
            .collect()
    }

    /// Serve one request end to end: fan out under `policy`, compose the
    /// partial outputs, and aggregate telemetry. The request is treated as
    /// submitted now; use [`serve_at`](Self::serve_at) when upstream
    /// queueing delay must count against a deadline policy.
    ///
    /// The per-component hot path is allocation-free across requests: each
    /// rayon worker reuses a thread-local correlation scratch buffer inside
    /// [`Algorithm1::execute`](crate::Algorithm1::execute), so steady-state
    /// serving performs no per-set allocation (see the hot-path invariants
    /// in [`crate::processor`]).
    pub fn serve(&self, req: &S::Request, policy: &ExecutionPolicy) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        self.serve_at(req, policy, clock::now())
    }

    /// [`serve`](Self::serve) with an explicit submission instant.
    pub fn serve_at(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        self.serve_with_at(req, |_| *policy, submitted)
    }

    /// Serve one request with a **per-component** policy: component `i`
    /// executes under `policy_of(i)`. This is how heterogeneous budgets are
    /// driven — e.g. replaying a simulator's per-component set budgets, or
    /// an admission controller degrading only overloaded components.
    /// `serve` is the uniform special case (`policy_of = |_| policy`).
    pub fn serve_with(
        &self,
        req: &S::Request,
        policy_of: impl Fn(usize) -> ExecutionPolicy + Sync + Send,
    ) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        self.serve_with_at(req, policy_of, clock::now())
    }

    /// [`serve_with`](Self::serve_with) with an explicit submission instant.
    pub fn serve_with_at(
        &self,
        req: &S::Request,
        policy_of: impl Fn(usize) -> ExecutionPolicy + Sync + Send,
        submitted: Instant,
    ) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        let pool = &self.pool;
        let policy_of = &policy_of;
        let outcomes: Vec<Outcome<S::Output>> = self
            .components
            .par_iter()
            .enumerate()
            .map(|(i, c)| c.execute_pooled(req, &policy_of(i), submitted, pool))
            .collect();
        // Costliest per-component policy, ties to the larger effective cap;
        // the fold from `policy_of(0)` keeps `>=` so later equal-key
        // policies win, exactly like `max_by_key`, without an `expect` on
        // the (constructor-guaranteed) non-emptiness.
        let key = |p: &ExecutionPolicy| (p.cost_rank(), p.effective_cap(usize::MAX));
        let policy_applied =
            (1..self.components.len())
                .map(policy_of)
                .fold(
                    policy_of(0),
                    |best, p| {
                        if key(&p) >= key(&best) {
                            p
                        } else {
                            best
                        }
                    },
                );
        let components: Vec<ComponentTelemetry> = outcomes.iter().map(Outcome::stats).collect();
        let parts: Vec<S::Output> = outcomes.into_iter().map(|o| o.output).collect();
        // lint: allow(panic-freedom) reason=components nonempty, asserted in from_components
        let response = self.components[0].service().compose(req, &parts);
        for part in parts {
            self.pool.put(part);
        }
        ServiceResponse {
            response,
            policy_applied,
            components,
            elapsed: clock::elapsed_since(submitted),
        }
    }

    /// Serve a whole **batch** of requests end to end under one policy,
    /// all treated as submitted now. One fan-out covers the entire batch:
    /// each component worker makes a single stage-1 pass over its synopsis
    /// shared by every request
    /// ([`ApproximateService::process_synopsis_batch`]), then improves and
    /// composes each request independently. Under
    /// [clock-free](ExecutionPolicy::is_clock_free) policies (and the
    /// degenerate deadline cases — already expired, or generous enough to
    /// improve everything), responses and telemetry are identical to
    /// mapping [`serve`](Self::serve) over the batch, at a fraction of the
    /// fan-out and allocation cost. A *live* `Deadline` races the shared
    /// batch pass against each request's own clock: every request keeps
    /// its own accounting, but late-in-batch requests see more elapsed
    /// time than they would served alone — exactly the paper's queueing
    /// semantics, where waiting behind a batch *is* queueing delay.
    ///
    /// Under a [clock-free](ExecutionPolicy::is_clock_free) policy,
    /// duplicate requests in the batch are **collapsed**: services are
    /// deterministic functions of component state and request, so each
    /// distinct request is processed once and its response re-composed per
    /// occurrence. Zipf-skewed query mixes (the paper's workload shape)
    /// repeat hot requests constantly, making this the dominant batching
    /// win at peak load. `Deadline` batches are never collapsed — each
    /// request's outcome legitimately depends on its own submission
    /// instant.
    ///
    /// ```
    /// use at_core::{partition_rows, ApproximateService, ComposableService,
    ///               Correlation, Ctx, ExecutionPolicy, FanOutService};
    /// use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
    ///
    /// // A toy service: count the original rows each component processed.
    /// struct CountRows;
    /// impl ApproximateService for CountRows {
    ///     type Request = ();
    ///     type Output = usize;
    ///     fn process_synopsis(&self, ctx: Ctx<'_>, _r: &(), corr: &mut Vec<Correlation>) -> usize {
    ///         corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
    ///             node: p.node,
    ///             score: p.member_count as f64,
    ///         }));
    ///         0
    ///     }
    ///     fn improve(&self, _c: Ctx<'_>, _r: &(), out: &mut usize,
    ///                _n: at_rtree::NodeId, members: &[u64]) {
    ///         *out += members.len();
    ///     }
    ///     fn process_exact(&self, ctx: Ctx<'_>, _r: &()) -> usize {
    ///         ctx.dataset.len()
    ///     }
    /// }
    /// impl ComposableService for CountRows {
    ///     type Response = usize;
    ///     fn compose(&self, _r: &(), parts: &[usize]) -> usize {
    ///         parts.iter().sum()
    ///     }
    /// }
    ///
    /// let rows: Vec<SparseRow> = (0..90u32)
    ///     .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
    ///     .collect();
    /// let subsets = partition_rows(6, rows, 3).expect("n >= 1");
    /// let cfg = SynopsisConfig { size_ratio: 10, ..SynopsisConfig::default() };
    /// let service = FanOutService::build(subsets, AggregationMode::Mean, cfg, || CountRows);
    ///
    /// // A burst of four requests shares one fan-out and synopsis pass.
    /// let batch = vec![(); 4];
    /// let policy = ExecutionPolicy::budgeted(usize::MAX);
    /// let responses = service.serve_batch(&batch, &policy);
    /// assert_eq!(responses.len(), 4);
    /// for resp in &responses {
    ///     assert_eq!(resp.response, 90);
    ///     // Identical to serving the request alone.
    ///     assert_eq!(resp.response, service.serve(&(), &policy).response);
    /// }
    /// ```
    pub fn serve_batch(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
    ) -> Vec<ServiceResponse<S::Response>>
    where
        S: ComposableService,
        S::Request: Clone + PartialEq,
    {
        let submitted = vec![clock::now(); reqs.len()];
        self.serve_batch_at(reqs, policy, &submitted)
    }

    /// [`serve_batch`](Self::serve_batch) with one explicit submission
    /// instant per request (from the accept loop), so upstream queueing
    /// delay counts against each request's own deadline.
    ///
    /// # Panics
    /// Panics when `reqs` and `submitted` differ in length.
    pub fn serve_batch_at(
        &self,
        reqs: &[S::Request],
        policy: &ExecutionPolicy,
        submitted: &[Instant],
    ) -> Vec<ServiceResponse<S::Response>>
    where
        S: ComposableService,
        S::Request: Clone + PartialEq,
    {
        assert_eq!(
            reqs.len(),
            submitted.len(),
            "serve_batch: one submission instant per request"
        );
        if reqs.is_empty() {
            return Vec::new();
        }
        // Collapse duplicate requests (clock-free policies only):
        // `firsts[u]` is the original index of unique request `u`,
        // `unique_of[i]` the unique index serving original request `i`.
        // The linear probe per request is trivial on the duplicate-heavy
        // batches collapsing exists for, but O(batch × uniques) on
        // high-uniqueness batches — so once the scanned prefix proves
        // mostly unique ([`collapse_should_bail`]) the remainder is taken
        // as-is, each request its own unique. Collapsing is purely an
        // optimization: uncollapsed duplicates are still served correctly,
        // just without sharing their computation.
        let mut firsts: Vec<usize> = Vec::new();
        let mut unique_of: Vec<usize> = Vec::with_capacity(reqs.len());
        if policy.is_clock_free() {
            for (i, req) in reqs.iter().enumerate() {
                if collapse_should_bail(firsts.len(), i) {
                    for j in i..reqs.len() {
                        unique_of.push(firsts.len());
                        firsts.push(j);
                    }
                    break;
                }
                // lint: allow(panic-freedom) reason=f collected from enumerate over reqs, always in bounds
                match firsts.iter().position(|&f| reqs[f] == *req) {
                    Some(u) => unique_of.push(u),
                    None => {
                        unique_of.push(firsts.len());
                        firsts.push(i);
                    }
                }
            }
        } else {
            firsts = (0..reqs.len()).collect();
            unique_of = firsts.clone();
        }

        // One fan-out for the whole (collapsed) batch: `per_component[c][u]`
        // is component c's outcome for unique request u.
        let pool = &self.pool;
        let per_component: Vec<Vec<Outcome<S::Output>>> = if firsts.len() < reqs.len() {
            // lint: allow(panic-freedom) reason=firsts holds indices of reqs by construction; reqs.len() == submitted.len() asserted above
            let unique_reqs: Vec<S::Request> = firsts.iter().map(|&i| reqs[i].clone()).collect();
            // lint: allow(panic-freedom) reason=firsts holds indices of reqs by construction; reqs.len() == submitted.len() asserted above
            let unique_submitted: Vec<Instant> = firsts.iter().map(|&i| submitted[i]).collect();
            self.components
                .par_iter()
                .map(|c| c.execute_batch_pooled(&unique_reqs, policy, &unique_submitted, pool))
                .collect()
        } else {
            self.components
                .par_iter()
                .map(|c| c.execute_batch_pooled(reqs, policy, submitted, pool))
                .collect()
        };

        // Regroup by unique request, splitting telemetry from outputs.
        let mut telemetry: Vec<Vec<ComponentTelemetry>> = (0..firsts.len())
            .map(|_| Vec::with_capacity(self.components.len()))
            .collect();
        let mut parts: Vec<Vec<S::Output>> = (0..firsts.len())
            .map(|_| Vec::with_capacity(self.components.len()))
            .collect();
        for outcomes in per_component {
            for (u, outcome) in outcomes.into_iter().enumerate() {
                // lint: allow(panic-freedom) reason=execute_batch returns one outcome per unique request, so u < firsts.len()
                telemetry[u].push(outcome.stats());
                // lint: allow(panic-freedom) reason=execute_batch returns one outcome per unique request, so u < firsts.len()
                parts[u].push(outcome.output);
            }
        }

        // Compose per original request (each from its unique's parts),
        // then recycle every unique request's buffers.
        // lint: allow(panic-freedom) reason=components nonempty, asserted in from_components
        let composer = self.components[0].service();
        let responses = reqs
            .iter()
            .zip(submitted)
            .zip(&unique_of)
            .map(|((req, &sub), &u)| ServiceResponse {
                // lint: allow(panic-freedom) reason=unique_of maps into firsts, so u < firsts.len() == parts.len() == telemetry.len()
                response: composer.compose(req, &parts[u]),
                policy_applied: *policy,
                // lint: allow(panic-freedom) reason=unique_of maps into firsts, so u < firsts.len() == parts.len() == telemetry.len()
                components: telemetry[u].clone(),
                elapsed: clock::elapsed_since(sub),
            })
            .collect();
        for unique_parts in parts {
            for part in unique_parts {
                self.pool.put(part);
            }
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::Correlation;
    use crate::processor::Ctx;
    use at_linalg::svd::SvdConfig;

    struct CountService;

    impl ApproximateService for CountService {
        type Request = ();
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _r: &(), corr: &mut Vec<Correlation>) -> usize {
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: 1.0,
            }));
            0
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _r: &(),
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _r: &()) -> usize {
            ctx.dataset.len()
        }
    }

    impl ComposableService for CountService {
        type Response = usize;

        fn compose(&self, _r: &(), parts: &[usize]) -> usize {
            parts.iter().sum()
        }
    }

    fn rows(n: usize) -> Vec<SparseRow> {
        (0..n as u32)
            .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
            .collect()
    }

    fn quick_service(n_rows: usize, n_components: usize) -> FanOutService<CountService> {
        let subsets = partition_rows(6, rows(n_rows), n_components).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        FanOutService::build(subsets, AggregationMode::Mean, cfg, || CountService)
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        let subsets = partition_rows(6, rows(103), 10).unwrap();
        assert_eq!(subsets.len(), 10);
        let sizes: Vec<usize> = subsets.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_zero_is_an_error() {
        let err = partition_rows(6, vec![], 0).unwrap_err();
        assert_eq!(err, ServiceError::ZeroComponents);
        let msg = ServiceError::ZeroComponents.to_string();
        assert!(msg.contains("at least one component"), "got: {msg}");
    }

    #[test]
    fn serve_covers_all_subsets() {
        let svc = quick_service(120, 4);
        assert_eq!(svc.len(), 4);
        let full = svc.serve(&(), &ExecutionPolicy::budgeted(usize::MAX));
        assert_eq!(
            full.response, 120,
            "all components processed their whole subset"
        );
        assert_eq!(full.components.len(), 4);
        assert_eq!(full.mean_coverage(), 1.0);
        assert_eq!(full.min_coverage(), 1.0);
        assert_eq!(full.sets_skipped(), 0);
        let exact = svc.serve(&(), &ExecutionPolicy::Exact);
        assert_eq!(exact.response, 120);
    }

    #[test]
    fn serve_synopsis_only_touches_nothing() {
        let svc = quick_service(120, 4);
        let r = svc.serve(&(), &ExecutionPolicy::SynopsisOnly);
        assert_eq!(r.response, 0, "no members processed under SynopsisOnly");
        assert_eq!(r.sets_processed(), 0);
        assert!(r.sets_total() > 0);
        assert_eq!(r.mean_coverage(), 0.0);
    }

    #[test]
    fn serve_telemetry_tracks_partial_budgets() {
        let svc = quick_service(160, 4);
        let r = svc.serve(&(), &ExecutionPolicy::budgeted(1));
        assert_eq!(r.components.len(), 4);
        for c in &r.components {
            assert_eq!(c.sets_processed, 1.min(c.sets_total));
        }
        assert!(r.mean_coverage() > 0.0 && r.mean_coverage() < 1.0);
        assert!(r.min_coverage() <= r.mean_coverage());
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn serve_expired_deadline_degrades_to_synopsis() {
        let svc = quick_service(120, 3);
        let submitted = Instant::now() - Duration::from_millis(50);
        let r = svc.serve_at(
            &(),
            &ExecutionPolicy::deadline(Duration::from_millis(10)),
            submitted,
        );
        let synopsis_only = svc.serve(&(), &ExecutionPolicy::SynopsisOnly);
        assert_eq!(r.response, synopsis_only.response);
        assert_eq!(r.sets_processed(), 0);
    }

    #[test]
    fn serve_batch_equals_mapped_serve() {
        let svc = quick_service(120, 4);
        let reqs = vec![(); 5];
        for policy in [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(2),
            ExecutionPolicy::budgeted(usize::MAX),
        ] {
            let submitted = vec![Instant::now(); reqs.len()];
            let batch = svc.serve_batch_at(&reqs, &policy, &submitted);
            assert_eq!(batch.len(), reqs.len());
            for ((req, &sub), got) in reqs.iter().zip(&submitted).zip(&batch) {
                let want = svc.serve_at(req, &policy, sub);
                assert_eq!(got.response, want.response, "{policy:?}");
                assert_eq!(got.components, want.components, "{policy:?}");
            }
        }
    }

    /// `CountService` with an invocation counter on stage 1, to observe
    /// how many requests actually reach the components.
    struct MeteredService(std::sync::Arc<std::sync::atomic::AtomicUsize>);

    impl ApproximateService for MeteredService {
        type Request = u32;
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _r: &u32, corr: &mut Vec<Correlation>) -> usize {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: 1.0,
            }));
            0
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _r: &u32,
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _r: &u32) -> usize {
            ctx.dataset.len()
        }
    }

    impl ComposableService for MeteredService {
        type Response = usize;

        fn compose(&self, _r: &u32, parts: &[usize]) -> usize {
            parts.iter().sum()
        }
    }

    #[test]
    fn duplicate_requests_collapse_only_under_clock_free_policies() {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let subsets = partition_rows(6, rows(90), 3).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let svc = FanOutService::build(subsets, AggregationMode::Mean, cfg, || {
            MeteredService(calls.clone())
        });
        let batch = [7u32, 9, 7, 7, 9];

        calls.store(0, std::sync::atomic::Ordering::Relaxed);
        let responses = svc.serve_batch(&batch, &ExecutionPolicy::budgeted(1));
        assert_eq!(responses.len(), batch.len(), "one response per occurrence");
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            2 * svc.len(),
            "clock-free batch computes each distinct request once per component"
        );
        assert_eq!(responses[0].response, responses[2].response);
        assert_eq!(responses[0].components, responses[2].components);

        calls.store(0, std::sync::atomic::Ordering::Relaxed);
        svc.serve_batch(&batch, &ExecutionPolicy::deadline(Duration::from_secs(30)));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            batch.len() * svc.len(),
            "deadline batches are never collapsed"
        );
    }

    #[test]
    fn high_uniqueness_batch_bails_out_of_collapsing_but_stays_correct() {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let subsets = partition_rows(6, rows(90), 3).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let svc = FanOutService::build(subsets, AggregationMode::Mean, cfg, || {
            MeteredService(calls.clone())
        });
        // 48 distinct requests, then 16 duplicates of the first: the scan
        // proves the prefix mostly unique at COLLAPSE_BAIL_MIN_SCAN and
        // bails, so the duplicate tail is deliberately NOT collapsed.
        let batch: Vec<u32> = (0..48u32).chain(std::iter::repeat_n(0u32, 16)).collect();
        let policy = ExecutionPolicy::budgeted(1);
        let responses = svc.serve_batch(&batch, &policy);
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            batch.len() * svc.len(),
            "bailed-out batch computes every occurrence"
        );
        // Bailing out never changes what each request gets.
        assert_eq!(responses.len(), batch.len());
        for (req, got) in batch.iter().zip(&responses) {
            let want = svc.serve(req, &policy);
            assert_eq!(got.response, want.response);
            assert_eq!(got.components, want.components);
        }
    }

    #[test]
    fn low_uniqueness_batch_past_threshold_still_collapses() {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let subsets = partition_rows(6, rows(90), 3).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        let svc = FanOutService::build(subsets, AggregationMode::Mean, cfg, || {
            MeteredService(calls.clone())
        });
        // 64 requests over two distinct values (a zipf-like hot mix): the
        // unique count never approaches half the scanned prefix, so the
        // whole batch collapses to two computations per component.
        let batch: Vec<u32> = (0..64u32).map(|i| if i % 3 == 0 { 7 } else { 9 }).collect();
        let responses = svc.serve_batch(&batch, &ExecutionPolicy::budgeted(1));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            2 * svc.len(),
            "hot mix still collapses to its distinct requests"
        );
        assert_eq!(responses[0].response, responses[3].response);
        assert_eq!(responses[1].response, responses[2].response);
    }

    #[test]
    fn collapse_bail_threshold_shape() {
        // Below the minimum scan, never bail (even fully unique).
        assert!(!collapse_should_bail(31, 31));
        // At the boundary: more than half unique bails...
        assert!(collapse_should_bail(17, 32));
        // ...exactly half (or less) keeps collapsing.
        assert!(!collapse_should_bail(16, 32));
        assert!(!collapse_should_bail(2, 4096));
    }

    #[test]
    fn serve_batch_empty_is_empty() {
        let svc = quick_service(60, 2);
        assert!(svc
            .serve_batch(&[], &ExecutionPolicy::budgeted(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "one submission instant per request")]
    fn serve_batch_length_mismatch_panics() {
        let svc = quick_service(60, 2);
        svc.serve_batch_at(&[(), ()], &ExecutionPolicy::budgeted(1), &[Instant::now()]);
    }

    #[test]
    fn serve_batch_deadlines_are_per_request() {
        let svc = quick_service(120, 3);
        let now = Instant::now();
        let Some(past) = now.checked_sub(Duration::from_secs(60)) else {
            return; // monotonic clock younger than the offset (fresh boot)
        };
        // Middle request queued past its whole deadline.
        let submitted = vec![now, past, now];
        let policy = ExecutionPolicy::deadline(Duration::from_secs(30));
        let batch = svc.serve_batch_at(&[(), (), ()], &policy, &submitted);
        assert!(batch[0].mean_coverage() > 0.0);
        assert_eq!(batch[1].sets_processed(), 0, "expired request sheds work");
        assert!(batch[2].mean_coverage() > 0.0);
        assert!(batch[1].elapsed >= Duration::from_secs(60));
    }

    #[test]
    fn warm_service_recycles_output_buffers() {
        let svc = quick_service(120, 4);
        let policy = ExecutionPolicy::budgeted(1);
        let cold = svc.serve(&(), &policy);
        let before = svc.pool().reuses();
        let warm = svc.serve(&(), &policy);
        assert_eq!(cold.response, warm.response);
        assert!(
            svc.pool().reuses() > before,
            "second request must reuse pooled outputs"
        );
        let batch = svc.serve_batch(&[(); 6], &policy);
        assert!(batch.iter().all(|r| r.response == cold.response));
        assert!(svc.pool().idle() > 0, "batch buffers returned to the pool");
    }

    #[test]
    fn serve_with_uniform_policy_equals_serve() {
        let svc = quick_service(120, 4);
        for policy in [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(2),
        ] {
            let a = svc.serve(&(), &policy);
            let b = svc.serve_with(&(), |_| policy);
            assert_eq!(a.response, b.response);
            assert_eq!(a.components, b.components);
        }
    }

    #[test]
    fn serve_with_heterogeneous_budgets() {
        let svc = quick_service(160, 4);
        // Component i gets budget i: coverage must differ per component.
        let r = svc.serve_with(&(), ExecutionPolicy::budgeted);
        assert_eq!(r.components[0].sets_processed, 0);
        for (i, c) in r.components.iter().enumerate() {
            assert_eq!(c.sets_processed, i.min(c.sets_total));
        }
    }

    #[test]
    fn responses_record_the_policy_applied() {
        let svc = quick_service(120, 4);
        for policy in [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(2),
        ] {
            assert_eq!(svc.serve(&(), &policy).policy_applied, policy);
            let batch = svc.serve_batch(&[(); 3], &policy);
            assert!(batch.iter().all(|r| r.policy_applied == policy));
        }
        // Heterogeneous serving records the costliest per-component policy.
        let r = svc.serve_with(&(), |i| {
            if i == 2 {
                ExecutionPolicy::Exact
            } else {
                ExecutionPolicy::SynopsisOnly
            }
        });
        assert_eq!(r.policy_applied, ExecutionPolicy::Exact);
        // Equal-rank ties break on the larger budget: the reported policy
        // stays an upper bound on any component's work.
        let r = svc.serve_with(&(), |i| {
            if i == 0 {
                ExecutionPolicy::budgeted(100)
            } else {
                ExecutionPolicy::budgeted(1)
            }
        });
        assert_eq!(r.policy_applied, ExecutionPolicy::budgeted(100));
        // map() keeps it.
        let mapped = svc.serve(&(), &ExecutionPolicy::budgeted(1)).map(|n| n + 1);
        assert_eq!(mapped.policy_applied, ExecutionPolicy::budgeted(1));
    }

    #[test]
    fn broadcast_full_budget_covers_everything() {
        let svc = quick_service(100, 2);
        let total: usize = svc
            .broadcast(&(), &ExecutionPolicy::budgeted(usize::MAX), Instant::now())
            .into_iter()
            .map(|o| o.output)
            .sum();
        assert_eq!(total, 100);
        let exact: usize = svc
            .broadcast(&(), &ExecutionPolicy::Exact, Instant::now())
            .into_iter()
            .map(|o| o.output)
            .sum();
        assert_eq!(exact, 100);
    }
}

//! A fan-out online service: request partitioning over parallel components
//! and response composition.
//!
//! Mirrors the paper's deployment (§4.3): one partitioning component, `n`
//! parallel processing components, one composing component. In-process we
//! fan out with rayon (the Storm-topology substitute); the latency behaviour
//! of a *distributed* deployment is modelled separately by `at-sim`.
//!
//! [`FanOutService::serve`] is the single request-lifecycle entry point:
//! it fans the request out under one [`ExecutionPolicy`], composes the
//! per-component partial outputs through the service's
//! [`ComposableService::compose`] hook, and returns the response together
//! with aggregated telemetry ([`ServiceResponse`]).

use std::fmt;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig};

use crate::component::Component;
use crate::outcome::Outcome;
use crate::policy::ExecutionPolicy;
use crate::processor::{ApproximateService, ComposableService};

/// Errors from service construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// A partitioning or construction call asked for zero components.
    ZeroComponents,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ZeroComponents => {
                write!(f, "a fan-out service needs at least one component")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Split rows round-robin into `n` subsets of a `feature_dim`-column space —
/// the "entire input data is divided into n subsets" step. Round-robin keeps
/// subset sizes within one row of each other.
///
/// Returns [`ServiceError::ZeroComponents`] when `n == 0`.
pub fn partition_rows(
    feature_dim: usize,
    rows: Vec<SparseRow>,
    n: usize,
) -> Result<Vec<RowStore>, ServiceError> {
    if n == 0 {
        return Err(ServiceError::ZeroComponents);
    }
    let mut subsets: Vec<RowStore> = (0..n).map(|_| RowStore::new(feature_dim)).collect();
    for (i, row) in rows.into_iter().enumerate() {
        subsets[i % n].push_row(row);
    }
    Ok(subsets)
}

/// Per-component processing counters of one served request: an
/// [`Outcome`] stripped of its output (see [`Outcome::stats`]), so the
/// counters and [`coverage`](Outcome::coverage) live in one place.
pub type ComponentTelemetry = Outcome<()>;

/// A composed response plus the request's aggregated telemetry.
#[derive(Clone, Debug)]
pub struct ServiceResponse<R> {
    /// The user-visible composed response.
    pub response: R,
    /// Per-component counters, in component order.
    pub components: Vec<ComponentTelemetry>,
    /// Wall-clock time from submission to composed response.
    pub elapsed: Duration,
}

impl<R> ServiceResponse<R> {
    /// Mean per-component coverage of ranked sets, in `[0, 1]`.
    pub fn mean_coverage(&self) -> f64 {
        if self.components.is_empty() {
            return 1.0;
        }
        self.components.iter().map(|c| c.coverage()).sum::<f64>() / self.components.len() as f64
    }

    /// Worst per-component coverage (the straggler), in `[0, 1]`.
    pub fn min_coverage(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.coverage())
            .fold(1.0, f64::min)
    }

    /// Ranked sets processed, summed over components.
    pub fn sets_processed(&self) -> usize {
        self.components.iter().map(|c| c.sets_processed).sum()
    }

    /// Ranked sets available, summed over components.
    pub fn sets_total(&self) -> usize {
        self.components.iter().map(|c| c.sets_total).sum()
    }

    /// Stale sets skipped, summed over components; nonzero signals index
    /// corruption somewhere in the deployment.
    pub fn sets_skipped(&self) -> usize {
        self.components.iter().map(|c| c.sets_skipped).sum()
    }

    /// Map the response, keeping the telemetry.
    pub fn map<U>(self, f: impl FnOnce(R) -> U) -> ServiceResponse<U> {
        ServiceResponse {
            response: f(self.response),
            components: self.components,
            elapsed: self.elapsed,
        }
    }
}

/// An online service fanned out over parallel components.
pub struct FanOutService<S> {
    components: Vec<Component<S>>,
}

impl<S> FanOutService<S>
where
    S: ApproximateService + Sync,
    S::Request: Sync,
    S::Output: Send,
{
    /// Build every component from its subset (parallel offline pipeline).
    pub fn build(
        subsets: Vec<RowStore>,
        mode: AggregationMode,
        config: SynopsisConfig,
        make_service: impl Fn() -> S + Sync,
    ) -> Self
    where
        S: Send,
    {
        assert!(!subsets.is_empty(), "service needs >= 1 component");
        let components: Vec<Component<S>> = subsets
            .into_par_iter()
            .map(|subset| Component::build(subset, mode, config, make_service()).0)
            .collect();
        FanOutService { components }
    }

    /// Wrap pre-built components.
    ///
    /// # Panics
    /// Panics on an empty component list: a zero-component service is a
    /// construction bug, not a runtime condition (data-driven partitioning
    /// reports [`ServiceError::ZeroComponents`] from [`partition_rows`]
    /// before ever reaching a constructor).
    pub fn from_components(components: Vec<Component<S>>) -> Self {
        assert!(!components.is_empty(), "service needs >= 1 component");
        FanOutService { components }
    }

    /// Number of parallel components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the service has no components (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrow the components.
    pub fn components(&self) -> &[Component<S>] {
        &self.components
    }

    /// Mutably borrow the components (for applying data updates).
    pub fn components_mut(&mut self) -> &mut [Component<S>] {
        &mut self.components
    }

    /// Fan a request out to all components under one policy; raw outcomes
    /// arrive in component order. Prefer [`serve`](Self::serve) when the
    /// service composes a user-visible response.
    pub fn broadcast(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> Vec<Outcome<S::Output>> {
        self.components
            .par_iter()
            .map(|c| c.execute(req, policy, submitted))
            .collect()
    }

    /// Serve one request end to end: fan out under `policy`, compose the
    /// partial outputs, and aggregate telemetry. The request is treated as
    /// submitted now; use [`serve_at`](Self::serve_at) when upstream
    /// queueing delay must count against a deadline policy.
    ///
    /// The per-component hot path is allocation-free across requests: each
    /// rayon worker reuses a thread-local correlation scratch buffer inside
    /// [`Algorithm1::execute`](crate::Algorithm1::execute), so steady-state
    /// serving performs no per-set allocation (see the hot-path invariants
    /// in [`crate::processor`]).
    pub fn serve(&self, req: &S::Request, policy: &ExecutionPolicy) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        self.serve_at(req, policy, Instant::now())
    }

    /// [`serve`](Self::serve) with an explicit submission instant.
    pub fn serve_at(
        &self,
        req: &S::Request,
        policy: &ExecutionPolicy,
        submitted: Instant,
    ) -> ServiceResponse<S::Response>
    where
        S: ComposableService,
    {
        let outcomes = self.broadcast(req, policy, submitted);
        let components: Vec<ComponentTelemetry> = outcomes.iter().map(Outcome::stats).collect();
        let parts: Vec<S::Output> = outcomes.into_iter().map(|o| o.output).collect();
        let response = self.components[0].service().compose(req, &parts);
        ServiceResponse {
            response,
            components,
            elapsed: submitted.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::Correlation;
    use crate::processor::Ctx;
    use at_linalg::svd::SvdConfig;

    struct CountService;

    impl ApproximateService for CountService {
        type Request = ();
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _r: &(), corr: &mut Vec<Correlation>) -> usize {
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: 1.0,
            }));
            0
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _r: &(),
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _r: &()) -> usize {
            ctx.dataset.len()
        }
    }

    impl ComposableService for CountService {
        type Response = usize;

        fn compose(&self, _r: &(), parts: &[usize]) -> usize {
            parts.iter().sum()
        }
    }

    fn rows(n: usize) -> Vec<SparseRow> {
        (0..n as u32)
            .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
            .collect()
    }

    fn quick_service(n_rows: usize, n_components: usize) -> FanOutService<CountService> {
        let subsets = partition_rows(6, rows(n_rows), n_components).unwrap();
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        FanOutService::build(subsets, AggregationMode::Mean, cfg, || CountService)
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        let subsets = partition_rows(6, rows(103), 10).unwrap();
        assert_eq!(subsets.len(), 10);
        let sizes: Vec<usize> = subsets.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_zero_is_an_error() {
        let err = partition_rows(6, vec![], 0).unwrap_err();
        assert_eq!(err, ServiceError::ZeroComponents);
        let msg = ServiceError::ZeroComponents.to_string();
        assert!(msg.contains("at least one component"), "got: {msg}");
    }

    #[test]
    fn serve_covers_all_subsets() {
        let svc = quick_service(120, 4);
        assert_eq!(svc.len(), 4);
        let full = svc.serve(&(), &ExecutionPolicy::budgeted(usize::MAX));
        assert_eq!(
            full.response, 120,
            "all components processed their whole subset"
        );
        assert_eq!(full.components.len(), 4);
        assert_eq!(full.mean_coverage(), 1.0);
        assert_eq!(full.min_coverage(), 1.0);
        assert_eq!(full.sets_skipped(), 0);
        let exact = svc.serve(&(), &ExecutionPolicy::Exact);
        assert_eq!(exact.response, 120);
    }

    #[test]
    fn serve_synopsis_only_touches_nothing() {
        let svc = quick_service(120, 4);
        let r = svc.serve(&(), &ExecutionPolicy::SynopsisOnly);
        assert_eq!(r.response, 0, "no members processed under SynopsisOnly");
        assert_eq!(r.sets_processed(), 0);
        assert!(r.sets_total() > 0);
        assert_eq!(r.mean_coverage(), 0.0);
    }

    #[test]
    fn serve_telemetry_tracks_partial_budgets() {
        let svc = quick_service(160, 4);
        let r = svc.serve(&(), &ExecutionPolicy::budgeted(1));
        assert_eq!(r.components.len(), 4);
        for c in &r.components {
            assert_eq!(c.sets_processed, 1.min(c.sets_total));
        }
        assert!(r.mean_coverage() > 0.0 && r.mean_coverage() < 1.0);
        assert!(r.min_coverage() <= r.mean_coverage());
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn serve_expired_deadline_degrades_to_synopsis() {
        let svc = quick_service(120, 3);
        let submitted = Instant::now() - Duration::from_millis(50);
        let r = svc.serve_at(
            &(),
            &ExecutionPolicy::deadline(Duration::from_millis(10)),
            submitted,
        );
        let synopsis_only = svc.serve(&(), &ExecutionPolicy::SynopsisOnly);
        assert_eq!(r.response, synopsis_only.response);
        assert_eq!(r.sets_processed(), 0);
    }

    #[test]
    fn broadcast_full_budget_covers_everything() {
        let svc = quick_service(100, 2);
        let total: usize = svc
            .broadcast(&(), &ExecutionPolicy::budgeted(usize::MAX), Instant::now())
            .into_iter()
            .map(|o| o.output)
            .sum();
        assert_eq!(total, 100);
        let exact: usize = svc
            .broadcast(&(), &ExecutionPolicy::Exact, Instant::now())
            .into_iter()
            .map(|o| o.output)
            .sum();
        assert_eq!(exact, 100);
    }
}

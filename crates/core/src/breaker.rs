//! Per-component circuit breakers: skip a persistently broken fan-out
//! leg instead of paying its stall or panic on every batch.
//!
//! The containment boundary ([`crate::containment`]) turns a panicking
//! component into one failed leg — but a component that fails *every*
//! request still costs its full stage-1 work (or worse, a configured
//! stall) per batch before failing. The breaker is the classic remedy:
//!
//! ```text
//!            K consecutive failures
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown serve rounds
//!     │ probe succeeds                  ▼
//!     └────────────────────────────  HalfOpen ── probe fails ──▶ Open
//! ```
//!
//! While `Open`, [`should_attempt`](CircuitBreaker::should_attempt)
//! answers `false` at the cost of one mutex lock — the leg is skipped
//! before any stage-1 work, so a broken component costs ≈ 0 per batch.
//! The breaker is deliberately **count-based, not time-based**: cooldown
//! is measured in serve rounds, keeping the fault path clock-free (the
//! clock-discipline invariant rule applies here too) and exactly
//! reproducible under seeded fault schedules.
//!
//! Concurrency: the fan-out consults each component's breaker from rayon
//! workers. Races are benign — the worst case is one extra half-open
//! probe when two serves transition the same breaker in the same round,
//! which costs one component execution, never correctness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuning of one [`CircuitBreaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip `Closed → Open` (the paper-side
    /// analogue of "declare the component down, serve from survivors").
    pub failure_threshold: u32,
    /// Skipped serve rounds before an `Open` breaker admits one
    /// `HalfOpen` probe.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: 8,
        }
    }
}

impl BreakerConfig {
    fn validate(&self) {
        assert!(
            self.failure_threshold >= 1,
            "failure_threshold must be >= 1"
        );
        assert!(self.cooldown >= 1, "cooldown must be >= 1");
    }
}

/// Where one breaker currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every serve attempts the component.
    Closed,
    /// Tripped: the component is skipped until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides `Closed` vs `Open`.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Consecutive failures while `Closed`.
    consecutive_failures: u32,
    /// Skips remaining before `Open` admits a probe.
    cooldown_left: u32,
}

/// One component's breaker; see the module docs for the state machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    ///
    /// # Panics
    /// Panics when `failure_threshold` or `cooldown` is zero.
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                cooldown_left: 0,
            }),
            trips: AtomicU64::new(0),
        }
    }

    /// The breaker's tuning.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Plain scalars; take over a poisoned lock.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Current state (telemetry; the fan-out uses
    /// [`should_attempt`](Self::should_attempt) instead).
    pub fn state(&self) -> BreakerState {
        self.inner().state
    }

    /// Times this breaker tripped to `Open` (a failed half-open probe
    /// counts as a new trip).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Should the caller attempt the component this round? `false` means
    /// *skip the leg* — either the breaker is `Open` and cooling down, or
    /// another serve's half-open probe is already in flight. A `true`
    /// answer obligates the caller to report the attempt's outcome via
    /// [`record_success`](Self::record_success) /
    /// [`record_failure`](Self::record_failure).
    pub fn should_attempt(&self) -> bool {
        let mut inner = self.inner();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if inner.cooldown_left > 1 {
                    inner.cooldown_left -= 1;
                    false
                } else {
                    // This call *is* the probe.
                    inner.state = BreakerState::HalfOpen;
                    true
                }
            }
            BreakerState::HalfOpen => false,
        }
    }

    /// The attempted leg completed: close the breaker.
    pub fn record_success(&self) {
        let mut inner = self.inner();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
    }

    /// The attempted leg failed (contained panic). Trips the breaker
    /// after `failure_threshold` consecutive failures; a failed half-open
    /// probe re-opens immediately.
    pub fn record_failure(&self) {
        let mut inner = self.inner();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    self.trip(&mut inner);
                }
            }
            BreakerState::HalfOpen => self.trip(&mut inner),
            // A failure reported while Open (e.g. a racing serve that
            // passed should_attempt just before another's failure
            // tripped the breaker) changes nothing.
            BreakerState::Open => {}
        }
    }

    fn trip(&self, inner: &mut Inner) {
        inner.state = BreakerState::Open;
        inner.consecutive_failures = 0;
        inner.cooldown_left = self.config.cooldown;
        self.trips.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown,
        })
    }

    #[test]
    fn stays_closed_below_the_threshold() {
        let b = breaker(3, 4);
        for _ in 0..2 {
            assert!(b.should_attempt());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        // A success resets the consecutive count.
        b.record_success();
        for _ in 0..2 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_after_k_consecutive_failures_then_skips_for_the_cooldown() {
        let b = breaker(3, 4);
        for _ in 0..3 {
            assert!(b.should_attempt());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // cooldown=4: three skipped rounds, then the fourth is the probe.
        for _ in 0..3 {
            assert!(!b.should_attempt());
        }
        assert!(b.should_attempt(), "cooldown elapsed: admit one probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn successful_probe_closes_failed_probe_reopens() {
        let b = breaker(1, 1);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.should_attempt(), "cooldown=1: next round probes");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);

        b.record_failure();
        assert!(b.should_attempt());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 3, "failed probe counts as a fresh trip");
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = breaker(1, 1);
        b.record_failure();
        assert!(b.should_attempt());
        assert!(
            !b.should_attempt(),
            "second caller must not stampede the probe"
        );
    }

    #[test]
    #[should_panic(expected = "failure_threshold")]
    fn zero_threshold_is_a_construction_bug() {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            cooldown: 1,
        });
    }
}

//! The serving plane's **single** unwind-containment boundary.
//!
//! The workspace-wide panic story is *panic-freedom*: first-party serving
//! code never panics on its own, and the `panic-freedom` invariant rule
//! machine-checks the forbidden constructs. But a fan-out service runs
//! *pluggable* component services ([`crate::ApproximateService`] hooks),
//! and a deployment with millions of users will eventually run one that
//! panics — through a data bug, a poisoned model, or a deliberately
//! injected fault ([`crate::fault`]). The paper's premise is that an
//! answer of reduced quality beats no answer; a single dying component
//! must therefore cost its own coverage, not the whole batch.
//!
//! This module is the **one place** in the workspace allowed to spell
//! `catch_unwind` / `AssertUnwindSafe` — the `unwind-containment`
//! invariant rule flags the tokens anywhere else (see `analysis.toml`).
//! Keeping the boundary in one designated module keeps the panic-freedom
//! story coherent: everything else either never panics or lets the panic
//! propagate to a supervisor.
//!
//! # Why `AssertUnwindSafe` is sound here
//!
//! A contained fan-out leg shares three pieces of state with the rest of
//! the process, and each is unwind-safe *by design*, not by accident:
//!
//! - the service's [`OutputPool`](crate::OutputPool) repairs a poisoned
//!   free list by discarding it (counted in
//!   [`discarded_on_poison`](crate::OutputPool::discarded_on_poison));
//!   buffers checked out by the dying leg are dropped with its stack;
//! - the per-thread correlation/batch scratches in [`crate::processor`]
//!   are cleared at the start of every use, so a half-filled scratch from
//!   a dead request cannot leak into the next one;
//! - the per-component [`CircuitBreaker`](crate::CircuitBreaker) is
//!   updated *outside* the contained closure and recovers poisoned locks
//!   by taking them over (plain scalars, nothing torn).

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `f`, converting a panic into `Err(())`. The panic payload is
/// deliberately dropped: at the fan-out boundary an erroring component
/// and a crashing component are the same event — one failed leg — and
/// the caller's telemetry ([`components_failed`]) records *which*, not
/// *why*. (Deterministic fault schedules make the *why* reproducible on
/// demand; see [`crate::fault`].)
///
/// [`components_failed`]: crate::ServiceResponse::components_failed
pub(crate) fn contain<T>(f: impl FnOnce() -> T) -> Result<T, ()> {
    catch_unwind(AssertUnwindSafe(f)).map_err(drop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through() {
        assert_eq!(contain(|| 41 + 1), Ok(42));
    }

    #[test]
    fn panic_is_contained_to_err() {
        // lint: allow(panic-freedom) reason=deliberate panic exercising the boundary
        let r: Result<u32, ()> = contain(|| panic!("leg died"));
        assert_eq!(r, Err(()));
    }

    #[test]
    fn typed_payloads_are_contained_too() {
        let r: Result<(), ()> = contain(|| {
            std::panic::panic_any(crate::fault::InjectedFault {
                site: crate::fault::FaultSite::Stage1,
            })
        });
        assert_eq!(r, Err(()));
    }
}

//! Typed recycling of per-component `Output` buffers.
//!
//! The per-request hot path stopped allocating correlation vectors in the
//! zero-allocation pass (per-worker scratch in [`crate::processor`]), but
//! every request still allocated its per-component output — a
//! `Vec<PredictionAcc>` for the recommender, a `TopK` heap for the search
//! engine. [`OutputPool`] closes that last steady-state allocation: the
//! fan-out service checks buffers out before stage 1
//! ([`ApproximateService::process_synopsis_into`](crate::ApproximateService::process_synopsis_into)
//! resets them in place) and returns them after composing the response, so
//! a **warm** server serves requests and whole batches without touching the
//! heap for outputs.
//!
//! The pool is deliberately dumb: a mutex around a stack of buffers, with a
//! retention cap so a one-off giant batch cannot pin memory forever. All
//! buffers are interchangeable because every service resets a recycled
//! buffer before use — a pool hit changes *where the storage came from*,
//! never *what the request computes*.
//!
//! # Example
//!
//! ```
//! use at_core::OutputPool;
//!
//! let pool: OutputPool<Vec<f64>> = OutputPool::new();
//! assert!(pool.get().is_none(), "cold pool has nothing to recycle");
//!
//! // A request's output buffer comes back after composition...
//! pool.put(vec![0.25, 0.5]);
//! // ...and the next request reuses its storage instead of allocating.
//! let recycled = pool.get().expect("warm pool serves the buffer back");
//! assert_eq!(recycled.capacity() >= 2, true);
//! assert_eq!(pool.reuses(), 1);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Buffers retained by default; `put` drops beyond this, bounding the
/// memory a burst of huge batches can leave behind.
const DEFAULT_RETAIN: usize = 4096;

/// A typed recycler for request output buffers.
///
/// `get` pops a previously returned buffer (or `None` when cold — the
/// caller then allocates fresh, exactly once per buffer ever in flight);
/// `put` returns a buffer for the next request. Shared across rayon
/// workers (`&OutputPool` is `Sync` for `T: Send`).
#[derive(Debug)]
pub struct OutputPool<T> {
    free: Mutex<Vec<T>>,
    retain: usize,
    reuses: AtomicUsize,
    discarded_on_poison: AtomicUsize,
}

impl<T> Default for OutputPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OutputPool<T> {
    /// An empty pool retaining at most [`DEFAULT_RETAIN`] buffers.
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_RETAIN)
    }

    /// An empty pool retaining at most `retain` buffers; `put` beyond that
    /// drops the buffer instead of growing the pool.
    pub fn with_retention(retain: usize) -> Self {
        OutputPool {
            free: Mutex::new(Vec::new()),
            retain,
            reuses: AtomicUsize::new(0),
            discarded_on_poison: AtomicUsize::new(0),
        }
    }

    /// Lock the free list, recovering from a poisoned mutex. A panicking
    /// worker (e.g. one rayon fan-out leg dying mid-request) must not turn
    /// every later serve into a panic cascade: the pooled buffers are only
    /// recycled storage, so recovery is simply discarding the free list —
    /// subsequent requests allocate fresh, exactly like a cold pool. The
    /// buffers thrown away are counted in
    /// [`discarded_on_poison`](Self::discarded_on_poison): silent pool
    /// capacity loss after a contained panic would otherwise read as an
    /// inexplicable allocation-rate regression.
    fn free_list(&self) -> MutexGuard<'_, Vec<T>> {
        match self.free.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.free.clear_poison();
                let mut guard = poisoned.into_inner();
                self.discarded_on_poison
                    .fetch_add(guard.len(), Ordering::Relaxed);
                guard.clear();
                guard
            }
        }
    }

    /// Check a recycled buffer out, if any. The caller owns it until the
    /// matching [`put`](Self::put).
    pub fn get(&self) -> Option<T> {
        let buf = self.free_list().pop();
        if buf.is_some() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        buf
    }

    /// Check up to `n` recycled buffers out into `into` (used by the batch
    /// path to seed one buffer per request in a single lock acquisition).
    pub fn get_up_to(&self, n: usize, into: &mut Vec<T>) {
        let mut free = self.free_list();
        let take = n.min(free.len());
        let keep = free.len() - take;
        into.extend(free.drain(keep..));
        drop(free);
        self.reuses.fetch_add(take, Ordering::Relaxed);
    }

    /// Return a buffer for reuse; dropped silently once the retention cap
    /// is reached.
    pub fn put(&self, buf: T) {
        let mut free = self.free_list();
        if free.len() < self.retain {
            free.push(buf);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free_list().len()
    }

    /// True when no buffer is idle (a cold pool, or all checked out).
    pub fn is_empty(&self) -> bool {
        self.idle() == 0
    }

    /// Total buffers ever served back out of the pool. Monotone; a warm
    /// server's reuse count grows with every request. For services that
    /// override `process_synopsis_into` to reset buffers in place this
    /// equals the output allocations avoided; a service on the default
    /// hook overwrites the recycled buffer with a fresh allocation, so
    /// there the count only measures pool traffic.
    pub fn reuses(&self) -> usize {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Idle buffers thrown away while recovering a poisoned free list
    /// (see [`free_list`](Self::free_list)). Monotone; nonzero means a
    /// worker died holding the pool lock and the pool restarted cold.
    pub fn discarded_on_poison(&self) -> usize {
        self.discarded_on_poison.load(Ordering::Relaxed)
    }
}

/// Prepare `outs` as one output buffer per request of an `n`-request
/// batch: buffers beyond `n` are dropped, recycled buffers (which may hold
/// *any* prior request's state) are reset in place via `reset(buf, i)`,
/// and the remainder is created fresh via `make(i)`.
///
/// This is the recycled-output prologue every
/// [`ApproximateService::process_synopsis_batch`](crate::ApproximateService::process_synopsis_batch)
/// override needs; sharing it keeps the subtle recycled-index bookkeeping
/// in one place.
pub fn prepare_outputs<T>(
    outs: &mut Vec<T>,
    n: usize,
    mut reset: impl FnMut(&mut T, usize),
    mut make: impl FnMut(usize) -> T,
) {
    outs.truncate(n);
    for (i, out) in outs.iter_mut().enumerate() {
        reset(out, i);
    }
    for i in outs.len()..n {
        outs.push(make(i));
    }
}

/// Pick the request-tile width for a cache-tiled
/// [`ApproximateService::process_synopsis_batch`](crate::ApproximateService::process_synopsis_batch)
/// pass, once per batch.
///
/// The batch pass streams every synopsis point past every request. Untiled,
/// a wide batch cycles through more per-request state (profile lanes,
/// accumulators, correlation tails) than L1 holds, so each point
/// eviction-misses its way down the request column — tiling caps how much
/// request state is live at once, trading one extra synopsis stream per
/// tile for L1-resident inner iterations. `row_nnz` is the mean aggregated-row size: bigger rows
/// mean more per-request merge state, hence narrower tiles.
///
/// Pure arithmetic on two integers — no clocks, no allocation; both
/// adapters share it so the tiling heuristic stays in one place.
pub fn batch_tile_span(n_reqs: usize, row_nnz: usize) -> usize {
    // Budget roughly half a 32 KiB L1d for request-side state, leaving the
    // other half to the streaming point row and the accumulator writes.
    const L1_BUDGET_BYTES: usize = 16 * 1024;
    // Per request per point-entry touched: value lane + mask/id overhead on
    // the profile side plus an accumulator slot — ~24 bytes amortised.
    const BYTES_PER_ENTRY: usize = 24;
    let per_req = row_nnz.max(1).saturating_mul(BYTES_PER_ENTRY);
    (L1_BUDGET_BYTES / per_req).max(4).min(n_reqs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_span_is_clamped_and_monotone() {
        // Never zero, never wider than the batch.
        assert_eq!(batch_tile_span(0, 100), 1);
        assert_eq!(batch_tile_span(1, 0), 1);
        assert_eq!(batch_tile_span(64, usize::MAX / 16), 4);
        // Denser rows never widen the tile.
        let mut last = usize::MAX;
        for nnz in [1usize, 8, 64, 512, 4096] {
            let t = batch_tile_span(1024, nnz);
            assert!((1..=1024).contains(&t));
            assert!(t <= last, "tile must shrink as rows densify");
            last = t;
        }
        // Small batches are a single tile.
        assert_eq!(batch_tile_span(3, 10_000), 3);
    }

    #[test]
    fn prepare_outputs_resets_recycled_and_makes_fresh() {
        let mut outs = vec![vec![9u8; 3], vec![8u8; 1], vec![7u8]];
        // Shrinking batch: excess buffer dropped, survivors reset.
        prepare_outputs(
            &mut outs,
            2,
            |b, i| *b = vec![i as u8],
            |i| vec![i as u8; 2],
        );
        assert_eq!(outs, vec![vec![0], vec![1]]);
        // Growing batch: both recycled buffers reset, two made fresh.
        prepare_outputs(
            &mut outs,
            4,
            |b, i| *b = vec![i as u8],
            |i| vec![i as u8; 2],
        );
        assert_eq!(outs, vec![vec![0], vec![1], vec![2, 2], vec![3, 3]]);
    }

    #[test]
    fn cold_pool_yields_nothing() {
        let pool: OutputPool<Vec<u8>> = OutputPool::new();
        assert!(pool.get().is_none());
        assert!(pool.is_empty());
        assert_eq!(pool.reuses(), 0);
    }

    #[test]
    fn put_then_get_recycles() {
        let pool = OutputPool::new();
        pool.put(vec![1u8, 2, 3]);
        assert_eq!(pool.idle(), 1);
        let buf = pool.get().unwrap();
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(pool.reuses(), 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn retention_cap_drops_excess() {
        let pool = OutputPool::with_retention(2);
        for i in 0..5u8 {
            pool.put(vec![i]);
        }
        assert_eq!(pool.idle(), 2, "puts beyond the cap are dropped");
    }

    #[test]
    fn get_up_to_takes_at_most_available() {
        let pool = OutputPool::new();
        pool.put(vec![1u8]);
        pool.put(vec![2u8]);
        let mut out = Vec::new();
        pool.get_up_to(5, &mut out);
        assert_eq!(out.len(), 2);
        assert!(pool.is_empty());
        assert_eq!(pool.reuses(), 2);
        // And takes exactly n when more are idle.
        for i in 0..4u8 {
            pool.put(vec![i]);
        }
        let mut out = Vec::new();
        pool.get_up_to(3, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn poisoned_pool_recovers_by_discarding_free_list() {
        let pool: OutputPool<Vec<u8>> = OutputPool::new();
        pool.put(vec![1]);
        pool.put(vec![2]);
        // A worker dies while holding the pool lock, poisoning the mutex.
        let worker = std::thread::scope(|s| {
            s.spawn(|| {
                // lint: allow(lock-hygiene) reason=deliberately poisons the lock to exercise the recovery path under test
                let _guard = pool.free.lock().unwrap();
                // lint: allow(panic-freedom) reason=the test-harness panic that poisons the lock
                panic!("worker panics with the pool locked");
            })
            .join()
        });
        assert!(worker.is_err(), "the worker must actually have panicked");
        assert!(pool.free.is_poisoned());
        assert_eq!(
            pool.discarded_on_poison(),
            0,
            "nothing discarded until someone touches the poisoned pool"
        );
        // Every later operation recovers instead of cascading the panic:
        // the free list is discarded (cold-pool behaviour)...
        assert!(pool.get().is_none());
        assert_eq!(pool.idle(), 0);
        let mut out = Vec::new();
        pool.get_up_to(4, &mut out);
        assert!(out.is_empty());
        // ...the two idle buffers lost to recovery are accounted for...
        assert_eq!(pool.discarded_on_poison(), 2);
        // ...and the pool recycles normally from then on.
        assert!(!pool.free.is_poisoned());
        pool.put(vec![3]);
        assert_eq!(pool.get(), Some(vec![3]));
        assert_eq!(pool.reuses(), 1, "only the post-recovery get reused");
        assert_eq!(pool.discarded_on_poison(), 2, "recovery counted once");
    }

    #[test]
    fn shared_across_threads() {
        let pool: OutputPool<Vec<u64>> = OutputPool::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..50 {
                        let mut buf = pool.get().unwrap_or_default();
                        buf.clear();
                        buf.push(t * 1000 + i);
                        pool.put(buf);
                    }
                });
            }
        });
        assert!(pool.idle() <= 4, "at most one buffer per thread in flight");
    }
}

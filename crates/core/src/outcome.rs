//! Result of one component's approximate processing.

/// What a component produced for a request, plus how much of the ranked
/// input data it managed to process.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome<T> {
    /// The (approximate) component result `ar`.
    pub output: T,
    /// Ranked sets of original data points actually processed (`i` at loop
    /// exit).
    pub sets_processed: usize,
    /// Total ranked sets available (synopsis size `m`).
    pub sets_total: usize,
    /// Ranked sets skipped because their aggregated point had no index-file
    /// entry (stale synopsis); nonzero values signal index corruption.
    pub sets_skipped: usize,
}

impl<T> Outcome<T> {
    /// Fraction of ranked sets processed, in `[0, 1]`; `1.0` when the
    /// synopsis is empty (nothing left unprocessed).
    pub fn coverage(&self) -> f64 {
        if self.sets_total == 0 {
            1.0
        } else {
            self.sets_processed as f64 / self.sets_total as f64
        }
    }

    /// Map the output, keeping the bookkeeping.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        Outcome {
            output: f(self.output),
            sets_processed: self.sets_processed,
            sets_total: self.sets_total,
            sets_skipped: self.sets_skipped,
        }
    }

    /// Drop the output, keeping only the telemetry counters (the
    /// per-component records of a [`ServiceResponse`](crate::ServiceResponse)).
    pub fn stats(&self) -> Outcome<()> {
        Outcome {
            output: (),
            sets_processed: self.sets_processed,
            sets_total: self.sets_total,
            sets_skipped: self.sets_skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_basic() {
        let o = Outcome {
            output: (),
            sets_processed: 3,
            sets_total: 12,
            sets_skipped: 0,
        };
        assert_eq!(o.coverage(), 0.25);
    }

    #[test]
    fn coverage_empty_synopsis_is_full() {
        let o = Outcome {
            output: (),
            sets_processed: 0,
            sets_total: 0,
            sets_skipped: 0,
        };
        assert_eq!(o.coverage(), 1.0);
    }

    #[test]
    fn map_preserves_counts() {
        let o = Outcome {
            output: 21,
            sets_processed: 1,
            sets_total: 2,
            sets_skipped: 1,
        };
        let o = o.map(|x| x * 2);
        assert_eq!(o.output, 42);
        assert_eq!(o.sets_processed, 1);
        assert_eq!(o.sets_total, 2);
        assert_eq!(o.sets_skipped, 1);
    }
}

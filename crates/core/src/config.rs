//! Online-processing configuration (Algorithm 1's `l_spe` and `i_max`).

use std::time::Duration;

/// Limits for one request's accuracy-aware approximate processing.
#[derive(Clone, Copy, Debug)]
pub struct ProcessingConfig {
    /// Specified service-latency deadline `l_spe` (paper: 100 ms).
    pub deadline: Duration,
    /// Maximum number of ranked sets of original points to process
    /// (`i_max`); `None` means all sets (the recommender setting), while
    /// the search engine caps at the top 40% of sets because they contain
    /// >98% of the actual top-10 pages.
    pub imax: Option<usize>,
}

impl Default for ProcessingConfig {
    fn default() -> Self {
        ProcessingConfig {
            deadline: Duration::from_millis(100),
            imax: None,
        }
    }
}

impl ProcessingConfig {
    /// The paper's setting for the CF recommender: 100 ms deadline, no
    /// `i_max` cap ("process as many original data points as possible").
    pub fn recommender() -> Self {
        ProcessingConfig::default()
    }

    /// The paper's setting for the search engine: 100 ms deadline, process
    /// at most the top `fraction` (0.4) of ranked sets out of `total_sets`.
    pub fn search(total_sets: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        ProcessingConfig {
            deadline: Duration::from_millis(100),
            imax: Some(((total_sets as f64 * fraction).ceil() as usize).max(1)),
        }
    }

    /// Effective set cap given the synopsis size.
    pub fn effective_imax(&self, total_sets: usize) -> usize {
        self.imax.map_or(total_sets, |m| m.min(total_sets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ProcessingConfig::default();
        assert_eq!(c.deadline, Duration::from_millis(100));
        assert_eq!(c.imax, None);
        assert_eq!(c.effective_imax(42), 42);
    }

    #[test]
    fn search_caps_at_fraction() {
        let c = ProcessingConfig::search(100, 0.4);
        assert_eq!(c.imax, Some(40));
        assert_eq!(c.effective_imax(100), 40);
        assert_eq!(c.effective_imax(10), 10, "cap cannot exceed total");
    }

    #[test]
    fn search_fraction_rounds_up_and_floors_at_one() {
        assert_eq!(ProcessingConfig::search(3, 0.4).imax, Some(2));
        assert_eq!(ProcessingConfig::search(1, 0.01).imax, Some(1));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        ProcessingConfig::search(10, 1.5);
    }
}

//! # at-core
//!
//! The online accuracy-aware approximate processing engine of the
//! AccuracyTrader reproduction (Han et al., ICPP 2016) — Algorithm 1 and
//! the component/service plumbing around it.
//!
//! * [`ApproximateService`] — the three service-specific hooks (process the
//!   synopsis, improve with one ranked set, exact baseline).
//! * [`Algorithm1`] — the engine: estimate correlations, rank aggregated
//!   points, improve the initial result best-sets-first under a deadline
//!   (`run_deadline`) or a deterministic set budget (`run_budgeted`).
//! * [`Component`] / [`FanOutService`] — one subset + synopsis per parallel
//!   component, rayon fan-out across components.
//!
//! Service adapters live in `at-recommender` and `at-search`.

pub mod component;
pub mod config;
pub mod correlation;
pub mod outcome;
pub mod processor;
pub mod service;

pub use component::Component;
pub use config::ProcessingConfig;
pub use correlation::{rank, sections, Correlation};
pub use outcome::Outcome;
pub use processor::{Algorithm1, ApproximateService, Ctx};
pub use service::{partition_rows, FanOutService};

//! # at-core
//!
//! The online accuracy-aware approximate processing engine of the
//! AccuracyTrader reproduction (Han et al., ICPP 2016) — Algorithm 1 and
//! the component/service plumbing around it.
//!
//! * [`ExecutionPolicy`] — first-class request-execution policy: `Exact`,
//!   `SynopsisOnly`, `Budgeted`, or `Deadline` (the paper's `l_spe` /
//!   `i_max` knobs as an API object).
//! * [`ApproximateService`] — the three service-specific hooks (process the
//!   synopsis, improve with one ranked set, exact baseline);
//!   [`ComposableService`] adds the response-composition hook.
//! * [`Algorithm1`] — the engine: estimate correlations, rank aggregated
//!   points, improve the initial result best-sets-first under any policy
//!   via [`Algorithm1::execute`].
//! * [`Component`] / [`FanOutService`] — one subset + synopsis per parallel
//!   component; [`FanOutService::serve`] is the end-to-end request
//!   lifecycle (rayon fan-out → compose → [`ServiceResponse`] telemetry),
//!   [`FanOutService::serve_batch`] the batched equivalent (one fan-out and
//!   one synopsis pass per component for a whole request stream), and
//!   [`FanOutService::serve_with`] the heterogeneous per-component-policy
//!   variant.
//! * [`OutputPool`] — typed recycling of per-component output buffers, so
//!   a warm service serves batches without steady-state allocation.
//! * [`clock`] — the serving stack's single clock gateway: every wall-clock
//!   read goes through it, making the clock-free-policy contract both
//!   statically lintable (`at-analysis`'s `clock-discipline` rule) and
//!   dynamically observable ([`clock::reads`]).
//!
//! * [`fault`] / [`CircuitBreaker`] / [`containment`] — the failure
//!   plane: deterministic seeded fault injection ([`FaultInjector`],
//!   [`FaultyService`]), per-component circuit breaking, and the single
//!   unwind-containment boundary that turns a panicking component into
//!   one failed fan-out leg ([`ServiceResponse::components_failed`])
//!   instead of a dead batch.
//!
//! Service adapters live in `at-recommender` and `at-search`. The hot-path
//! invariants (no steady-state allocation, clock discipline, panic freedom,
//! lock hygiene, unwind containment) are machine-checked by the
//! `at-analysis` lint pass — see `ANALYSIS.md` at the repository root.

pub mod breaker;
pub mod clock;
pub mod component;
pub mod containment;
pub mod correlation;
pub mod fault;
pub mod outcome;
pub mod policy;
pub mod pool;
pub mod processor;
pub mod route;
pub mod service;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use component::Component;
pub use correlation::{cmp_ranked, rank, rank_top, sections, Correlation, RankedPrefix};
pub use fault::{FaultInjector, FaultKind, FaultRule, FaultSite, FaultyService, InjectedFault};
pub use outcome::Outcome;
pub use policy::{DegradationLadder, ExecutionPolicy};
pub use pool::{batch_tile_span, prepare_outputs, OutputPool};
pub use processor::{Algorithm1, ApproximateService, ComposableService, Ctx};
pub use route::{fnv1a, Fnv1a, RouteKey};
pub use service::{
    partition_rows, ComponentTelemetry, FanOutService, ServiceError, ServiceResponse,
};

//! Deterministic, schedule-driven fault injection for the serving plane.
//!
//! Robustness claims held by convention rot; robustness claims held by a
//! **seeded, replayable fault harness** stay true. This module is that
//! harness: a [`FaultInjector`] decides — purely from a seed, a schedule,
//! and per-site call ordinals — when a component's stage 1, stage 2, or
//! compose hook fails with an error, panics, stalls for a configured
//! latency, or returns corrupted (NaN) synopsis scores. A
//! [`FaultyService`] threads those decisions through the *production*
//! hook surface ([`ApproximateService`] / [`ComposableService`]), so
//! chaos tests exercise the real `FanOutService` fan-out, pooling,
//! collapse, and containment paths rather than mocks of them.
//!
//! # Determinism
//!
//! Every injection decision is a pure function of `(seed, site,
//! ordinal)`, where the ordinal counts that site's calls on *this*
//! injector. Give each component its own injector (sharing one across
//! rayon-parallel components would interleave ordinals racily) and a
//! schedule replays bit-identically: same seed, same faults, same
//! victims. Probabilistic rules hash the ordinal through the vendored
//! xorshift generator ([`rand::Xoshiro256PlusPlus`]) instead of drawing
//! from a stateful stream, so decision `n` never depends on how many
//! decisions preceded it.
//!
//! The hot path allocates nothing: schedules are sorted at construction
//! and consulted by binary search; ordinals are relaxed atomics; the
//! per-decision hash is a few shifts and xors on the stack.
//!
//! # Fault channels
//!
//! The service hooks return values, not `Result`s — by design, the
//! paper's serving plane has no per-request error channel. Both
//! [`FaultKind::Error`] and [`FaultKind::Panic`] therefore travel as
//! unwinds and are caught at the fan-out containment boundary
//! ([`crate::containment`]), where an erroring component and a crashing
//! one are the same event: one failed leg. The two kinds stay
//! distinguishable by payload (`Error` carries a typed [`InjectedFault`];
//! `Panic` a plain message), which is exactly what a debugger or panic
//! hook sees from a real component failure of either class.
//! [`FaultKind::Stall`] models a slow — not failed — component;
//! [`FaultKind::CorruptScores`] models a component whose synopsis went
//! bad, returning `NaN` for every stage-1 correlation score.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::{Rng, SeedableRng, Xoshiro256PlusPlus};

use crate::correlation::Correlation;
use crate::processor::{ApproximateService, ComposableService, Ctx};

/// Where in a component's request lifecycle a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// The stage-1 synopsis pass (`process_synopsis*` / `process_exact`),
    /// inside the fan-out containment boundary. Ordinals count requests:
    /// a batch pass ticks one ordinal per request in it.
    Stage1,
    /// One stage-2 `improve` call (per candidate set), also contained.
    Stage2,
    /// The composing component's `compose` call — which runs on the
    /// *caller's* thread, **outside** the containment boundary, so a
    /// compose fault escalates to whoever drives the service (this is
    /// how the dispatcher-supervision tests kill a dispatcher).
    Compose,
}

/// What happens when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The component fails the request: an unwind carrying a typed
    /// [`InjectedFault`] payload (see the module docs on why errors
    /// travel as unwinds).
    Error,
    /// The component crashes: a plain `panic!`.
    Panic,
    /// The component stalls for the given latency, then serves normally.
    Stall(Duration),
    /// Stage 1 completes but every correlation score it produced is
    /// overwritten with `NaN` (a corrupted synopsis). Meaningful at
    /// [`FaultSite::Stage1`] only; a no-op elsewhere.
    CorruptScores,
}

/// The typed panic payload carried by [`FaultKind::Error`] unwinds.
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    /// The site whose hook reported the error.
    pub site: FaultSite,
}

/// One line of a fault schedule: fire `kind` at `site` on the listed
/// call ordinals and/or with a per-call probability.
#[derive(Clone, Debug)]
pub struct FaultRule {
    site: FaultSite,
    kind: FaultKind,
    /// Sorted, deduplicated call ordinals (0-based) that always fire.
    at: Vec<u64>,
    /// Additional per-call probability in `[0, 1]`.
    probability: f64,
}

impl FaultRule {
    /// Fire `kind` exactly at the given `site` call ordinals (0-based).
    pub fn at_calls(site: FaultSite, kind: FaultKind, mut at: Vec<u64>) -> Self {
        at.sort_unstable();
        at.dedup();
        FaultRule {
            site,
            kind,
            at,
            probability: 0.0,
        }
    }

    /// Fire `kind` at each `site` call independently with `probability`.
    ///
    /// # Panics
    /// Panics when `probability` is outside `[0, 1]`.
    pub fn with_probability(site: FaultSite, kind: FaultKind, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "fault probability must be in [0, 1]"
        );
        FaultRule {
            site,
            kind,
            at: Vec::new(),
            probability,
        }
    }
}

/// The seeded, schedule-driven injector; see the module docs. One
/// injector belongs to one component — construct via [`new`](Self::new)
/// and [`with_rule`](Self::with_rule), share with the test through an
/// [`Arc`], and hand it to a [`FaultyService`].
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    rules: Vec<FaultRule>,
    stage1_calls: AtomicU64,
    stage2_calls: AtomicU64,
    compose_calls: AtomicU64,
    injected_errors: AtomicU64,
    injected_panics: AtomicU64,
    injected_stalls: AtomicU64,
    injected_corruptions: AtomicU64,
}

impl FaultInjector {
    /// An injector with no rules: fully transparent until
    /// [`with_rule`](Self::with_rule) adds a schedule.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            rules: Vec::new(),
            stage1_calls: AtomicU64::new(0),
            stage2_calls: AtomicU64::new(0),
            compose_calls: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            injected_corruptions: AtomicU64::new(0),
        }
    }

    /// Add one schedule line (builder style). Rules are consulted in
    /// insertion order; the first match fires.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True when the injector has no rules and can never fire.
    pub fn is_transparent(&self) -> bool {
        self.rules.is_empty()
    }

    fn ordinals(&self, site: FaultSite) -> &AtomicU64 {
        match site {
            FaultSite::Stage1 => &self.stage1_calls,
            FaultSite::Stage2 => &self.stage2_calls,
            FaultSite::Compose => &self.compose_calls,
        }
    }

    /// Calls observed at `site` so far (telemetry).
    pub fn calls(&self, site: FaultSite) -> u64 {
        // lint: allow(atomic-discipline) reason=telemetry read of a monotone ordinal; staleness only undercounts a progress report
        self.ordinals(site).load(Ordering::Relaxed)
    }

    /// Error faults fired so far.
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::Relaxed)
    }

    /// Panic faults fired so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Stall faults fired so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::Relaxed)
    }

    /// Score corruptions fired so far.
    pub fn injected_corruptions(&self) -> u64 {
        self.injected_corruptions.load(Ordering::Relaxed)
    }

    /// Faults of every kind fired so far.
    pub fn injected_total(&self) -> u64 {
        self.injected_errors()
            + self.injected_panics()
            + self.injected_stalls()
            + self.injected_corruptions()
    }

    /// Claim the next `n` ordinals at `site`, returning the first.
    fn reserve(&self, site: FaultSite, n: u64) -> u64 {
        // lint: allow(atomic-discipline) reason=ordinal claims only need atomicity of the RMW itself; the schedule is a pure function of (seed, ordinal), no cross-field publication
        self.ordinals(site).fetch_add(n, Ordering::Relaxed)
    }

    /// The fault planned for `(site, ordinal)`, if any — a pure function
    /// of the injector's seed and schedule.
    fn planned(&self, site: FaultSite, ordinal: u64) -> Option<FaultKind> {
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            if rule.at.binary_search(&ordinal).is_ok() {
                return Some(rule.kind);
            }
            if rule.probability > 0.0 && draw(self.seed, site, ordinal) < rule.probability {
                return Some(rule.kind);
            }
        }
        None
    }

    /// Fire a planned fault: count it, then stall, unwind, or request
    /// score corruption (`true` return) from the caller.
    fn fire(&self, site: FaultSite, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Stall(latency) => {
                self.injected_stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(latency);
                false
            }
            FaultKind::CorruptScores => {
                self.injected_corruptions.fetch_add(1, Ordering::Relaxed);
                true
            }
            FaultKind::Error => {
                self.injected_errors.fetch_add(1, Ordering::Relaxed);
                // lint: allow(panic-freedom) reason=the injected error itself — unwinds are the error channel, see module docs
                std::panic::panic_any(InjectedFault { site })
            }
            FaultKind::Panic => {
                self.injected_panics.fetch_add(1, Ordering::Relaxed);
                // lint: allow(panic-freedom) reason=the injected crash itself, caught at the containment boundary or by the supervisor
                panic!("fault injection: deliberate component crash")
            }
        }
    }

    /// Tick one `site` ordinal and fire its planned fault, if any.
    /// Returns `true` when the caller must corrupt the scores it is
    /// about to produce.
    fn trip(&self, site: FaultSite) -> bool {
        let ordinal = self.reserve(site, 1);
        match self.planned(site, ordinal) {
            Some(kind) => self.fire(site, kind),
            None => false,
        }
    }
}

/// Uniform draw in `[0, 1)` for decision `(seed, site, ordinal)` —
/// stateless, so decisions are position-independent (see module docs).
fn draw(seed: u64, site: FaultSite, ordinal: u64) -> f64 {
    let salt: u64 = match site {
        FaultSite::Stage1 => 0xA076_1D64_78BD_642F,
        FaultSite::Stage2 => 0xE703_7ED1_A0B4_28DB,
        FaultSite::Compose => 0x8EBC_6AF0_9C88_C6E3,
    };
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(
        seed ^ salt ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    // 53 high bits → the unit interval, the standard f64 construction.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Overwrite every stage-1 score with `NaN` (a corrupted synopsis).
fn corrupt_scores(corr: &mut [Correlation]) {
    for c in corr {
        c.score = f64::NAN;
    }
}

/// An [`ApproximateService`] wrapper that injects its
/// [`FaultInjector`]'s schedule around the wrapped service's hooks —
/// the test/bench-facing way to make *production* serving paths fail on
/// demand. Transparent (bit-identical to the wrapped service) when the
/// injector has no rules.
///
/// Clones share the injector (the `Arc` is cloned, not the schedule), so
/// replicated deployments built from one faulty service draw fault
/// events from a single global call sequence.
#[derive(Clone)]
pub struct FaultyService<S> {
    inner: S,
    injector: Arc<FaultInjector>,
}

impl<S> FaultyService<S> {
    /// Wrap `inner`, injecting per `injector`'s schedule.
    pub fn new(inner: S, injector: Arc<FaultInjector>) -> Self {
        FaultyService { inner, injector }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// This component's injector (telemetry: calls seen, faults fired).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl<S: ApproximateService> ApproximateService for FaultyService<S> {
    type Request = S::Request;
    type Output = S::Output;

    fn process_synopsis(
        &self,
        ctx: Ctx<'_>,
        req: &Self::Request,
        corr: &mut Vec<Correlation>,
    ) -> Self::Output {
        let corrupt = self.injector.trip(FaultSite::Stage1);
        let out = self.inner.process_synopsis(ctx, req, corr);
        if corrupt {
            corrupt_scores(corr);
        }
        out
    }

    fn process_synopsis_into(
        &self,
        ctx: Ctx<'_>,
        req: &Self::Request,
        corr: &mut Vec<Correlation>,
        out: &mut Self::Output,
    ) {
        let corrupt = self.injector.trip(FaultSite::Stage1);
        self.inner.process_synopsis_into(ctx, req, corr, out);
        if corrupt {
            corrupt_scores(corr);
        }
    }

    /// The batch pass reserves one stage-1 ordinal per request up front,
    /// fires every planned `Error`/`Panic`/`Stall` *before* delegating
    /// (a leg-fatal fault planned for any request of a batch fails the
    /// component's whole batch leg — matching the containment boundary's
    /// per-leg granularity), then runs the wrapped service's real batch
    /// pass and corrupts the flagged requests' scores afterwards.
    fn process_synopsis_batch(
        &self,
        ctx: Ctx<'_>,
        reqs: &[Self::Request],
        corrs: &mut [Vec<Correlation>],
        outs: &mut Vec<Self::Output>,
    ) {
        let base = self.injector.reserve(FaultSite::Stage1, reqs.len() as u64);
        for i in 0..reqs.len() as u64 {
            match self.injector.planned(FaultSite::Stage1, base + i) {
                Some(FaultKind::CorruptScores) | None => {}
                Some(kind) => {
                    self.injector.fire(FaultSite::Stage1, kind);
                }
            }
        }
        self.inner.process_synopsis_batch(ctx, reqs, corrs, outs);
        for (i, corr) in corrs.iter_mut().enumerate() {
            if self.injector.planned(FaultSite::Stage1, base + i as u64)
                == Some(FaultKind::CorruptScores)
            {
                self.injector
                    .fire(FaultSite::Stage1, FaultKind::CorruptScores);
                corrupt_scores(corr);
            }
        }
    }

    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &Self::Request,
        out: &mut Self::Output,
        node: at_rtree::NodeId,
        members: &[u64],
    ) {
        // CorruptScores is a stage-1 concept; at stage 2 the returned
        // corruption flag has nothing to corrupt and is dropped.
        let _ = self.injector.trip(FaultSite::Stage2);
        self.inner.improve(ctx, req, out, node, members);
    }

    fn process_exact(&self, ctx: Ctx<'_>, req: &Self::Request) -> Self::Output {
        // The exact path is the component's stage-1 ingress too.
        let _ = self.injector.trip(FaultSite::Stage1);
        self.inner.process_exact(ctx, req)
    }
}

impl<S: ComposableService> ComposableService for FaultyService<S> {
    type Response = S::Response;

    fn compose(&self, req: &Self::Request, parts: &[Self::Output]) -> Self::Response {
        let _ = self.injector.trip(FaultSite::Compose);
        self.inner.compose(req, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_ordinals_fire_exactly() {
        let inj = FaultInjector::new(7).with_rule(FaultRule::at_calls(
            FaultSite::Stage1,
            FaultKind::CorruptScores,
            vec![2, 5, 2],
        ));
        let fired: Vec<bool> = (0..8).map(|_| inj.trip(FaultSite::Stage1)).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false]
        );
        assert_eq!(inj.injected_corruptions(), 2);
        assert_eq!(inj.calls(FaultSite::Stage1), 8);
        assert_eq!(inj.calls(FaultSite::Stage2), 0);
    }

    #[test]
    fn probability_draws_are_deterministic_and_position_independent() {
        let a = FaultInjector::new(42).with_rule(FaultRule::with_probability(
            FaultSite::Stage2,
            FaultKind::CorruptScores,
            0.3,
        ));
        let b = FaultInjector::new(42).with_rule(FaultRule::with_probability(
            FaultSite::Stage2,
            FaultKind::CorruptScores,
            0.3,
        ));
        let plan_a: Vec<Option<FaultKind>> =
            (0..64).map(|n| a.planned(FaultSite::Stage2, n)).collect();
        let plan_b: Vec<Option<FaultKind>> =
            (0..64).map(|n| b.planned(FaultSite::Stage2, n)).collect();
        assert_eq!(plan_a, plan_b, "same seed ⇒ same schedule");
        let fired = plan_a.iter().filter(|p| p.is_some()).count();
        assert!(
            fired > 5 && fired < 35,
            "p=0.3 over 64 draws fired {fired} times — draw() looks broken"
        );
        // A different seed disagrees somewhere.
        let c = FaultInjector::new(43).with_rule(FaultRule::with_probability(
            FaultSite::Stage2,
            FaultKind::CorruptScores,
            0.3,
        ));
        let plan_c: Vec<Option<FaultKind>> =
            (0..64).map(|n| c.planned(FaultSite::Stage2, n)).collect();
        assert_ne!(plan_a, plan_c);
    }

    #[test]
    fn sites_draw_independently() {
        let inj = FaultInjector::new(9).with_rule(FaultRule::at_calls(
            FaultSite::Stage1,
            FaultKind::CorruptScores,
            vec![0],
        ));
        assert_eq!(
            inj.planned(FaultSite::Stage1, 0),
            Some(FaultKind::CorruptScores)
        );
        assert_eq!(inj.planned(FaultSite::Stage2, 0), None);
        assert_eq!(inj.planned(FaultSite::Compose, 0), None);
    }

    #[test]
    fn error_fault_unwinds_with_a_typed_payload() {
        let inj = Arc::new(FaultInjector::new(1).with_rule(FaultRule::at_calls(
            FaultSite::Compose,
            FaultKind::Error,
            vec![0],
        )));
        let victim = Arc::clone(&inj);
        let payload = std::thread::spawn(move || victim.trip(FaultSite::Compose))
            .join()
            .expect_err("rule must fire"); // lint: allow(panic-freedom) reason=asserting on the deliberate unwind in a test
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("typed payload"); // lint: allow(panic-freedom) reason=asserting on the deliberate unwind in a test
        assert_eq!(fault.site, FaultSite::Compose);
        assert_eq!(inj.injected_errors(), 1);
    }

    #[test]
    fn no_rules_means_transparent() {
        let inj = FaultInjector::new(123);
        assert!(inj.is_transparent());
        for _ in 0..100 {
            assert!(!inj.trip(FaultSite::Stage1));
        }
        assert_eq!(inj.injected_total(), 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_is_a_construction_bug() {
        FaultRule::with_probability(FaultSite::Stage1, FaultKind::Panic, 1.5);
    }
}

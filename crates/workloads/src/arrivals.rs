//! Request arrival processes.
//!
//! Table 1/2 use fixed-rate Poisson arrivals (20–100 req/s); Figures 5–8
//! replay the diurnal pattern via a non-homogeneous Poisson process
//! (thinning). All generators return sorted arrival offsets in seconds;
//! [`arrival_delays`] converts a trace into submission delays an accept
//! loop can replay against a live server.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::exponential;

/// Homogeneous Poisson arrivals at `rate` req/s over `[0, duration)` s.
pub fn poisson_arrivals(rate: f64, duration: f64, seed: u64) -> Vec<f64> {
    assert!(rate >= 0.0 && duration >= 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    if rate == 0.0 {
        return out;
    }
    let mut t = 0.0;
    loop {
        t += exponential(&mut rng, rate);
        if t >= duration {
            break;
        }
        out.push(t);
    }
    out
}

/// Non-homogeneous Poisson arrivals with instantaneous rate `rate_fn(t)`
/// (≤ `max_rate`) over `[0, duration)`, by Lewis–Shedler thinning.
pub fn variable_rate_arrivals(
    rate_fn: impl Fn(f64) -> f64,
    max_rate: f64,
    duration: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(max_rate > 0.0 && duration >= 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += exponential(&mut rng, max_rate);
        if t >= duration {
            break;
        }
        let r = rate_fn(t);
        debug_assert!(r <= max_rate * (1.0 + 1e-9), "rate_fn exceeds max_rate");
        if rng.random::<f64>() < r / max_rate {
            out.push(t);
        }
    }
    out
}

/// Convert sorted arrival offsets (seconds) into per-request submission
/// delays from the replay's start, compressed by `speedup` (2.0 replays a
/// trace twice as fast) — the feed for an async server's accept loop:
/// sleep until each delay elapses, then submit the next request.
///
/// # Panics
/// Panics when `speedup` is not strictly positive.
pub fn arrival_delays(arrivals: &[f64], speedup: f64) -> Vec<Duration> {
    assert!(
        speedup > 0.0 && speedup.is_finite(),
        "speedup must be positive and finite"
    );
    arrivals
        .iter()
        .map(|&t| Duration::from_secs_f64((t / speedup).max(0.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_delays_compress_and_keep_order() {
        let delays = arrival_delays(&[0.5, 1.0, 3.0], 2.0);
        assert_eq!(
            delays,
            vec![
                Duration::from_millis(250),
                Duration::from_millis(500),
                Duration::from_millis(1500),
            ]
        );
        for w in delays.windows(2) {
            assert!(w[0] <= w[1], "delays must stay sorted");
        }
        assert!(arrival_delays(&[], 4.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "speedup")]
    fn arrival_delays_reject_zero_speedup() {
        arrival_delays(&[1.0], 0.0);
    }

    #[test]
    fn poisson_count_matches_rate() {
        let arr = poisson_arrivals(50.0, 100.0, 7);
        let expected = 50.0 * 100.0;
        assert!(
            (arr.len() as f64 - expected).abs() < expected * 0.1,
            "got {} arrivals, expected ~{expected}",
            arr.len()
        );
    }

    #[test]
    fn poisson_sorted_and_in_range() {
        let arr = poisson_arrivals(20.0, 10.0, 3);
        for w in arr.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(arr.iter().all(|&t| (0.0..10.0).contains(&t)));
    }

    #[test]
    fn poisson_zero_rate_empty() {
        assert!(poisson_arrivals(0.0, 10.0, 1).is_empty());
    }

    #[test]
    fn poisson_deterministic() {
        assert_eq!(
            poisson_arrivals(10.0, 5.0, 9),
            poisson_arrivals(10.0, 5.0, 9)
        );
        assert_ne!(
            poisson_arrivals(10.0, 5.0, 9),
            poisson_arrivals(10.0, 5.0, 10)
        );
    }

    #[test]
    fn variable_rate_tracks_rate_fn() {
        // Rate 10 in the first half, 90 in the second.
        let arr = variable_rate_arrivals(|t| if t < 50.0 { 10.0 } else { 90.0 }, 90.0, 100.0, 5);
        let first = arr.iter().filter(|&&t| t < 50.0).count();
        let second = arr.len() - first;
        assert!(
            second > first * 5,
            "second half should dominate: {first} vs {second}"
        );
    }

    #[test]
    fn variable_rate_constant_matches_poisson_intensity() {
        let arr = variable_rate_arrivals(|_| 30.0, 30.0, 200.0, 11);
        let expected = 30.0 * 200.0;
        assert!(
            (arr.len() as f64 - expected).abs() < expected * 0.1,
            "got {}",
            arr.len()
        );
    }
}

//! # at-workloads
//!
//! Synthetic workload generators for the AccuracyTrader reproduction (Han
//! et al., ICPP 2016). Each generator substitutes a dataset or trace the
//! paper used but that cannot be shipped (substitution rationale in
//! DESIGN.md §3):
//!
//! * [`ratings`] — MovieLens-like rating matrices (latent taste clusters,
//!   Zipf item popularity).
//! * [`corpus`] — Sogou-like web-page corpus (topic clusters, Zipf terms).
//! * [`queries`] — Sogou-like search queries over the corpus topics.
//! * [`diurnal`] — the 24-hour arrival-rate curve of the paper's Figure 7(a),
//!   with the characteristic increasing/steady/decreasing hours 9/10/24.
//! * [`arrivals`] — homogeneous and non-homogeneous Poisson processes.
//! * [`mapreduce`] — SWIM-like co-located MapReduce interference traces.
//! * [`zipf`] — the shared distribution toolbox.
//!
//! Everything is deterministic given a seed.

pub mod arrivals;
pub mod bursts;
pub mod corpus;
pub mod diurnal;
pub mod mapreduce;
pub mod queries;
pub mod ratings;
pub mod zipf;

pub use arrivals::{arrival_delays, poisson_arrivals, variable_rate_arrivals};
pub use bursts::{flash_crowd_arrivals, BurstConfig, BurstTrace};
pub use corpus::{Corpus, CorpusConfig, Document};
pub use diurnal::DiurnalPattern;
pub use mapreduce::{InterferenceTrace, Job, JobKind, MapReduceConfig};
pub use queries::{Query, QueryGenerator};
pub use ratings::{Rating, RatingsConfig, RatingsDataset};
pub use zipf::{exponential, normal, Zipf};

//! Zipf-distributed sampling and simple distribution helpers.
//!
//! Web-page term frequencies, item popularity, and query-term choice are all
//! heavily skewed; a deterministic Zipf sampler (inverse-CDF over a
//! precomputed table) backs every generator in this crate.
//! Normal deviates (Box–Muller) are included here as well so the workspace
//! needs no extra distribution crate.

use rand::{Rng, RngExt};

/// Zipf(α) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities, cdf[i] = P(rank <= i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `alpha` (≥ 0; 0 is
    /// uniform, ~1 is classic web skew).
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf: n must be >= 1");
        assert!(alpha >= 0.0, "Zipf: alpha must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (n ≥ 1 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// One standard-normal deviate via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Exponential deviate with rate `lambda` (mean `1/lambda`) — Poisson
/// inter-arrival times.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential: lambda must be > 0");
    let u: f64 = rng.random::<f64>().max(1e-12);
    -u.ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(10) && z.pmf(10) > z.pmf(500));
        // Rank 0 should dominate: p(0)/p(99) = 100 under alpha=1.
        assert!((z.pmf(0) / z.pmf(99) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_follow_skew() {
        let z = Zipf::new(50, 1.2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 2000, "rank 0 should be common: {}", counts[0]);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_sample_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SmallRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, 4.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "n must be")]
    fn zipf_zero_n_panics() {
        Zipf::new(0, 1.0);
    }
}

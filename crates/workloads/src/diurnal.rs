//! 24-hour diurnal arrival-rate pattern (Sogou query-log substitute).
//!
//! The paper replays a 24-hour Sogou user-query log: hours 2–8 are light
//! (where request reissue wins), hour 9 ramps up, hour 10 is steady, the
//! evening peaks, and hour 24 declines (Figures 5(a)/(e)/(i) and 7(a)).
//! [`DiurnalPattern::sogou_like`] encodes that shape; per-minute rates are
//! interpolated so within-hour trends (increasing/steady/decreasing) match
//! the paper's three characteristic hours.

/// Normalized 24-hour load shape (hour 1 at index 0). Peak = 1.0 at hour 22.
const SHAPE: [f64; 24] = [
    0.30, 0.18, 0.12, 0.08, 0.07, 0.08, 0.12, 0.25, // hours 1-8: night/light
    0.45, 0.60, 0.70, 0.72, 0.68, 0.70, 0.72, 0.74, // hours 9-16: ramp + day
    0.70, 0.65, 0.68, 0.80, 0.95, 1.00, 0.75, 0.45, // hours 17-24: evening peak + decline
];

/// Average request arrival rate per hour of day.
#[derive(Clone, Debug, PartialEq)]
pub struct DiurnalPattern {
    hourly: Vec<f64>,
}

impl DiurnalPattern {
    /// The Sogou-like shape scaled so the busiest hour averages
    /// `peak_rps` requests/second.
    pub fn sogou_like(peak_rps: f64) -> Self {
        assert!(peak_rps > 0.0, "peak_rps must be > 0");
        DiurnalPattern {
            hourly: SHAPE.iter().map(|s| s * peak_rps).collect(),
        }
    }

    /// Custom hourly rates (must be 24 non-negative values, hour 1 first).
    pub fn from_hourly(hourly: Vec<f64>) -> Self {
        assert_eq!(hourly.len(), 24, "need exactly 24 hourly rates");
        assert!(hourly.iter().all(|&r| r >= 0.0), "rates must be >= 0");
        DiurnalPattern { hourly }
    }

    /// Average rate of `hour` (1-based, 1..=24), requests/second.
    pub fn hourly_rate(&self, hour: usize) -> f64 {
        assert!((1..=24).contains(&hour), "hour must be 1..=24");
        self.hourly[hour - 1]
    }

    /// Interpolated rate at `minute` (0..60) within `hour`: the hour's
    /// average sits at its midpoint and the rate moves linearly toward the
    /// neighbouring hours' averages (wrapping hour 24 → hour 1).
    pub fn minute_rate(&self, hour: usize, minute: usize) -> f64 {
        assert!((1..=24).contains(&hour), "hour must be 1..=24");
        assert!(minute < 60, "minute must be 0..60");
        let cur = self.hourly[hour - 1];
        let frac = (minute as f64 + 0.5) / 60.0;
        if frac < 0.5 {
            let prev = self.hourly[(hour + 22) % 24];
            let mid_prev = 0.5 * (prev + cur);
            mid_prev + (cur - mid_prev) * (frac * 2.0)
        } else {
            let next = self.hourly[hour % 24];
            let mid_next = 0.5 * (cur + next);
            cur + (mid_next - cur) * ((frac - 0.5) * 2.0)
        }
    }

    /// All 24 hourly rates (hour 1 first).
    pub fn hourly(&self) -> &[f64] {
        &self.hourly
    }

    /// The paper's three characteristic hours: (increasing, steady,
    /// decreasing) = (9, 10, 24).
    pub fn characteristic_hours() -> (usize, usize, usize) {
        (9, 10, 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_scaling() {
        let p = DiurnalPattern::sogou_like(100.0);
        let max = p.hourly().iter().cloned().fold(0.0, f64::max);
        assert_eq!(max, 100.0);
        assert_eq!(p.hourly_rate(22), 100.0);
    }

    #[test]
    fn light_hours_are_light() {
        // Paper: reissue wins between hour 2 and hour 8 because load is low.
        let p = DiurnalPattern::sogou_like(100.0);
        for h in 2..=8 {
            assert!(
                p.hourly_rate(h) < 0.5 * p.hourly_rate(12),
                "hour {h} not light"
            );
        }
    }

    #[test]
    fn hour9_increases_within_hour() {
        let p = DiurnalPattern::sogou_like(100.0);
        let start = p.minute_rate(9, 0);
        let end = p.minute_rate(9, 59);
        assert!(end > start, "hour 9 must ramp: {start} -> {end}");
    }

    #[test]
    fn hour10_is_steady() {
        let p = DiurnalPattern::sogou_like(100.0);
        let start = p.minute_rate(10, 0);
        let end = p.minute_rate(10, 59);
        let avg = p.hourly_rate(10);
        assert!((end - start).abs() < 0.3 * avg, "hour 10 should be steady");
    }

    #[test]
    fn hour24_decreases_within_hour() {
        let p = DiurnalPattern::sogou_like(100.0);
        let start = p.minute_rate(24, 0);
        let end = p.minute_rate(24, 59);
        assert!(end < start, "hour 24 must decline: {start} -> {end}");
    }

    #[test]
    fn minute_rates_are_continuous_across_hours() {
        let p = DiurnalPattern::sogou_like(50.0);
        for h in 1..24 {
            let end = p.minute_rate(h, 59);
            let next = p.minute_rate(h + 1, 0);
            let step = (end - next).abs();
            assert!(
                step < 0.12 * p.hourly().iter().cloned().fold(0.0, f64::max),
                "jump of {step} between hour {h} and {}",
                h + 1
            );
        }
    }

    #[test]
    fn from_hourly_validates() {
        let p = DiurnalPattern::from_hourly(vec![1.0; 24]);
        assert_eq!(p.minute_rate(5, 30), 1.0);
    }

    #[test]
    #[should_panic(expected = "24 hourly")]
    fn wrong_length_panics() {
        DiurnalPattern::from_hourly(vec![1.0; 23]);
    }
}

//! Search-query generation (Sogou query-log substitute).
//!
//! Queries pick a topic (Zipf-skewed — some topics are hot) and draw 1–4
//! terms from that topic's characteristic head, optionally mixing in a
//! background term, mimicking how real query terms concentrate on topical
//! vocabulary.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::corpus::Corpus;
use crate::zipf::Zipf;

/// A search query: the terms to match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Term ids, deduplicated and sorted.
    pub terms: Vec<u32>,
    /// Ground-truth dominant topic (for analyses only).
    pub topic: u32,
}

/// Deterministic query generator bound to a corpus.
#[derive(Clone, Debug)]
pub struct QueryGenerator {
    topic_pop: Zipf,
    head_size: usize,
    rng: SmallRng,
}

impl QueryGenerator {
    /// Create a generator over the corpus's topics.
    pub fn new(corpus: &Corpus, seed: u64) -> Self {
        QueryGenerator {
            topic_pop: Zipf::new(corpus.n_topics(), 0.9),
            head_size: 12,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draw the next query.
    pub fn next_query(&mut self, corpus: &Corpus) -> Query {
        let topic = self.topic_pop.sample(&mut self.rng) as u32;
        let head = corpus.topic_head_terms(topic, self.head_size);
        let n_terms = self.rng.random_range(1..=4usize);
        let mut terms = std::collections::BTreeSet::new();
        for _ in 0..n_terms {
            let idx = self.rng.random_range(0..head.len());
            terms.insert(head[idx]);
        }
        Query {
            terms: terms.into_iter().collect(),
            topic,
        }
    }

    /// Draw a batch.
    pub fn batch(&mut self, corpus: &Corpus, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.next_query(corpus)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn queries_have_one_to_four_sorted_terms() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let mut generator = QueryGenerator::new(&corpus, 3);
        for q in generator.batch(&corpus, 500) {
            assert!((1..=4).contains(&q.terms.len()));
            for w in q.terms.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!((q.topic as usize) < corpus.n_topics());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let a = QueryGenerator::new(&corpus, 5).batch(&corpus, 50);
        let b = QueryGenerator::new(&corpus, 5).batch(&corpus, 50);
        assert_eq!(a, b);
        let c = QueryGenerator::new(&corpus, 6).batch(&corpus, 50);
        assert_ne!(a, c);
    }

    #[test]
    fn hot_topics_queried_more() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let mut generator = QueryGenerator::new(&corpus, 11);
        let mut counts = vec![0usize; corpus.n_topics()];
        for q in generator.batch(&corpus, 4000) {
            counts[q.topic as usize] += 1;
        }
        assert!(counts[0] > counts[corpus.n_topics() - 1]);
    }

    #[test]
    fn query_terms_match_topic_pages() {
        // A query's terms should appear in at least one page of its topic.
        let corpus = Corpus::generate(CorpusConfig::small());
        let mut generator = QueryGenerator::new(&corpus, 21);
        for q in generator.batch(&corpus, 50) {
            let hit = corpus.docs.iter().any(|d| {
                d.topic == q.topic
                    && q.terms
                        .iter()
                        .any(|t| d.terms.iter().any(|&(dt, _)| dt == *t))
            });
            assert!(hit, "query {q:?} matches no page of its topic");
        }
    }
}

//! Synthetic web-page corpus (Sogou-collection substitute).
//!
//! Substitution note (DESIGN.md §3): the Sogou crawl is unavailable, so we
//! generate a topic-model corpus with the properties the search-engine
//! experiments need: Zipf-skewed global term frequencies, **topical
//! clustering** of pages (what the R-tree groups and what makes merged
//! aggregated pages meaningful), and realistic document-length variation.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// Parameters of the synthetic corpus.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Number of web pages per subset (paper: 0.5M; default laptop-scale).
    pub n_docs: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of topics pages cluster into.
    pub n_topics: usize,
    /// Terms drawn per document (before deduplication into counts).
    pub doc_len_mean: usize,
    /// Fraction of each document drawn from its topic (vs. background).
    pub topic_mix: f64,
    /// Zipf exponent of within-topic and background term skews.
    pub term_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_docs: 5000,
            vocab: 4000,
            n_topics: 25,
            doc_len_mean: 120,
            topic_mix: 0.75,
            term_skew: 1.0,
            seed: 0x50605,
        }
    }
}

impl CorpusConfig {
    /// A small config for tests.
    pub fn small() -> Self {
        CorpusConfig {
            n_docs: 400,
            vocab: 600,
            n_topics: 8,
            doc_len_mean: 60,
            ..CorpusConfig::default()
        }
    }
}

/// One web page: its topic (ground truth) and sparse term counts.
#[derive(Clone, Debug)]
pub struct Document {
    /// Ground-truth topic (for tests; real pages don't carry labels).
    pub topic: u32,
    /// `(term, count)` pairs, term-sorted.
    pub terms: Vec<(u32, f64)>,
}

/// A generated corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// Generation parameters.
    pub config: CorpusConfig,
    /// All documents; ids are positions.
    pub docs: Vec<Document>,
    /// Per-topic term windows: topic t owns a contiguous slice of the
    /// vocabulary plus the shared background head.
    topic_base: Vec<u32>,
}

impl Corpus {
    /// Generate deterministically from `config`.
    pub fn generate(config: CorpusConfig) -> Self {
        assert!(config.n_docs > 0 && config.vocab > 0 && config.n_topics > 0);
        assert!(
            config.vocab >= config.n_topics * 20,
            "vocabulary too small for topic structure"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // Vocabulary layout: first 10% is shared background (stop-word-ish),
        // the rest is split evenly into per-topic windows.
        let background = (config.vocab / 10).max(1);
        let per_topic = (config.vocab - background) / config.n_topics;
        let topic_base: Vec<u32> = (0..config.n_topics)
            .map(|t| (background + t * per_topic) as u32)
            .collect();

        let bg_dist = Zipf::new(background, config.term_skew);
        let topic_dist = Zipf::new(per_topic, config.term_skew);

        let mut docs = Vec::with_capacity(config.n_docs);
        for _ in 0..config.n_docs {
            let topic = rng.random_range(0..config.n_topics) as u32;
            let len = (config.doc_len_mean / 2) + rng.random_range(0..config.doc_len_mean.max(1));
            let mut counts: std::collections::BTreeMap<u32, f64> =
                std::collections::BTreeMap::new();
            for _ in 0..len {
                let term = if rng.random::<f64>() < config.topic_mix {
                    topic_base[topic as usize] + topic_dist.sample(&mut rng) as u32
                } else {
                    bg_dist.sample(&mut rng) as u32
                };
                *counts.entry(term).or_insert(0.0) += 1.0;
            }
            docs.push(Document {
                topic,
                terms: counts.into_iter().collect(),
            });
        }
        Corpus {
            config,
            docs,
            topic_base,
        }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus has no pages (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The most characteristic terms of `topic` (its window head) — used by
    /// the query generator so queries actually match topical pages.
    pub fn topic_head_terms(&self, topic: u32, k: usize) -> Vec<u32> {
        let base = self.topic_base[topic as usize];
        (0..k as u32).map(|i| base + i).collect()
    }

    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.config.n_topics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small())
    }

    #[test]
    fn shape_and_determinism() {
        let a = corpus();
        assert_eq!(a.len(), 400);
        let b = corpus();
        assert_eq!(a.docs.len(), b.docs.len());
        assert_eq!(a.docs[7].terms, b.docs[7].terms);
    }

    #[test]
    fn terms_are_sorted_and_in_vocab() {
        let c = corpus();
        for d in &c.docs {
            assert!(!d.terms.is_empty());
            for w in d.terms.windows(2) {
                assert!(w[0].0 < w[1].0, "terms unsorted");
            }
            for &(t, count) in &d.terms {
                assert!((t as usize) < c.config.vocab);
                assert!(count >= 1.0);
            }
        }
    }

    #[test]
    fn same_topic_docs_share_more_terms() {
        let c = corpus();
        let mut same = (0usize, 0usize);
        let mut diff = (0usize, 0usize);
        let overlap = |a: &Document, b: &Document| {
            let sa: std::collections::HashSet<u32> = a.terms.iter().map(|t| t.0).collect();
            b.terms.iter().filter(|t| sa.contains(&t.0)).count()
        };
        for i in 0..80 {
            for j in (i + 1)..80 {
                let (a, b) = (&c.docs[i], &c.docs[j]);
                let o = overlap(a, b);
                if a.topic == b.topic {
                    same.0 += o;
                    same.1 += 1;
                } else {
                    diff.0 += o;
                    diff.1 += 1;
                }
            }
        }
        let same_mean = same.0 as f64 / same.1 as f64;
        let diff_mean = diff.0 as f64 / diff.1 as f64;
        assert!(
            same_mean > diff_mean * 1.5,
            "topic clustering weak: same {same_mean} vs diff {diff_mean}"
        );
    }

    #[test]
    fn topic_head_terms_appear_in_topic_docs() {
        let c = corpus();
        let heads = c.topic_head_terms(3, 5);
        assert_eq!(heads.len(), 5);
        // Head terms of topic 3 should appear in a good share of its docs.
        let topic_docs: Vec<&Document> = c.docs.iter().filter(|d| d.topic == 3).collect();
        assert!(!topic_docs.is_empty());
        let hits = topic_docs
            .iter()
            .filter(|d| d.terms.iter().any(|&(t, _)| t == heads[0]))
            .count();
        assert!(
            hits * 2 > topic_docs.len(),
            "head term in only {hits}/{} docs",
            topic_docs.len()
        );
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn tiny_vocab_panics() {
        Corpus::generate(CorpusConfig {
            vocab: 10,
            ..CorpusConfig::small()
        });
    }
}

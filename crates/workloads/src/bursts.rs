//! Flash-crowd (burst) arrival processes.
//!
//! The diurnal pattern captures slow load variation; real services also see
//! sudden flash crowds (breaking news, sales events) that stress tail-
//! latency techniques differently: the queue jump is instantaneous rather
//! than gradual. This generator superimposes Poisson bursts on a base rate.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::exponential;

/// Flash-crowd parameters.
#[derive(Clone, Copy, Debug)]
pub struct BurstConfig {
    /// Steady background rate (req/s).
    pub base_rate: f64,
    /// Burst arrival intensity (bursts per second, e.g. 1/120).
    pub burst_rate: f64,
    /// Mean burst duration (s).
    pub burst_duration_s: f64,
    /// Rate multiplier while a burst is active.
    pub amplification: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            base_rate: 20.0,
            burst_rate: 1.0 / 120.0,
            burst_duration_s: 10.0,
            amplification: 5.0,
            seed: 0xB0B5,
        }
    }
}

/// Burst windows plus the arrival times they shape.
#[derive(Clone, Debug)]
pub struct BurstTrace {
    /// `(start, end)` of each burst, sorted, non-overlapping.
    pub windows: Vec<(f64, f64)>,
    /// Request arrival times over the horizon.
    pub arrivals: Vec<f64>,
}

/// Generate a bursty arrival trace over `[0, duration)`.
pub fn flash_crowd_arrivals(cfg: BurstConfig, duration: f64) -> BurstTrace {
    assert!(cfg.base_rate > 0.0 && cfg.amplification >= 1.0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Burst windows: Poisson starts, exponential lengths, merged if they
    // overlap.
    let mut windows: Vec<(f64, f64)> = Vec::new();
    if cfg.burst_rate > 0.0 {
        let mut t = 0.0;
        loop {
            t += exponential(&mut rng, cfg.burst_rate);
            if t >= duration {
                break;
            }
            let end = (t + exponential(&mut rng, 1.0 / cfg.burst_duration_s)).min(duration);
            match windows.last_mut() {
                Some(last) if last.1 >= t => last.1 = last.1.max(end),
                _ => windows.push((t, end)),
            }
        }
    }

    // Thinning against the peak rate.
    let peak = cfg.base_rate * cfg.amplification;
    let in_burst = |t: f64| {
        let i = windows.partition_point(|w| w.0 <= t);
        i > 0 && t < windows[i - 1].1
    };
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    loop {
        t += exponential(&mut rng, peak);
        if t >= duration {
            break;
        }
        let rate = if in_burst(t) { peak } else { cfg.base_rate };
        if rng.random::<f64>() < rate / peak {
            arrivals.push(t);
        }
    }
    BurstTrace { windows, arrivals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> BurstTrace {
        flash_crowd_arrivals(BurstConfig::default(), 1200.0)
    }

    #[test]
    fn windows_sorted_and_disjoint() {
        let t = trace();
        for w in t.windows.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
        for &(s, e) in &t.windows {
            assert!(s < e && e <= 1200.0);
        }
        assert!(!t.windows.is_empty(), "20 min should contain bursts");
    }

    #[test]
    fn arrivals_sorted() {
        let t = trace();
        for w in t.arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn burst_windows_are_denser() {
        let t = trace();
        let burst_len: f64 = t.windows.iter().map(|&(s, e)| e - s).sum();
        let calm_len = 1200.0 - burst_len;
        assert!(burst_len > 1.0, "need measurable burst time");
        let in_burst = |x: f64| t.windows.iter().any(|&(s, e)| (s..e).contains(&x));
        let burst_count = t.arrivals.iter().filter(|&&a| in_burst(a)).count();
        let calm_count = t.arrivals.len() - burst_count;
        let burst_rate = burst_count as f64 / burst_len;
        let calm_rate = calm_count as f64 / calm_len;
        assert!(
            burst_rate > calm_rate * 3.0,
            "bursts must be much denser: {burst_rate:.1} vs {calm_rate:.1} req/s"
        );
    }

    #[test]
    fn no_bursts_reduces_to_poisson() {
        let t = flash_crowd_arrivals(
            BurstConfig {
                burst_rate: 0.0,
                ..BurstConfig::default()
            },
            600.0,
        );
        assert!(t.windows.is_empty());
        let expected = 20.0 * 600.0;
        assert!(
            (t.arrivals.len() as f64 - expected).abs() < expected * 0.1,
            "got {}",
            t.arrivals.len()
        );
    }

    #[test]
    fn deterministic() {
        let a = trace();
        let b = trace();
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        assert_eq!(a.windows, b.windows);
    }
}

//! Synthetic MovieLens-like rating data.
//!
//! Substitution note (DESIGN.md §3): the paper evaluates the recommender on
//! the MovieLens 10M dataset, which we cannot ship. This generator produces
//! a rating matrix with the properties CF and the synopsis pipeline exploit:
//! low-rank latent structure (users/items have latent vectors), **taste
//! clusters** (users sampled from a small set of taste prototypes, so
//! Pearson-similar users exist for every active user), Zipf-skewed item
//! popularity, and 1–5 star ratings with noise.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::{normal, Zipf};

/// Parameters of the synthetic rating matrix.
#[derive(Clone, Copy, Debug)]
pub struct RatingsConfig {
    /// Number of users (data points per paper subset: ~4000).
    pub n_users: usize,
    /// Number of items (paper subset: ~1000).
    pub n_items: usize,
    /// Latent dimensionality of the taste space.
    pub latent_dim: usize,
    /// Number of taste prototypes users cluster around.
    pub n_tastes: usize,
    /// Expected ratings per user (paper subset: ~0.27M/4000 ≈ 67).
    pub ratings_per_user: usize,
    /// Rating noise std-dev (stars).
    pub noise: f64,
    /// Zipf exponent of item popularity.
    pub popularity_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RatingsConfig {
    fn default() -> Self {
        RatingsConfig {
            n_users: 4000,
            n_items: 1000,
            latent_dim: 4,
            n_tastes: 12,
            ratings_per_user: 67,
            noise: 0.4,
            popularity_skew: 0.8,
            seed: 0xACC0,
        }
    }
}

impl RatingsConfig {
    /// A laptop-scale config (hundreds of users) for tests and examples.
    pub fn small() -> Self {
        RatingsConfig {
            n_users: 400,
            n_items: 120,
            ratings_per_user: 40,
            ..RatingsConfig::default()
        }
    }
}

/// One generated rating triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rating {
    /// User id in `0..n_users`.
    pub user: u32,
    /// Item id in `0..n_items`.
    pub item: u32,
    /// Stars in `[1, 5]`.
    pub stars: f64,
}

/// The generated dataset: ratings plus the ground-truth latent model (used
/// by tests to verify that similar users really rate similarly).
#[derive(Clone, Debug)]
pub struct RatingsDataset {
    /// Generation parameters.
    pub config: RatingsConfig,
    /// All ratings, grouped by user, items sorted within a user.
    pub ratings: Vec<Rating>,
    /// Each user's taste prototype index (ground truth for tests).
    pub user_taste: Vec<u32>,
}

impl RatingsDataset {
    /// Generate deterministically from `config`.
    pub fn generate(config: RatingsConfig) -> Self {
        assert!(config.n_users > 0 && config.n_items > 0, "empty dataset");
        assert!(
            config.ratings_per_user <= config.n_items,
            "cannot rate more items than exist"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // Taste prototypes and item latent vectors.
        let tastes: Vec<Vec<f64>> = (0..config.n_tastes)
            .map(|_| {
                (0..config.latent_dim)
                    .map(|_| normal(&mut rng, 0.0, 1.0))
                    .collect()
            })
            .collect();
        let items: Vec<Vec<f64>> = (0..config.n_items)
            .map(|_| {
                (0..config.latent_dim)
                    .map(|_| normal(&mut rng, 0.0, 1.0))
                    .collect()
            })
            .collect();
        let popularity = Zipf::new(config.n_items, config.popularity_skew);

        let mut ratings = Vec::with_capacity(config.n_users * config.ratings_per_user);
        let mut user_taste = Vec::with_capacity(config.n_users);
        let scale = 1.5 / (config.latent_dim as f64).sqrt();
        for user in 0..config.n_users as u32 {
            let taste_idx = rng.random_range(0..config.n_tastes);
            user_taste.push(taste_idx as u32);
            // The user's latent vector: prototype + small personal jitter.
            let uvec: Vec<f64> = tastes[taste_idx]
                .iter()
                .map(|&t| t + normal(&mut rng, 0.0, 0.15))
                .collect();

            // Choose distinct items, popularity-skewed.
            let mut chosen = std::collections::BTreeSet::new();
            while chosen.len() < config.ratings_per_user {
                chosen.insert(popularity.sample(&mut rng) as u32);
            }
            for item in chosen {
                let affinity: f64 = uvec
                    .iter()
                    .zip(&items[item as usize])
                    .map(|(a, b)| a * b)
                    .sum();
                let raw = 3.0 + affinity * scale + normal(&mut rng, 0.0, config.noise);
                let stars = (raw.round()).clamp(1.0, 5.0);
                ratings.push(Rating { user, item, stars });
            }
        }
        RatingsDataset {
            config,
            ratings,
            user_taste,
        }
    }

    /// Total number of ratings.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// True when no ratings were generated (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// Split each user's ratings into (train, holdout) with `train_frac`
    /// going to train — the paper's "80% of each user's randomly selected
    /// ratings are used in weight calculation". Deterministic per `seed`.
    pub fn holdout_split(&self, train_frac: f64, seed: u64) -> (Vec<Rating>, Vec<Rating>) {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac out of range");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut hold = Vec::new();
        // Ratings are grouped by user already; walk runs of equal user.
        let mut i = 0usize;
        while i < self.ratings.len() {
            let user = self.ratings[i].user;
            let mut j = i;
            while j < self.ratings.len() && self.ratings[j].user == user {
                j += 1;
            }
            let mut idx: Vec<usize> = (i..j).collect();
            // Fisher-Yates shuffle.
            for k in (1..idx.len()).rev() {
                let swap = rng.random_range(0..=k);
                idx.swap(k, swap);
            }
            let cut = ((j - i) as f64 * train_frac).round() as usize;
            for (pos, &r) in idx.iter().enumerate() {
                if pos < cut {
                    train.push(self.ratings[r]);
                } else {
                    hold.push(self.ratings[r]);
                }
            }
            i = j;
        }
        (train, hold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RatingsDataset {
        RatingsDataset::generate(RatingsConfig::small())
    }

    #[test]
    fn generates_requested_shape() {
        let d = small();
        assert_eq!(d.user_taste.len(), 400);
        assert_eq!(d.len(), 400 * 40);
        for r in &d.ratings {
            assert!(r.user < 400);
            assert!(r.item < 120);
            assert!((1.0..=5.0).contains(&r.stars));
            assert_eq!(r.stars.fract(), 0.0, "stars are integral");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.ratings, b.ratings);
        let c = RatingsDataset::generate(RatingsConfig {
            seed: 999,
            ..RatingsConfig::small()
        });
        assert_ne!(a.ratings, c.ratings);
    }

    #[test]
    fn items_distinct_per_user() {
        let d = small();
        let mut i = 0;
        while i < d.ratings.len() {
            let user = d.ratings[i].user;
            let mut seen = std::collections::HashSet::new();
            while i < d.ratings.len() && d.ratings[i].user == user {
                assert!(
                    seen.insert(d.ratings[i].item),
                    "duplicate item for user {user}"
                );
                i += 1;
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let d = small();
        let mut counts = vec![0usize; 120];
        for r in &d.ratings {
            counts[r.item as usize] += 1;
        }
        let head: usize = counts[..12].iter().sum();
        let tail: usize = counts[108..].iter().sum();
        assert!(
            head > tail * 2,
            "head {head} not much bigger than tail {tail}"
        );
    }

    #[test]
    fn same_taste_users_rate_more_similarly() {
        let d = small();
        // Average |star diff| on co-rated items: same-taste pairs should
        // disagree less than cross-taste pairs.
        use std::collections::HashMap;
        let mut by_user: HashMap<u32, HashMap<u32, f64>> = HashMap::new();
        for r in &d.ratings {
            by_user.entry(r.user).or_default().insert(r.item, r.stars);
        }
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for u in 0..100u32 {
            for v in (u + 1)..100u32 {
                let (a, b) = (&by_user[&u], &by_user[&v]);
                for (item, s) in a {
                    if let Some(t) = b.get(item) {
                        let delta = (s - t).abs();
                        if d.user_taste[u as usize] == d.user_taste[v as usize] {
                            same.0 += delta;
                            same.1 += 1;
                        } else {
                            diff.0 += delta;
                            diff.1 += 1;
                        }
                    }
                }
            }
        }
        let same_mean = same.0 / same.1 as f64;
        let diff_mean = diff.0 / diff.1 as f64;
        assert!(
            same_mean < diff_mean,
            "same-taste disagreement {same_mean} >= cross-taste {diff_mean}"
        );
    }

    #[test]
    fn holdout_split_partitions() {
        let d = small();
        let (train, hold) = d.holdout_split(0.8, 1);
        assert_eq!(train.len() + hold.len(), d.len());
        // Roughly 80/20.
        let frac = train.len() as f64 / d.len() as f64;
        assert!((frac - 0.8).abs() < 0.02, "train fraction {frac}");
        // Deterministic.
        let (train2, _) = d.holdout_split(0.8, 1);
        assert_eq!(train, train2);
    }

    #[test]
    #[should_panic(expected = "more items")]
    fn too_many_ratings_per_user_panics() {
        RatingsDataset::generate(RatingsConfig {
            n_items: 10,
            ratings_per_user: 11,
            ..RatingsConfig::small()
        });
    }
}

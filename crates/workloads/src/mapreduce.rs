//! Co-located MapReduce interference trace (SWIM / BigDataBench-MT
//! substitute).
//!
//! Substitution note (DESIGN.md §3): the paper co-locates the service with
//! Hadoop jobs replayed from a Facebook trace — CPU-intensive WordCount and
//! I/O-intensive Sort, input sizes 1 MB–10 GB, mostly short-running. We
//! generate an equivalent synthetic trace: per-node Poisson job arrivals,
//! log-uniform input sizes, duration and slowdown derived from size and
//! kind. The simulator multiplies a component's service time by the active
//! slowdown of its node — the same mechanism ("frequently changing
//! performance interference") that produces the paper's latency variance.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::exponential;

/// Kind of co-located batch job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// WordCount-like: burns CPU, strong interference.
    CpuIntensive,
    /// Sort-like: I/O bound, milder CPU interference.
    IoIntensive,
}

/// One batch job occupying a node for a time interval.
#[derive(Clone, Copy, Debug)]
pub struct Job {
    /// Node the job runs on.
    pub node: usize,
    /// Job kind.
    pub kind: JobKind,
    /// Input size in MB (1..=10_240, log-uniform).
    pub input_mb: f64,
    /// Start time (s).
    pub start: f64,
    /// Duration (s).
    pub duration: f64,
    /// Multiplicative service-time slowdown while active (> 1).
    pub slowdown: f64,
}

/// Interference-trace generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct MapReduceConfig {
    /// Nodes in the cluster.
    pub n_nodes: usize,
    /// Mean batch-job arrivals per node per minute.
    pub jobs_per_node_minute: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        MapReduceConfig {
            n_nodes: 30,
            jobs_per_node_minute: 1.0,
            seed: 0x5A1D,
        }
    }
}

/// A generated trace: per-node job intervals, queryable for the total
/// slowdown at any instant.
#[derive(Clone, Debug)]
pub struct InterferenceTrace {
    duration: f64,
    /// Per node, jobs sorted by start time.
    per_node: Vec<Vec<Job>>,
}

impl InterferenceTrace {
    /// Generate a trace covering `[0, duration)` seconds.
    pub fn generate(config: MapReduceConfig, duration: f64) -> Self {
        assert!(config.n_nodes > 0, "need >= 1 node");
        assert!(duration >= 0.0);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let rate_per_sec = config.jobs_per_node_minute / 60.0;
        let mut per_node = Vec::with_capacity(config.n_nodes);
        for node in 0..config.n_nodes {
            let mut jobs = Vec::new();
            if rate_per_sec > 0.0 {
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, rate_per_sec);
                    if t >= duration {
                        break;
                    }
                    jobs.push(Self::sample_job(&mut rng, node, t));
                }
            }
            per_node.push(jobs);
        }
        InterferenceTrace { duration, per_node }
    }

    fn sample_job(rng: &mut SmallRng, node: usize, start: f64) -> Job {
        let kind = if rng.random::<f64>() < 0.5 {
            JobKind::CpuIntensive
        } else {
            JobKind::IoIntensive
        };
        // Log-uniform input size: 1 MB .. 10 GB.
        let log_mb = rng.random_range(0.0..4.01); // 10^0 .. 10^4 MB
        let input_mb = 10f64.powf(log_mb);
        // Duration grows sublinearly with input (parallel map tasks):
        // 1 MB ≈ 2 s, 10 GB ≈ 250 s — "short-running" batch jobs.
        let duration = 2.0 * (input_mb).powf(0.52);
        // Slowdown: CPU jobs interfere more; bigger inputs slightly more.
        let base = match kind {
            JobKind::CpuIntensive => 1.18,
            JobKind::IoIntensive => 1.08,
        };
        let slowdown = base + 0.03 * log_mb + rng.random_range(0.0..0.08);
        Job {
            node,
            kind,
            input_mb,
            start,
            duration,
            slowdown,
        }
    }

    /// Trace horizon in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// All jobs of `node`, sorted by start.
    pub fn jobs(&self, node: usize) -> &[Job] {
        &self.per_node[node]
    }

    /// Multiplicative slowdown on `node` at time `t`: the product of all
    /// active jobs' slowdowns, capped at 1.4× (a node can only get so slow
    /// before the OS scheduler's fair time-slicing bounds the damage).
    pub fn slowdown(&self, node: usize, t: f64) -> f64 {
        let jobs = &self.per_node[node];
        // Jobs are sorted by start; only those with start <= t can be live.
        let hi = jobs.partition_point(|j| j.start <= t);
        let mut s = 1.0;
        for j in &jobs[..hi] {
            if t < j.start + j.duration {
                s *= j.slowdown;
            }
        }
        s.min(1.4)
    }

    /// Mean slowdown over all nodes at time `t` (diagnostics).
    pub fn mean_slowdown(&self, t: f64) -> f64 {
        let sum: f64 = (0..self.n_nodes()).map(|n| self.slowdown(n, t)).sum();
        sum / self.n_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> InterferenceTrace {
        InterferenceTrace::generate(MapReduceConfig::default(), 3600.0)
    }

    #[test]
    fn jobs_are_sorted_and_bounded() {
        let t = trace();
        assert_eq!(t.n_nodes(), 30);
        for node in 0..30 {
            let jobs = t.jobs(node);
            for w in jobs.windows(2) {
                assert!(w[0].start <= w[1].start);
            }
            for j in jobs {
                assert!((0.0..3600.0).contains(&j.start));
                assert!(j.duration > 0.0);
                assert!(j.slowdown > 1.0);
                assert!((1.0..=10_240.0).contains(&j.input_mb));
            }
        }
    }

    #[test]
    fn arrival_rate_roughly_matches() {
        let t = trace();
        let total: usize = (0..30).map(|n| t.jobs(n).len()).sum();
        // 1 job/node/minute * 60 minutes * 30 nodes = 1800 expected.
        assert!(
            (total as f64 - 1800.0).abs() < 1800.0 * 0.15,
            "total jobs {total}"
        );
    }

    #[test]
    fn slowdown_at_least_one_and_capped() {
        let t = trace();
        for node in [0usize, 7, 29] {
            for i in 0..100 {
                let s = t.slowdown(node, i as f64 * 36.0);
                assert!((1.0..=1.4).contains(&s), "slowdown {s}");
            }
        }
    }

    #[test]
    fn slowdown_reflects_active_jobs() {
        let t = trace();
        // Find a job and probe inside/outside its interval.
        let job = t.jobs(0).first().expect("node 0 has jobs");
        let inside = t.slowdown(0, job.start + job.duration * 0.5);
        assert!(inside >= job.slowdown.min(1.4) - 1e-9);
        let before = t.slowdown(0, (job.start - 1.0).max(0.0));
        // Before the first job of the node, nothing is active.
        if job.start >= 1.0 {
            assert_eq!(before, 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = trace();
        let b = trace();
        assert_eq!(a.jobs(3).len(), b.jobs(3).len());
        let c = InterferenceTrace::generate(
            MapReduceConfig {
                seed: 77,
                ..MapReduceConfig::default()
            },
            3600.0,
        );
        // Different seed, almost surely different job count on some node.
        let differs = (0..30).any(|n| a.jobs(n).len() != c.jobs(n).len());
        assert!(differs);
    }

    #[test]
    fn zero_rate_trace_is_quiet() {
        let t = InterferenceTrace::generate(
            MapReduceConfig {
                jobs_per_node_minute: 0.0,
                ..MapReduceConfig::default()
            },
            100.0,
        );
        assert_eq!(t.mean_slowdown(50.0), 1.0);
    }
}

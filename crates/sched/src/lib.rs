//! `at-sched`: loom-lite deterministic schedule exploration.
//!
//! The serving stack's proptests sample interleavings; this crate
//! *enumerates* them for small configurations. Test bodies run on real
//! OS threads, but every synchronization operation routes through
//! instrumented shims ([`SchedMutex`], [`SchedCondvar`],
//! [`SchedAtomicU64`]) that hand control to a cooperative controller:
//! exactly one thread runs at a time, and at every operation the
//! controller consults a depth-first search over "which runnable thread
//! goes next" choice points. Re-running the setup under successive
//! choice prefixes enumerates every distinct interleaving of the
//! modeled operations (optionally bounded in preemptions, after
//! CHESS/loom), detecting:
//!
//! - **deadlock** — no thread runnable, some thread still blocked
//!   (covers lost wakeups: `notify` with no waiter is a no-op, exactly
//!   like the real Condvar);
//! - **assertion failure** — any panic in a test body or final-state
//!   check, reported with the schedule's trace;
//! - **livelock** — executions exceeding a step budget.
//!
//! The memory model is sequential consistency (atomic shims are SeqCst
//! underneath): this checks protocol logic — wakeup ordering, guard
//! discipline, exactly-once delivery — not weak-memory reorderings,
//! which the static `atomic-discipline` rule polices separately (see
//! ANALYSIS.md "Concurrency contracts").
//!
//! Determinism contract: the `setup` closure must register the same
//! threads/primitives and the bodies must make the same op sequences
//! given the same schedule (no wall-clock, no OS randomness) — true of
//! everything in this workspace's control plane.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

thread_local! {
    /// The scheduler id of the current thread (None outside executions).
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Panic payload used to tear an execution down without reporting the
/// unwind as a test failure.
struct AbortExecution;

fn panic_abort() -> ! {
    std::panic::panic_any(AbortExecution)
}

/// Suppress panic chatter from scheduler-owned threads (aborted
/// executions unwind on purpose; real failures are re-reported by
/// [`Report`]). Installed once, delegating to the previous hook for
/// every other thread.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let ours = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("at-sched"));
            if !ours {
                prev(info);
            }
        }));
    });
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum ThreadState {
    Ready,
    Running,
    /// Blocked acquiring the mutex with this id.
    MutexWait(usize),
    /// Parked on a condvar (wait-set membership lives in `cond_waiters`).
    CondWait,
    Finished,
    /// Unwound (abort teardown or a reported failure).
    Dead,
}

/// One scheduling decision: which of `alternatives` runnable threads ran.
#[derive(Clone, Copy, Debug)]
struct Choice {
    alternatives: usize,
    chosen: usize,
}

#[derive(Debug)]
struct CtlState {
    threads: Vec<ThreadState>,
    current: Option<usize>,
    /// Holder tid per mutex.
    mutexes: Vec<Option<usize>>,
    /// FIFO wait-set per condvar: (tid, mutex to reacquire).
    cond_waiters: Vec<VecDeque<(usize, usize)>>,
    /// Forced choice prefix for this execution (DFS input).
    schedule: Vec<usize>,
    /// Choices actually taken (DFS output).
    choices: Vec<Choice>,
    preemptions: usize,
    max_preemptions: Option<usize>,
    steps: usize,
    max_steps: usize,
    steps_exceeded: bool,
    abort: bool,
    deadlock: bool,
    trace: Vec<String>,
}

/// The per-execution controller: a token (`current`) passed between
/// threads; every blocked thread waits on the one condvar and checks
/// whether the token is now theirs.
struct Ctl {
    state: Mutex<CtlState>,
    cv: Condvar,
}

impl Ctl {
    fn new(schedule: Vec<usize>, max_preemptions: Option<usize>, max_steps: usize) -> Self {
        Ctl {
            state: Mutex::new(CtlState {
                threads: Vec::new(),
                current: None,
                mutexes: Vec::new(),
                cond_waiters: Vec::new(),
                schedule,
                choices: Vec::new(),
                preemptions: 0,
                max_preemptions,
                steps: 0,
                max_steps,
                steps_exceeded: false,
                abort: false,
                deadlock: false,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, CtlState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Pick the next thread to run (a DFS choice point) and hand it the
    /// token. Empty runnable set means the execution is over — cleanly
    /// if everyone finished, as a deadlock if anyone is still blocked.
    fn schedule_next(&self, st: &mut CtlState, cur: Option<usize>) {
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| match st.threads[t] {
                ThreadState::Ready => true,
                ThreadState::MutexWait(m) => st.mutexes[m].is_none(),
                _ => false,
            })
            .collect();
        if runnable.is_empty() {
            st.current = None;
            let blocked = st
                .threads
                .iter()
                .any(|t| matches!(t, ThreadState::MutexWait(_) | ThreadState::CondWait));
            if blocked && !st.abort {
                st.deadlock = true;
                st.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        // Preemption bounding (CHESS-style): once the budget is spent, a
        // still-runnable current thread keeps running.
        let allowed = match (cur, st.max_preemptions) {
            (Some(c), Some(budget)) if st.preemptions >= budget && runnable.contains(&c) => {
                vec![c]
            }
            _ => runnable,
        };
        let k = st.choices.len();
        let idx = if k < st.schedule.len() {
            // Replaying a DFS prefix is deterministic, so the forced
            // index is always in range; min() is a belt against a
            // non-deterministic setup violating the contract.
            st.schedule[k].min(allowed.len() - 1)
        } else {
            0
        };
        st.choices.push(Choice {
            alternatives: allowed.len(),
            chosen: idx,
        });
        let next = allowed[idx];
        if let Some(c) = cur {
            if next != c && matches!(st.threads[c], ThreadState::Ready) {
                st.preemptions += 1;
            }
        }
        if let ThreadState::MutexWait(m) = st.threads[next] {
            st.mutexes[m] = Some(next);
        }
        st.current = Some(next);
        self.cv.notify_all();
    }

    /// Park until the token is ours (or the execution aborts).
    fn block_until_running(&self, mut st: MutexGuard<'_, CtlState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                panic_abort();
            }
            if st.current == Some(me) {
                st.threads[me] = ThreadState::Running;
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// The per-operation yield point: record the op, offer the scheduler
    /// a choice among every runnable thread (self included), park until
    /// chosen again.
    fn pause(&self, me: usize, op: &str) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            panic_abort();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.steps_exceeded = true;
            st.abort = true;
            self.cv.notify_all();
            drop(st);
            panic_abort();
        }
        let mut line = String::new();
        let _ = write!(line, "t{me} {op}");
        st.trace.push(line);
        st.threads[me] = ThreadState::Ready;
        self.schedule_next(&mut st, Some(me));
        self.block_until_running(st, me);
    }
}

/// Hands the token on (and aborts the execution) if a thread body
/// unwinds instead of reaching its orderly finish.
struct Bomb {
    ctl: Arc<Ctl>,
    me: usize,
    armed: bool,
}

impl Bomb {
    fn disarm_and_finish(&mut self) {
        self.armed = false;
        let mut st = self.ctl.lock_state();
        st.threads[self.me] = ThreadState::Finished;
        self.ctl.schedule_next(&mut st, Some(self.me));
    }
}

impl Drop for Bomb {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Unwinding (failure or abort teardown): never panic here.
        let mut st = self.ctl.lock_state();
        st.threads[self.me] = ThreadState::Dead;
        st.abort = true;
        st.current = None;
        self.ctl.cv.notify_all();
    }
}

/// An instrumented mutex handle; clone it into each thread body.
pub struct SchedMutex<T> {
    ctl: Arc<Ctl>,
    id: usize,
    data: Arc<Mutex<T>>,
}

impl<T> Clone for SchedMutex<T> {
    fn clone(&self) -> Self {
        SchedMutex {
            ctl: self.ctl.clone(),
            id: self.id,
            data: self.data.clone(),
        }
    }
}

/// Guard for a [`SchedMutex`]; releases the modeled and physical locks
/// on drop.
pub struct SchedGuard<'a, T> {
    mutex: &'a SchedMutex<T>,
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> SchedMutex<T> {
    /// Acquire: one yield point before the attempt; contention parks the
    /// thread until the scheduler grants the mutex.
    pub fn lock(&self) -> SchedGuard<'_, T> {
        let Some(me) = TID.get() else {
            // Outside an execution (setup or final-state checks): no
            // scheduling, the physical lock alone is enough.
            return SchedGuard {
                mutex: self,
                guard: Some(
                    self.data
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                ),
            };
        };
        self.ctl.pause(me, "lock");
        let mut st = self.ctl.lock_state();
        match st.mutexes[self.id] {
            Some(holder) if holder == me => {
                // Re-entrant acquire self-deadlocks on std's Mutex.
                st.deadlock = true;
                st.abort = true;
                self.ctl.cv.notify_all();
                drop(st);
                panic_abort();
            }
            Some(_) => {
                st.threads[me] = ThreadState::MutexWait(self.id);
                self.ctl.schedule_next(&mut st, Some(me));
                // When the token comes back the scheduler has recorded
                // us as the holder.
                self.ctl.block_until_running(st, me);
            }
            None => {
                st.mutexes[self.id] = Some(me);
            }
        }
        SchedGuard {
            mutex: self,
            guard: Some(
                self.data
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            ),
        }
    }
}

impl<T> Deref for SchedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> DerefMut for SchedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for SchedGuard<'_, T> {
    fn drop(&mut self) {
        // Physical release first, then the model's: a later grantee must
        // find the std lock free. Never panics (runs during unwinds).
        self.guard.take();
        let mut st = self.mutex.ctl.lock_state();
        if st.mutexes[self.mutex.id] == TID.get() {
            st.mutexes[self.mutex.id] = None;
        }
    }
}

/// An instrumented condvar handle.
pub struct SchedCondvar {
    ctl: Arc<Ctl>,
    id: usize,
}

impl Clone for SchedCondvar {
    fn clone(&self) -> Self {
        SchedCondvar {
            ctl: self.ctl.clone(),
            id: self.id,
        }
    }
}

impl SchedCondvar {
    /// Atomically release the guard and park until notified; reacquires
    /// the mutex before returning, exactly like `std::sync::Condvar`.
    /// No spurious wakeups are modeled — a protocol that is correct
    /// without them under every schedule is correct with them.
    pub fn wait<'a, T>(&self, guard: SchedGuard<'a, T>) -> SchedGuard<'a, T> {
        let me = TID.get().expect("SchedCondvar::wait outside an execution");
        let mutex: &'a SchedMutex<T> = guard.mutex;
        drop(guard); // releases physical + modeled lock, no yield
        let mut st = self.ctl.lock_state();
        if st.abort {
            drop(st);
            panic_abort();
        }
        st.steps += 1;
        let mut line = String::new();
        let _ = write!(line, "t{me} wait");
        st.trace.push(line);
        st.threads[me] = ThreadState::CondWait;
        st.cond_waiters[self.id].push_back((me, mutex.id));
        self.ctl.schedule_next(&mut st, Some(me));
        self.ctl.block_until_running(st, me);
        // The scheduler only hands the token back once notified AND the
        // mutex was granted to us.
        SchedGuard {
            mutex,
            guard: Some(
                mutex
                    .data
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            ),
        }
    }

    /// Wake the longest-waiting thread (moves it to the mutex queue); a
    /// notify with no waiter is a no-op — lost wakeups surface as
    /// deadlocks, which is the point.
    pub fn notify_one(&self) {
        let Some(me) = TID.get() else { return };
        self.ctl.pause(me, "notify_one");
        let mut st = self.ctl.lock_state();
        if let Some((tid, mid)) = st.cond_waiters[self.id].pop_front() {
            st.threads[tid] = ThreadState::MutexWait(mid);
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        let Some(me) = TID.get() else { return };
        self.ctl.pause(me, "notify_all");
        let mut st = self.ctl.lock_state();
        while let Some((tid, mid)) = st.cond_waiters[self.id].pop_front() {
            st.threads[tid] = ThreadState::MutexWait(mid);
        }
    }
}

/// An instrumented atomic (SeqCst underneath: the explorer checks
/// protocol logic under sequential consistency, not weak-memory
/// reorderings).
pub struct SchedAtomicU64 {
    ctl: Arc<Ctl>,
    inner: Arc<AtomicU64>,
}

impl Clone for SchedAtomicU64 {
    fn clone(&self) -> Self {
        SchedAtomicU64 {
            ctl: self.ctl.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl SchedAtomicU64 {
    pub fn load(&self) -> u64 {
        if let Some(me) = TID.get() {
            self.ctl.pause(me, "atomic load");
        }
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, value: u64) {
        if let Some(me) = TID.get() {
            self.ctl.pause(me, "atomic store");
        }
        self.inner.store(value, Ordering::SeqCst)
    }

    pub fn fetch_add(&self, value: u64) -> u64 {
        if let Some(me) = TID.get() {
            self.ctl.pause(me, "atomic fetch_add");
        }
        self.inner.fetch_add(value, Ordering::SeqCst)
    }
}

type Body = Box<dyn FnOnce() + Send + 'static>;

/// Registration handle passed to the setup closure: create primitives,
/// spawn thread bodies, and register final-state checks. Setup runs
/// once per explored schedule, so everything starts fresh each time.
pub struct Sched {
    ctl: Arc<Ctl>,
    bodies: Vec<Body>,
    checks: Vec<Body>,
}

impl Sched {
    pub fn mutex<T: Send + 'static>(&mut self, value: T) -> SchedMutex<T> {
        let mut st = self.ctl.lock_state();
        let id = st.mutexes.len();
        st.mutexes.push(None);
        drop(st);
        SchedMutex {
            ctl: self.ctl.clone(),
            id,
            data: Arc::new(Mutex::new(value)),
        }
    }

    pub fn condvar(&mut self) -> SchedCondvar {
        let mut st = self.ctl.lock_state();
        let id = st.cond_waiters.len();
        st.cond_waiters.push(VecDeque::new());
        drop(st);
        SchedCondvar {
            ctl: self.ctl.clone(),
            id,
        }
    }

    pub fn atomic(&mut self, value: u64) -> SchedAtomicU64 {
        SchedAtomicU64 {
            ctl: self.ctl.clone(),
            inner: Arc::new(AtomicU64::new(value)),
        }
    }

    /// Register a thread body for this execution.
    pub fn thread(&mut self, body: impl FnOnce() + Send + 'static) {
        self.bodies.push(Box::new(body));
    }

    /// Register a final-state invariant, run after the threads of a
    /// clean (non-aborted) execution have all finished. Panics are
    /// reported as failures with the execution's trace.
    pub fn check(&mut self, check: impl FnOnce() + Send + 'static) {
        self.checks.push(Box::new(check));
    }
}

/// Outcome of exploring every schedule (or stopping at the first
/// defect).
#[derive(Debug, Default)]
pub struct Report {
    /// Distinct schedules executed (each a unique choice sequence).
    pub schedules: usize,
    /// Deadlocked schedules found (exploration stops at the first).
    pub deadlocks: usize,
    /// Assertion/livelock failures (exploration stops at the first).
    pub failures: Vec<String>,
    /// Operation trace of the defective schedule, if any.
    pub defect_trace: Option<Vec<String>>,
    /// True when `max_schedules` stopped exploration early.
    pub capped: bool,
}

impl Report {
    /// True when exploration saw no deadlock and no failure.
    pub fn ok(&self) -> bool {
        self.deadlocks == 0 && self.failures.is_empty()
    }

    /// Panic (with the defective schedule's trace) unless clean.
    pub fn assert_ok(&self) {
        assert!(
            self.ok(),
            "schedule exploration found defects: {} deadlock(s), failures: {:?}\ntrace of the \
             defective schedule:\n  {}",
            self.deadlocks,
            self.failures,
            self.defect_trace
                .as_deref()
                .unwrap_or_default()
                .join("\n  "),
        );
    }
}

struct ExecOutcome {
    choices: Vec<Choice>,
    trace: Vec<String>,
    deadlock: bool,
    steps_exceeded: bool,
    panics: Vec<String>,
}

/// Depth-first exploration driver.
pub struct Explorer {
    max_preemptions: Option<usize>,
    max_schedules: usize,
    max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_preemptions: None,
            max_schedules: 100_000,
            max_steps: 10_000,
        }
    }
}

impl Explorer {
    pub fn new() -> Self {
        Explorer::default()
    }

    /// Bound context switches away from a runnable thread (CHESS-style):
    /// most protocol bugs need only a couple of preemptions, and the
    /// schedule count drops combinatorially.
    pub fn with_max_preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = Some(n);
        self
    }

    /// Cap the number of schedules (sets `Report::capped` when hit).
    pub fn with_max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Cap modeled operations per execution (livelock guard).
    pub fn with_max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Enumerate schedules depth-first until exhausted, capped, or a
    /// defect is found.
    pub fn explore(&self, setup: impl Fn(&mut Sched)) -> Report {
        install_quiet_hook();
        let mut report = Report::default();
        let mut schedule: Vec<usize> = Vec::new();
        loop {
            if report.schedules >= self.max_schedules {
                report.capped = true;
                return report;
            }
            let out = self.run_one(&setup, schedule.clone());
            report.schedules += 1;
            if !out.panics.is_empty() || out.steps_exceeded {
                report.failures.extend(out.panics);
                if out.steps_exceeded {
                    report
                        .failures
                        .push("execution exceeded max_steps (livelock?)".to_string());
                }
                report.defect_trace = Some(out.trace);
                return report;
            }
            if out.deadlock {
                report.deadlocks += 1;
                report.defect_trace = Some(out.trace);
                return report;
            }
            // Next DFS prefix: deepest choice with an untried alternative.
            let mut choices = out.choices;
            loop {
                match choices.pop() {
                    Some(c) if c.chosen + 1 < c.alternatives => {
                        schedule = choices.iter().map(|c| c.chosen).collect();
                        schedule.push(c.chosen + 1);
                        break;
                    }
                    Some(_) => {}
                    None => return report,
                }
            }
        }
    }

    fn run_one(&self, setup: &impl Fn(&mut Sched), schedule: Vec<usize>) -> ExecOutcome {
        let ctl = Arc::new(Ctl::new(schedule, self.max_preemptions, self.max_steps));
        let mut sched = Sched {
            ctl: ctl.clone(),
            bodies: Vec::new(),
            checks: Vec::new(),
        };
        setup(&mut sched);
        let n = sched.bodies.len();
        {
            let mut st = ctl.lock_state();
            st.threads = vec![ThreadState::Ready; n];
        }
        let mut handles = Vec::with_capacity(n);
        for (i, body) in sched.bodies.into_iter().enumerate() {
            let ctl = ctl.clone();
            let handle = std::thread::Builder::new()
                .name(format!("at-sched-{i}"))
                .spawn(move || {
                    TID.set(Some(i));
                    let mut bomb = Bomb {
                        ctl: ctl.clone(),
                        me: i,
                        armed: true,
                    };
                    {
                        let st = ctl.lock_state();
                        ctl.block_until_running(st, i);
                    }
                    body();
                    bomb.disarm_and_finish();
                })
                .expect("spawn at-sched worker thread");
            handles.push(handle);
        }
        {
            // Initial choice: which thread starts.
            let mut st = ctl.lock_state();
            ctl.schedule_next(&mut st, None);
        }
        let mut panics = Vec::new();
        for handle in handles {
            if let Err(payload) = handle.join() {
                if payload.downcast_ref::<AbortExecution>().is_none() {
                    panics.push(payload_message(payload.as_ref()));
                }
            }
        }
        let (choices, trace, deadlock, steps_exceeded) = {
            let st = ctl.lock_state();
            (
                st.choices.clone(),
                st.trace.clone(),
                st.deadlock,
                st.steps_exceeded,
            )
        };
        if panics.is_empty() && !deadlock && !steps_exceeded {
            for check in sched.checks {
                let handle = std::thread::Builder::new()
                    .name("at-sched-check".to_string())
                    .spawn(check)
                    .expect("spawn at-sched check thread");
                if let Err(payload) = handle.join() {
                    panics.push(payload_message(payload.as_ref()));
                }
            }
        }
        ExecOutcome {
            choices,
            trace,
            deadlock,
            steps_exceeded,
            panics,
        }
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads, one atomic increment each: both interleavings reach
    /// the same final value, and both are explored.
    #[test]
    fn counter_increments_explore_both_orders() {
        let report = Explorer::new().explore(|sched| {
            let counter = sched.atomic(0);
            for _ in 0..2 {
                let counter = counter.clone();
                sched.thread(move || {
                    counter.fetch_add(1);
                });
            }
            let counter = counter.clone();
            sched.check(move || assert_eq!(counter.load(), 2));
        });
        report.assert_ok();
        assert!(report.schedules >= 2, "explored {}", report.schedules);
        assert!(!report.capped);
    }

    /// Mutual exclusion: increments through a mutex never tear.
    #[test]
    fn mutex_increments_are_exclusive() {
        let report = Explorer::new().explore(|sched| {
            let cell = sched.mutex(0u64);
            for _ in 0..2 {
                let cell = cell.clone();
                sched.thread(move || {
                    for _ in 0..2 {
                        let mut guard = cell.lock();
                        let seen = *guard;
                        *guard = seen + 1;
                    }
                });
            }
            let cell = cell.clone();
            sched.check(move || assert_eq!(*cell.lock(), 4));
        });
        report.assert_ok();
        assert!(report.schedules >= 6, "explored {}", report.schedules);
    }

    /// Opposite-order two-lock acquisition: the explorer must find the
    /// deadlock.
    #[test]
    fn opposite_lock_order_deadlocks() {
        let report = Explorer::new().explore(|sched| {
            let a = sched.mutex(());
            let b = sched.mutex(());
            {
                let (a, b) = (a.clone(), b.clone());
                sched.thread(move || {
                    let _a = a.lock();
                    let _b = b.lock();
                });
            }
            {
                let (a, b) = (a.clone(), b.clone());
                sched.thread(move || {
                    let _b = b.lock();
                    let _a = a.lock();
                });
            }
        });
        assert_eq!(report.deadlocks, 1, "{report:?}");
        assert!(report.defect_trace.is_some());
    }

    /// Lost wakeup: a notify that can fire before the wait leaves the
    /// waiter parked forever in some schedule.
    #[test]
    fn lost_wakeup_is_found_as_deadlock() {
        let report = Explorer::new().explore(|sched| {
            let flag = sched.atomic(0);
            let parking = sched.mutex(());
            let cv = sched.condvar();
            {
                let (flag, parking, cv) = (flag.clone(), parking.clone(), cv.clone());
                sched.thread(move || {
                    // BUG: predicate checked outside the lock the wait
                    // releases — the set+notify can slip in between.
                    if flag.load() == 0 {
                        let guard = parking.lock();
                        let _guard = cv.wait(guard);
                    }
                });
            }
            {
                let (flag, cv) = (flag.clone(), cv.clone());
                sched.thread(move || {
                    flag.store(1);
                    cv.notify_one();
                });
            }
        });
        // The buggy schedule exists... but so do clean ones: the check
        // is that exploration FINDS the deadlock.
        assert_eq!(report.deadlocks, 1, "{report:?}");
    }

    /// The corrected protocol (predicate loop, notify under the lock
    /// ordering) is clean across every schedule.
    #[test]
    fn correct_wait_loop_is_clean_everywhere() {
        let report = Explorer::new().explore(|sched| {
            let flag = sched.mutex(false);
            let cv = sched.condvar();
            {
                let (flag, cv) = (flag.clone(), cv.clone());
                sched.thread(move || {
                    let mut guard = flag.lock();
                    while !*guard {
                        guard = cv.wait(guard);
                    }
                });
            }
            {
                let (flag, cv) = (flag.clone(), cv.clone());
                sched.thread(move || {
                    let mut guard = flag.lock();
                    *guard = true;
                    drop(guard);
                    cv.notify_one();
                });
            }
        });
        report.assert_ok();
        assert!(report.schedules >= 2, "explored {}", report.schedules);
    }

    /// Preemption bounding shrinks the schedule count but keeps at
    /// least the serial executions.
    #[test]
    fn preemption_bound_reduces_schedules() {
        let run = |bound: Option<usize>| {
            let mut explorer = Explorer::new();
            if let Some(n) = bound {
                explorer = explorer.with_max_preemptions(n);
            }
            explorer.explore(|sched| {
                let counter = sched.atomic(0);
                for _ in 0..2 {
                    let counter = counter.clone();
                    sched.thread(move || {
                        counter.fetch_add(1);
                        counter.fetch_add(1);
                    });
                }
            })
        };
        let unbounded = run(None);
        let bounded = run(Some(0));
        unbounded.assert_ok();
        bounded.assert_ok();
        assert!(
            bounded.schedules < unbounded.schedules,
            "bounded {} vs unbounded {}",
            bounded.schedules,
            unbounded.schedules
        );
        // Zero preemptions still runs each thread to completion in both
        // orders.
        assert!(bounded.schedules >= 2, "{}", bounded.schedules);
    }

    /// A failing final-state check is reported with a trace.
    #[test]
    fn failing_check_is_reported() {
        let report = Explorer::new().explore(|sched| {
            let counter = sched.atomic(0);
            {
                let counter = counter.clone();
                sched.thread(move || {
                    counter.fetch_add(1);
                });
            }
            let counter = counter.clone();
            sched.check(move || assert_eq!(counter.load(), 2, "seeded failure"));
        });
        assert!(!report.ok());
        assert_eq!(report.deadlocks, 0);
        assert!(!report.failures.is_empty());
    }

    /// The schedule cap is honoured and flagged.
    #[test]
    fn schedule_cap_is_flagged() {
        let report = Explorer::new().with_max_schedules(3).explore(|sched| {
            let counter = sched.atomic(0);
            for _ in 0..3 {
                let counter = counter.clone();
                sched.thread(move || {
                    counter.fetch_add(1);
                });
            }
        });
        assert!(report.capped, "{report:?}");
        assert_eq!(report.schedules, 3);
    }
}

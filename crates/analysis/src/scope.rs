//! Per-token scope resolution: which `fn` encloses each token, and
//! whether the token sits in test-only code.
//!
//! The tracker is a brace-stack walk over the token stream. A pending fn
//! name is armed by `fn <ident>` and consumed by the next `{` at item
//! level; a pending test flag is armed by a `#[...]` attribute containing
//! the `test` ident (so both `#[test]` and `#[cfg(test)]` count, while
//! `#[cfg(not(test))]` does not) and is likewise consumed by the next
//! brace. Inner braces — blocks, closures, `match` arms — inherit the
//! enclosing context, which is exactly what the rules need: a closure in
//! a hot function is hot, a helper defined inside a `#[cfg(test)]` module
//! is test code.

use crate::lexer::{Token, TokenKind};

/// Context of a single token.
#[derive(Debug, Clone, PartialEq)]
pub struct Context {
    /// Innermost enclosing function name, if any.
    pub fn_name: Option<String>,
    /// Inside `#[test]` / `#[cfg(test)]` code.
    pub in_test: bool,
}

#[derive(Clone)]
struct Scope {
    fn_name: Option<String>,
    in_test: bool,
}

/// Resolve the context of every token; `out[i]` describes `tokens[i]`.
pub fn contexts(tokens: &[Token]) -> Vec<Context> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut stack: Vec<Scope> = vec![Scope {
        fn_name: None,
        in_test: false,
    }];
    let mut pending_fn: Option<String> = None;
    let mut pending_test = false;
    let mut awaiting_fn_name = false;
    // Item-level `;` (e.g. a trait method without a body) cancels the
    // pendings, but `;` inside `(...)`/`[...]` (array types, defaults)
    // must not — hence the bracket depth.
    let mut grouping_depth: i64 = 0;

    let mut i = 0;
    while i < tokens.len() {
        // The scope in effect for this token (attribute tokens simply get
        // the enclosing scope).
        let top = stack.last().cloned().unwrap_or(Scope {
            fn_name: None,
            in_test: false,
        });
        match &tokens[i].kind {
            TokenKind::Punct('#')
                if matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct('['))
                ) =>
            {
                // Scan the balanced `[...]` attribute group.
                let mut depth = 0usize;
                let mut j = i + 1;
                let mut saw_test = false;
                let mut saw_not = false;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct('[') => depth += 1,
                        TokenKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenKind::Ident(s) if s == "test" => saw_test = true,
                        TokenKind::Ident(s) if s == "not" => saw_not = true,
                        _ => {}
                    }
                    j += 1;
                }
                if saw_test && !saw_not {
                    pending_test = true;
                }
                // Emit the enclosing context for every token of the
                // attribute, then resume after it.
                for _ in i..=j.min(tokens.len() - 1) {
                    out.push(Context {
                        fn_name: top.fn_name.clone(),
                        in_test: top.in_test,
                    });
                }
                i = j + 1;
                continue;
            }
            TokenKind::Ident(s) if s == "fn" => {
                awaiting_fn_name = true;
            }
            TokenKind::Ident(name) if awaiting_fn_name => {
                pending_fn = Some(name.clone());
                awaiting_fn_name = false;
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => grouping_depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => grouping_depth -= 1,
            TokenKind::Punct('{') => {
                stack.push(Scope {
                    fn_name: pending_fn.take().or_else(|| top.fn_name.clone()),
                    in_test: pending_test || top.in_test,
                });
                pending_test = false;
            }
            TokenKind::Punct('}') if stack.len() > 1 => {
                stack.pop();
            }
            TokenKind::Punct(';') if grouping_depth <= 0 => {
                pending_fn = None;
                pending_test = false;
            }
            _ => {}
        }
        out.push(Context {
            fn_name: top.fn_name.clone(),
            in_test: top.in_test,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of(src: &str, ident: &str) -> Context {
        let l = lex(src);
        let ctxs = contexts(&l.tokens);
        let i = l
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Ident(ident.to_string()))
            .unwrap_or_else(|| panic!("no ident {ident} in {src}"));
        ctxs[i].clone()
    }

    #[test]
    fn body_tokens_carry_their_fn_name() {
        let ctx = ctx_of("fn hot() { let x = marker; }", "marker");
        assert_eq!(ctx.fn_name.as_deref(), Some("hot"));
        assert!(!ctx.in_test);
    }

    #[test]
    fn closures_and_blocks_inherit() {
        let ctx = ctx_of("fn hot() { items.map(|x| { marker(x) }); }", "marker");
        assert_eq!(ctx.fn_name.as_deref(), Some("hot"));
    }

    #[test]
    fn nested_fn_shadows_outer() {
        let ctx = ctx_of("fn outer() { fn inner() { marker; } }", "marker");
        assert_eq!(ctx.fn_name.as_deref(), Some("inner"));
    }

    #[test]
    fn test_attribute_marks_fn() {
        let ctx = ctx_of("#[test]\nfn t() { marker; }", "marker");
        assert!(ctx.in_test);
    }

    #[test]
    fn cfg_test_module_marks_everything_inside() {
        let src = "#[cfg(test)]\nmod tests { fn helper() { marker; } }";
        let ctx = ctx_of(src, "marker");
        assert!(ctx.in_test);
        assert_eq!(ctx.fn_name.as_deref(), Some("helper"));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let ctx = ctx_of("#[cfg(not(test))]\nfn f() { marker; }", "marker");
        assert!(!ctx.in_test);
    }

    #[test]
    fn array_type_semicolon_keeps_pending_fn() {
        // The `;` inside `[u8; 4]` must not cancel the armed fn name.
        let ctx = ctx_of("fn f(x: [u8; 4]) { marker; }", "marker");
        assert_eq!(ctx.fn_name.as_deref(), Some("f"));
    }

    #[test]
    fn trait_method_decl_does_not_leak_its_name() {
        let ctx = ctx_of(
            "trait T { fn decl(&self); }\nfn real() { marker; }",
            "marker",
        );
        assert_eq!(ctx.fn_name.as_deref(), Some("real"));
    }

    #[test]
    fn code_after_test_fn_is_clean_again() {
        let src = "#[test]\nfn t() {}\nfn f() { marker; }";
        let ctx = ctx_of(src, "marker");
        assert!(!ctx.in_test);
        assert_eq!(ctx.fn_name.as_deref(), Some("f"));
    }
}

//! CLI front end: `at-analysis [--root DIR] [--config FILE] [--check]
//! [--explain RULE]`.
//!
//! Exit codes: 0 clean (or findings without `--check`), 1 findings under
//! `--check`, 2 usage/config/IO failure.

#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut check = false;
    let mut explain: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--check" => check = true,
            "--explain" => match args.next() {
                Some(v) => explain = Some(v),
                None => return usage("--explain needs a rule name"),
            },
            "--help" | "-h" => {
                println!(
                    "at-analysis: workspace invariant lint pass\n\n\
                     USAGE: at-analysis [--root DIR] [--config FILE] [--check] [--explain RULE]\n\n\
                     --root DIR      tree to analyze (default: .)\n\
                     --config FILE   analysis config (default: <root>/analysis.toml)\n\
                     --check         exit 1 when any diagnostic is found (CI gate)\n\
                     --explain RULE  print the rationale behind a rule and exit\n\n\
                     RULES: {}",
                    at_analysis::rule_names().join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(rule) = explain {
        return match at_analysis::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => usage(&format!(
                "no rule named `{rule}` — known: {}",
                at_analysis::rule_names().join(", ")
            )),
        };
    }

    let config = config.unwrap_or_else(|| root.join("analysis.toml"));
    let cfg = match at_analysis::config::load(&config) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("at-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    match at_analysis::analyze(&root, &cfg) {
        Ok(diags) if diags.is_empty() => {
            println!("at-analysis: clean — every configured invariant holds");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "at-analysis: {} finding{} — run with --explain <rule> for rationale",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
            if check {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("at-analysis: {problem} (try --help)");
    ExitCode::from(2)
}

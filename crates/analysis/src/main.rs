//! CLI front end: `at-analysis [--root DIR] [--config FILE] [--check]
//! [--json] [--explain RULE]`.
//!
//! Exit codes: 0 clean (or findings without `--check`), 1 findings under
//! `--check`, 2 usage/config/IO failure.

#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line. Separated from `main` so resolution rules (in
/// particular the `--config` default living under `--root`, not the
/// invoking directory) are unit-testable.
#[derive(Debug, Default, PartialEq)]
struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    check: bool,
    json: bool,
    explain: Option<String>,
    help: bool,
}

impl Cli {
    fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli {
            root: PathBuf::from("."),
            ..Cli::default()
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--root" => match args.next() {
                    Some(v) => cli.root = PathBuf::from(v),
                    None => return Err("--root needs a directory".into()),
                },
                "--config" => match args.next() {
                    Some(v) => cli.config = Some(PathBuf::from(v)),
                    None => return Err("--config needs a file".into()),
                },
                "--check" => cli.check = true,
                "--json" => cli.json = true,
                "--explain" => match args.next() {
                    Some(v) => cli.explain = Some(v),
                    None => return Err("--explain needs a rule name".into()),
                },
                "--help" | "-h" => cli.help = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(cli)
    }

    /// The config file to load: `--config` verbatim when given (relative
    /// paths stay relative to the invoking directory), otherwise
    /// `analysis.toml` under `--root` — so `--root crates/foo` run from
    /// the workspace root picks up the tree's own config, not the
    /// workspace one (or a silent absence).
    fn config_path(&self) -> PathBuf {
        match &self.config {
            Some(explicit) => explicit.clone(),
            None => self.root.join("analysis.toml"),
        }
    }
}

fn main() -> ExitCode {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(problem) => return usage(&problem),
    };

    if cli.help {
        println!(
            "at-analysis: workspace invariant lint pass\n\n\
             USAGE: at-analysis [--root DIR] [--config FILE] [--check] [--json] [--explain RULE]\n\n\
             --root DIR      tree to analyze (default: .)\n\
             --config FILE   analysis config (default: <root>/analysis.toml)\n\
             --check         exit 1 when any diagnostic is found (CI gate)\n\
             --json          one JSON object per finding on stdout (file/line/rule/message)\n\
             --explain RULE  print the rationale behind a rule and exit\n\n\
             RULES: {}",
            at_analysis::rule_names().join(", ")
        );
        return ExitCode::SUCCESS;
    }

    if let Some(rule) = &cli.explain {
        return match at_analysis::explain(rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => usage(&format!(
                "no rule named `{rule}` — known: {}",
                at_analysis::rule_names().join(", ")
            )),
        };
    }

    let cfg = match at_analysis::config::load(&cli.config_path()) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("at-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    match at_analysis::analyze(&cli.root, &cfg) {
        Ok(diags) if diags.is_empty() => {
            if !cli.json {
                println!("at-analysis: clean — every configured invariant holds");
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                if cli.json {
                    println!("{}", diagnostic_json(d));
                } else {
                    println!("{d}");
                }
            }
            if !cli.json {
                println!(
                    "at-analysis: {} finding{} — run with --explain <rule> for rationale",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" }
                );
            }
            if cli.check {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// One finding as a single-line JSON object. Hand-rolled: the workspace
/// vendors no serializer, and the shape is four fixed keys.
fn diagnostic_json(d: &at_analysis::diagnostics::Diagnostic) -> String {
    format!(
        "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
        json_str(&d.file),
        d.line,
        json_str(&d.rule),
        json_str(&d.message),
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("at-analysis: {problem} (try --help)");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn default_config_resolves_under_root() {
        let cli = parse(&["--root", "crates/foo"]);
        assert_eq!(cli.config_path(), PathBuf::from("crates/foo/analysis.toml"));
        let cli = parse(&[]);
        assert_eq!(cli.config_path(), PathBuf::from("./analysis.toml"));
    }

    #[test]
    fn explicit_config_is_taken_verbatim() {
        let cli = parse(&["--root", "crates/foo", "--config", "other/analysis.toml"]);
        assert_eq!(cli.config_path(), PathBuf::from("other/analysis.toml"));
    }

    #[test]
    fn flags_parse_and_unknowns_are_errors() {
        let cli = parse(&["--check", "--json"]);
        assert!(cli.check && cli.json);
        assert!(Cli::parse(["--bogus".to_string()]).is_err());
        assert!(Cli::parse(["--root".to_string()]).is_err(), "missing value");
    }

    #[test]
    fn json_escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\n\t"), "\"x\\n\\t\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn diagnostic_json_shape() {
        let d = at_analysis::diagnostics::Diagnostic::new(
            "a/b.rs",
            7,
            "lock-order",
            "acquiring `b` while holding `a`",
        );
        assert_eq!(
            diagnostic_json(&d),
            "{\"file\":\"a/b.rs\",\"line\":7,\"rule\":\"lock-order\",\
             \"message\":\"acquiring `b` while holding `a`\"}"
        );
    }
}

//! Diagnostic records: one finding per (file, line, rule), rendered as
//! `file:line: [rule] message` so editors and CI logs can jump to the
//! offending line.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: usize,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule: rule.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_clickable_location() {
        let d = Diagnostic::new("crates/core/src/service.rs", 42, "panic-freedom", "boom");
        assert_eq!(
            d.to_string(),
            "crates/core/src/service.rs:42: [panic-freedom] boom"
        );
    }

    #[test]
    fn sorts_by_file_then_line() {
        let mut v = [
            Diagnostic::new("b.rs", 1, "r", "m"),
            Diagnostic::new("a.rs", 9, "r", "m"),
            Diagnostic::new("a.rs", 2, "r", "m"),
        ];
        v.sort();
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[2].file, "b.rs");
    }
}

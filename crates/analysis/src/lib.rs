//! `at-analysis`: the workspace's invariant lint pass.
//!
//! The serving stack makes promises the type system cannot state: the
//! warm hot path never allocates, clock-free policies never read the
//! clock, the request path never panics, no lock site unwraps a
//! poisoned mutex, and panics are caught at exactly one audited
//! containment boundary — plus the concurrency contracts: locks are
//! acquired in one global order, nothing blocks while holding a guard,
//! and atomic memory orderings are justified outside the telemetry
//! counters. Each promise is cheap to keep and easy to erode one
//! innocuous edit at a time — so this crate machine-checks all of them
//! on every CI run, from a hand-rolled token scan (no external parser
//! dependencies; the build environment is offline).
//!
//! The pass is configured by `analysis.toml` at the workspace root: which
//! rule applies to which paths or `file::fn` items, which constructs are
//! forbidden, and which files are allowlisted. Violations print as
//! `file:line: [rule] message`; `--check` turns any finding into a
//! non-zero exit for CI; `--explain <rule>` prints the rationale.
//! Deliberate exceptions are annotated in the source with
//! `lint: allow(<rule>) reason=...` comments — mandatory reason,
//! malformed escapes are themselves findings.
//!
//! The static pass is paired with two dynamic probes in the root crate
//! (`tests/probe_alloc.rs`, `tests/probe_clock.rs`) that measure the
//! same contracts at runtime; see `ANALYSIS.md` for the full story.

pub mod config;
pub mod diagnostics;
pub mod escapes;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::rc::Rc;

use config::{Config, ConfigError, RuleConfig};
use diagnostics::Diagnostic;
use escapes::Escape;

/// A lexed, scope-resolved source file, shared across rules.
#[derive(Debug)]
pub struct FileData {
    /// Path relative to the analysis root, `/`-separated.
    pub rel: String,
    pub tokens: Vec<lexer::Token>,
    pub ctxs: Vec<scope::Context>,
    pub escapes: Vec<Escape>,
}

/// Fatal analysis failure (as opposed to findings): bad config, missing
/// configured path, unreadable file.
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at-analysis: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error(e.to_string())
    }
}

/// Run every enabled rule over the tree at `root`, returning sorted,
/// deduplicated diagnostics (empty = the workspace honours its
/// invariants).
pub fn analyze(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, Error> {
    let known_rules: Vec<String> = cfg.rules.iter().map(|r| r.name.clone()).collect();
    let mut cache: BTreeMap<String, Rc<FileData>> = BTreeMap::new();
    let mut out: Vec<Diagnostic> = Vec::new();

    for rule in cfg.rules.iter().filter(|r| r.enabled) {
        let rels = rule_scope(root, rule, &cfg.exclude)?;
        let mut files = Vec::with_capacity(rels.len());
        for rel in rels {
            files.push(load(root, &rel, &known_rules, &mut cache, &mut out)?);
        }
        match rule.name.as_str() {
            "hot-path-alloc" => rules::hot_path_alloc::run(rule, &files, &mut out)?,
            "clock-discipline" => rules::clock_discipline::run(rule, &files, &mut out)?,
            "panic-freedom" => rules::panic_freedom::run(rule, &files, &mut out)?,
            "lock-hygiene" => rules::lock_hygiene::run(rule, &files, &mut out)?,
            "unwind-containment" => rules::unwind_containment::run(rule, &files, &mut out)?,
            "lock-order" => rules::lock_order::run(rule, &files, &mut out)?,
            "blocking-while-locked" => rules::blocking_while_locked::run(rule, &files, &mut out)?,
            "atomic-discipline" => rules::atomic_discipline::run(rule, &files, &mut out)?,
            other => {
                return Err(Error(format!(
                    "[rules.{other}] has no implementation — known rules: \
                     hot-path-alloc, clock-discipline, panic-freedom, lock-hygiene, \
                     unwind-containment, lock-order, blocking-while-locked, \
                     atomic-discipline"
                )))
            }
        }
    }

    out.sort();
    out.dedup();
    Ok(out)
}

/// The set of relative file paths a rule scans.
fn rule_scope(root: &Path, rule: &RuleConfig, exclude: &[String]) -> Result<Vec<String>, Error> {
    if !rule.items.is_empty() {
        // Item-scoped rule: exactly the files the items name.
        let mut rels: Vec<String> = Vec::new();
        for item in &rule.items {
            let Some((file, _fn)) = item.rsplit_once("::") else {
                return Err(Error(format!(
                    "[rules.{}] item `{item}` is not of the form `path/file.rs::fn`",
                    rule.name
                )));
            };
            if !root.join(file).is_file() {
                return Err(Error(format!(
                    "[rules.{}] item `{item}` names a file that does not exist — stale config?",
                    rule.name
                )));
            }
            if !rels.iter().any(|r| r == file) {
                rels.push(file.to_string());
            }
        }
        return Ok(rels);
    }
    let mut rels = Vec::new();
    for prefix in &rule.paths {
        let dir = root.join(prefix);
        if !dir.is_dir() {
            return Err(Error(format!(
                "[rules.{}] path `{prefix}` is not a directory under {}",
                rule.name,
                root.display()
            )));
        }
        walk_rs(&dir, root, exclude, &mut rels)?;
    }
    rels.retain(|rel| !rule.allow.iter().any(|a| a == rel));
    rels.sort();
    rels.dedup();
    Ok(rels)
}

/// Recursively collect `.rs` files under `dir` as root-relative paths,
/// skipping excluded prefixes.
fn walk_rs(
    dir: &Path,
    root: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), Error> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| Error(format!("cannot read {}: {e}", dir.display())))?
        .collect::<Result<_, _>>()
        .map_err(|e| Error(format!("cannot read {}: {e}", dir.display())))?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if excluded(&rel, exclude) {
            continue;
        }
        if path.is_dir() {
            walk_rs(&path, root, exclude, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn excluded(rel: &str, exclude: &[String]) -> bool {
    exclude.iter().any(|p| {
        rel == p || (rel.starts_with(p.as_str()) && rel.as_bytes().get(p.len()) == Some(&b'/'))
    })
}

/// Load (or reuse) a file's token/scope/escape data; malformed escape
/// directives surface as `lint-escape` diagnostics exactly once.
fn load(
    root: &Path,
    rel: &str,
    known_rules: &[String],
    cache: &mut BTreeMap<String, Rc<FileData>>,
    out: &mut Vec<Diagnostic>,
) -> Result<Rc<FileData>, Error> {
    if let Some(hit) = cache.get(rel) {
        return Ok(hit.clone());
    }
    let path = root.join(rel);
    let src = std::fs::read_to_string(&path)
        .map_err(|e| Error(format!("cannot read {}: {e}", path.display())))?;
    let lexed = lexer::lex(&src);
    let ctxs = scope::contexts(&lexed.tokens);
    let scan = escapes::scan(&lexed.comments, known_rules);
    for (line, problem) in &scan.malformed {
        out.push(Diagnostic::new(
            rel,
            *line,
            "lint-escape",
            format!("malformed escape directive: {problem}"),
        ));
    }
    let data = Rc::new(FileData {
        rel: rel.to_string(),
        tokens: lexed.tokens,
        ctxs,
        escapes: scan.escapes,
    });
    cache.insert(rel.to_string(), data.clone());
    Ok(data)
}

/// The rationale text behind `--explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    match rule {
        rules::hot_path_alloc::NAME => Some(rules::hot_path_alloc::EXPLAIN),
        rules::clock_discipline::NAME => Some(rules::clock_discipline::EXPLAIN),
        rules::panic_freedom::NAME => Some(rules::panic_freedom::EXPLAIN),
        rules::lock_hygiene::NAME => Some(rules::lock_hygiene::EXPLAIN),
        rules::unwind_containment::NAME => Some(rules::unwind_containment::EXPLAIN),
        rules::lock_order::NAME => Some(rules::lock_order::EXPLAIN),
        rules::blocking_while_locked::NAME => Some(rules::blocking_while_locked::EXPLAIN),
        rules::atomic_discipline::NAME => Some(rules::atomic_discipline::EXPLAIN),
        "lint-escape" => Some(
            "lint-escape: escape directives must be well-formed.\n\n\
             `lint: allow(<rule>) reason=<why>` suppresses one rule on its own\n\
             line or the line below. The rule must be configured and the reason\n\
             non-empty; anything else is reported so the escape hatch cannot\n\
             silently rot into a blanket mute.",
        ),
        _ => None,
    }
}

/// Names a caller can pass to [`explain`].
pub fn rule_names() -> &'static [&'static str] {
    &[
        rules::hot_path_alloc::NAME,
        rules::clock_discipline::NAME,
        rules::panic_freedom::NAME,
        rules::lock_hygiene::NAME,
        rules::unwind_containment::NAME,
        rules::lock_order::NAME,
        rules::blocking_while_locked::NAME,
        rules::atomic_discipline::NAME,
        "lint-escape",
    ]
}

//! `analysis.toml` loading: a minimal TOML-subset parser (tables, string
//! / bool / string-array values, `#` comments, multi-line arrays) plus
//! the typed [`Config`] the rules consume. The workspace vendors no TOML
//! crate, and the subset here is all the config format uses.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parsed, validated analysis configuration.
#[derive(Debug, Default)]
pub struct Config {
    /// Path prefixes (relative to the analysis root) never scanned.
    pub exclude: Vec<String>,
    /// Per-rule configuration, in file order.
    pub rules: Vec<RuleConfig>,
}

/// Configuration of a single rule section `[rules.<name>]`.
#[derive(Debug, Default)]
pub struct RuleConfig {
    pub name: String,
    pub enabled: bool,
    /// Directory prefixes to scan (path-scoped rules).
    pub paths: Vec<String>,
    /// Files exempt from the rule (e.g. the clock gateway itself).
    pub allow: Vec<String>,
    /// Forbidden construct names, resolved by the rules to token patterns.
    pub forbid: Vec<String>,
    /// `file::fn` hot items (item-scoped rules); `fn` may end in `*`.
    pub items: Vec<String>,
    /// Whether the rule also applies inside `#[test]` / `#[cfg(test)]`.
    pub include_tests: bool,
    /// Guard-acquisition constructs (lock-order / blocking-while-locked):
    /// `.lock`-style primitives plus the workspace's named lock-helper
    /// methods (`.state`, `.window`, ...).
    pub acquire: Vec<String>,
    /// Telemetry-counter names allowed to use relaxed atomics without a
    /// per-site justification (atomic-discipline).
    pub counters: Vec<String>,
}

#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    List(Vec<String>),
}

type Tables = BTreeMap<String, BTreeMap<String, Value>>;

/// Load and validate a config file.
pub fn load(path: &Path) -> Result<Config, ConfigError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
    parse(&text)
}

/// Parse config text. Public for the fixture corpus tests.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let tables = parse_tables(text)?;
    let mut cfg = Config::default();

    for (table, entries) in &tables {
        if table == "scan" {
            for (key, value) in entries {
                match key.as_str() {
                    "exclude" => cfg.exclude = expect_list(table, key, value)?,
                    _ => return Err(unknown_key(table, key)),
                }
            }
        } else if let Some(rule_name) = table.strip_prefix("rules.") {
            let mut rule = RuleConfig {
                name: rule_name.to_string(),
                enabled: true,
                ..RuleConfig::default()
            };
            for (key, value) in entries {
                match key.as_str() {
                    "enabled" => rule.enabled = expect_bool(table, key, value)?,
                    "include-tests" => rule.include_tests = expect_bool(table, key, value)?,
                    "paths" => rule.paths = expect_list(table, key, value)?,
                    "allow" => rule.allow = expect_list(table, key, value)?,
                    "forbid" => rule.forbid = expect_list(table, key, value)?,
                    "items" => rule.items = expect_list(table, key, value)?,
                    "acquire" => rule.acquire = expect_list(table, key, value)?,
                    "counters" => rule.counters = expect_list(table, key, value)?,
                    _ => return Err(unknown_key(table, key)),
                }
            }
            cfg.rules.push(rule);
        } else {
            return Err(ConfigError(format!("unknown table [{table}]")));
        }
    }
    if cfg.rules.is_empty() {
        return Err(ConfigError("no [rules.*] tables configured".into()));
    }
    Ok(cfg)
}

fn unknown_key(table: &str, key: &str) -> ConfigError {
    ConfigError(format!("unknown key `{key}` in [{table}]"))
}

fn expect_list(table: &str, key: &str, v: &Value) -> Result<Vec<String>, ConfigError> {
    match v {
        Value::List(items) => Ok(items.clone()),
        _ => Err(ConfigError(format!(
            "`{key}` in [{table}] must be an array of strings"
        ))),
    }
}

fn expect_bool(table: &str, key: &str, v: &Value) -> Result<bool, ConfigError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(ConfigError(format!(
            "`{key}` in [{table}] must be true or false"
        ))),
    }
}

/// Split text into `[table] -> key -> value` maps. Arrays may span lines;
/// `#` starts a comment outside strings.
fn parse_tables(text: &str) -> Result<Tables, ConfigError> {
    let mut tables = Tables::new();
    let mut current: Option<String> = None;
    let mut lines = text.lines().enumerate().peekable();

    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(ConfigError(format!(
                    "line {}: malformed table header",
                    lineno + 1
                )));
            };
            let name = name.trim().to_string();
            tables.entry(name.clone()).or_default();
            current = Some(name);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ConfigError(format!(
                "line {}: expected `key = value`, got `{line}`",
                lineno + 1
            )));
        };
        let key = line[..eq].trim().to_string();
        let mut value_text = line[eq + 1..].trim().to_string();
        // Multi-line array: keep consuming lines until brackets balance
        // outside string literals.
        while value_text.starts_with('[') && !brackets_balanced(&value_text) {
            let Some((_, next)) = lines.next() else {
                return Err(ConfigError(format!(
                    "line {}: unterminated array for `{key}`",
                    lineno + 1
                )));
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text)
            .ok_or_else(|| ConfigError(format!("line {}: bad value for `{key}`", lineno + 1)))?;
        let table = current.clone().ok_or_else(|| {
            ConfigError(format!("line {}: `{key}` outside any table", lineno + 1))
        })?;
        tables.entry(table).or_default().insert(key, value);
    }
    Ok(tables)
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn parse_value(s: &str) -> Option<Value> {
    let s = s.trim();
    match s {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    if let Some(body) = s.strip_prefix('"') {
        return body.strip_suffix('"').map(|v| Value::Str(v.to_string()));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body.strip_suffix(']')?;
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(v) => items.push(v),
                _ => return None,
            }
        }
        return Some(Value::List(items));
    }
    None
}

/// Split on commas outside string literals.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_scan_and_multiline_arrays() {
        let cfg = parse(
            r#"
# top comment
[scan]
exclude = ["vendor", "target"]

[rules.hot-path-alloc]
forbid = [
    "Vec::new",   # trailing comment
    "vec!",
]
items = ["crates/a/src/x.rs::hot"]

[rules.lock-hygiene]
enabled = true
include-tests = true
paths = ["crates"]
forbid = [".lock().unwrap"]
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.exclude, vec!["vendor", "target"]);
        assert_eq!(cfg.rules.len(), 2);
        let hot = &cfg.rules[0];
        assert_eq!(hot.name, "hot-path-alloc");
        assert_eq!(hot.forbid, vec!["Vec::new", "vec!"]);
        assert_eq!(hot.items, vec!["crates/a/src/x.rs::hot"]);
        assert!(!hot.include_tests);
        let lock = &cfg.rules[1];
        assert!(lock.include_tests);
        assert!(lock.enabled);
    }

    #[test]
    fn parses_acquire_and_counters_lists() {
        let cfg = parse(
            "[rules.lock-order]\nacquire = [\".lock\", \".state\"]\n\
             [rules.atomic-discipline]\ncounters = [\"completed\"]\n",
        )
        .expect("valid config");
        assert_eq!(cfg.rules[0].counters, vec!["completed"]);
        assert_eq!(cfg.rules[1].acquire, vec![".lock", ".state"]);
    }

    #[test]
    fn rejects_unknown_keys_and_tables() {
        assert!(parse("[rules.x]\nbogus = true\n").is_err());
        assert!(parse("[mystery]\nk = \"v\"\n").is_err());
        assert!(parse("# empty\n").is_err(), "no rules at all is an error");
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let cfg = parse("[rules.r]\nforbid = [\"a#b\"]\n").expect("valid");
        assert_eq!(cfg.rules[0].forbid, vec!["a#b"]);
    }
}

//! A deliberately small Rust lexer: just enough token structure for the
//! invariant rules to match on, with line numbers for diagnostics and line
//! comments captured separately (escape directives live in comments).
//!
//! This is not a general Rust frontend. It handles the constructs that
//! actually occur in this workspace — line and nested block comments, raw
//! and byte strings, char-vs-lifetime disambiguation, numeric literals
//! that do not swallow range dots — and treats every remaining character
//! as single-character punctuation. The rules never need more: each
//! forbidden construct is a short token sequence.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `Vec`, `unwrap`, ...).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct(char),
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0xff`, `1_000`, `2.5e-3`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// A `//` comment (regular or doc) with its 1-based line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// Token and comment streams for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and line comments. Never fails: unrecognised
/// bytes become punctuation, unterminated literals run to end of input.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. `///` and `//!` docs): captured for the
        // escape-directive scanner.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, nested per Rust rules; skipped entirely.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes must be checked before generic
        // identifiers: `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`.
        if (c == 'r' || c == 'b') && is_raw_or_byte_string(&chars, i) {
            let tok_line = line;
            i += skip_string_with_prefix(&chars, i, &mut line);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                line: tok_line,
            });
            continue;
        }
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            let tok_line = line;
            i += 1 + skip_char_literal(&chars, i + 1);
            out.tokens.push(Token {
                kind: TokenKind::Char,
                line: tok_line,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(chars[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let tok_line = line;
            i += skip_number(&chars, i);
            out.tokens.push(Token {
                kind: TokenKind::Num,
                line: tok_line,
            });
            continue;
        }
        if c == '"' {
            let tok_line = line;
            i += skip_plain_string(&chars, i, &mut line);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                line: tok_line,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime iff an identifier follows and is NOT closed by a
            // quote (`'a,` is a lifetime; `'a'` is a char literal).
            let next = chars.get(i + 1).copied().unwrap_or(' ');
            if (next.is_alphabetic() || next == '_') && chars.get(i + 2) != Some(&'\'') {
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    line,
                });
            } else {
                let tok_line = line;
                i += skip_char_literal(&chars, i);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    line: tok_line,
                });
            }
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// Does `r...` / `b...` / `br...` at `i` start a raw or byte string?
fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && chars.get(j) == Some(&'"')
}

/// Skip a (raw/byte) string starting at its prefix; returns chars consumed.
fn skip_string_with_prefix(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    let mut hashes = 0;
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
    }
    // Opening quote.
    i += 1;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if !raw && c == '\\' {
            i += 2;
            continue;
        }
        if c == '"'
            && (!raw
                || chars[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&h| h == '#')
                    .count()
                    == hashes)
        {
            i += 1 + if raw { hashes } else { 0 };
            break;
        }
        i += 1;
    }
    i - start
}

fn skip_plain_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    let n = chars.len();
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => {
                i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i - start
}

fn skip_char_literal(chars: &[char], start: usize) -> usize {
    // `'` then either an escape (`\n`, `\u{1F600}`, `\'`) or one char,
    // then the closing `'`.
    let mut i = start + 1;
    let n = chars.len();
    if i < n && chars[i] == '\\' {
        i += 2;
        if i <= n && chars.get(i - 1) == Some(&'u') && chars.get(i) == Some(&'{') {
            while i < n && chars[i] != '}' {
                i += 1;
            }
            i += 1;
        }
    } else if i < n {
        i += 1;
    }
    if i < n && chars[i] == '\'' {
        i += 1;
    }
    i - start
}

/// Skip a numeric literal without swallowing range dots: a `.` is part of
/// the number only when a digit follows (`1.5` yes, `0..n` no).
fn skip_number(chars: &[char], start: usize) -> usize {
    let mut i = start;
    let n = chars.len();
    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    if i < n && chars[i] == '.' && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    // Exponent with a sign (`1e-3`); signless exponents are consumed by
    // the alphanumeric sweep above.
    if i < n
        && (chars[i] == '+' || chars[i] == '-')
        && chars
            .get(i.wrapping_sub(1))
            .is_some_and(|c| *c == 'e' || *c == 'E')
        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
    {
        i += 1;
        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
            i += 1;
        }
    }
    i - start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("let x = 1; // lint: allow(panic-freedom) reason=demo\nfn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("lint: allow"));
        assert_eq!(l.comments[0].line, 1);
        assert!(idents("// Vec::new\nx").iter().all(|s| s != "Vec"));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("/* a /* b */ c\n d */ fn after() {}");
        assert_eq!(l.tokens[0].kind, TokenKind::Ident("fn".into()));
        assert_eq!(l.tokens[0].line, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        // `Vec::new` inside any string flavour must not produce idents.
        for src in [
            r#"let s = "Vec::new()";"#,
            r##"let s = r#"Vec::new()"#;"##,
            r#"let s = b"Vec::new()";"#,
        ] {
            assert!(idents(src).iter().all(|s| s != "Vec"), "leaked from {src}");
        }
    }

    #[test]
    fn range_dots_stay_punctuation() {
        let l = lex("(0..n).collect()");
        let dots = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 3, "two range dots plus the method dot");
        assert!(idents("(0..n).collect()").contains(&"collect".to_string()));
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let l = lex("let s = \"a\nb\nc\";\nfn f() {}");
        let f = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("fn".into()))
            .expect("fn token");
        assert_eq!(f.line, 4);
    }
}

//! The escape hatch: a comment of the form
//!
//! ```text
//! // lint: allow(<rule>) reason=<why this site is exempt>
//! ```
//!
//! (written as a `//` comment) on the flagged line or the line directly
//! above it suppresses that rule there. The reason is mandatory and must
//! be non-empty — an escape without a justification, naming an
//! unconfigured rule, or otherwise malformed is itself reported (rule
//! `lint-escape`), so the hatch cannot silently rot.
//!
//! A comment only counts as a directive when its content *starts* with
//! `lint:` after the comment markers; prose that merely mentions the
//! syntax (like this doc) is ignored.

use crate::lexer::Comment;

/// A well-formed suppression directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Escape {
    pub line: usize,
    pub rule: String,
}

/// Result of scanning one file's comments.
#[derive(Debug, Default)]
pub struct EscapeScan {
    pub escapes: Vec<Escape>,
    /// `(line, problem)` for directives that fail to parse.
    pub malformed: Vec<(usize, String)>,
}

/// Scan comments for directives; `known_rules` are the configured rule
/// names an escape may reference.
pub fn scan(comments: &[Comment], known_rules: &[String]) -> EscapeScan {
    let mut out = EscapeScan::default();
    for c in comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        match parse_directive(rest.trim_start(), known_rules) {
            Ok(rule) => out.escapes.push(Escape { line: c.line, rule }),
            Err(problem) => out.malformed.push((c.line, problem)),
        }
    }
    out
}

fn parse_directive(rest: &str, known_rules: &[String]) -> Result<String, String> {
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>)` after `lint:`".into());
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(`".into());
    };
    let rule = args[..close].trim().to_string();
    if !known_rules.contains(&rule) {
        return Err(format!("`{rule}` is not a configured rule"));
    }
    let tail = args[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("reason=") else {
        return Err("missing `reason=` — every escape must say why".into());
    };
    if reason.trim().is_empty() {
        return Err("empty reason — every escape must say why".into());
    }
    Ok(rule)
}

/// Is a diagnostic of `rule` at `line` suppressed? Directives cover their
/// own line and the line directly below (i.e. a diagnostic looks at its
/// line and the one above).
pub fn suppressed(escapes: &[Escape], rule: &str, line: usize) -> bool {
    escapes
        .iter()
        .any(|e| e.rule == rule && (e.line == line || e.line + 1 == line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> Vec<String> {
        vec!["panic-freedom".into(), "lock-hygiene".into()]
    }

    fn comment(line: usize, text: &str) -> Comment {
        Comment {
            line,
            text: text.to_string(),
        }
    }

    #[test]
    fn well_formed_escape_is_recorded() {
        let s = scan(
            &[comment(
                7,
                "// lint: allow(panic-freedom) reason=test harness",
            )],
            &rules(),
        );
        assert_eq!(
            s.escapes,
            vec![Escape {
                line: 7,
                rule: "panic-freedom".into()
            }]
        );
        assert!(s.malformed.is_empty());
        assert!(suppressed(&s.escapes, "panic-freedom", 7), "same line");
        assert!(suppressed(&s.escapes, "panic-freedom", 8), "line below");
        assert!(!suppressed(&s.escapes, "panic-freedom", 9));
        assert!(!suppressed(&s.escapes, "lock-hygiene", 7), "other rule");
    }

    #[test]
    fn missing_or_empty_reason_is_malformed() {
        for text in [
            "// lint: allow(panic-freedom)",
            "// lint: allow(panic-freedom) reason=",
            "// lint: allow(panic-freedom) reason=   ",
        ] {
            let s = scan(&[comment(1, text)], &rules());
            assert!(s.escapes.is_empty(), "{text}");
            assert_eq!(s.malformed.len(), 1, "{text}");
        }
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let s = scan(&[comment(1, "// lint: allow(speling) reason=x")], &rules());
        assert_eq!(s.malformed.len(), 1);
        assert!(s.malformed[0].1.contains("not a configured rule"));
    }

    #[test]
    fn prose_mentioning_the_syntax_is_ignored() {
        let s = scan(
            &[
                comment(1, "/// Use `lint: allow(<rule>) reason=...` to escape."),
                comment(
                    2,
                    "// the lint: allow mechanism is documented in ANALYSIS.md",
                ),
            ],
            &rules(),
        );
        // Line 1 does not *start* with `lint:` (backtick first); line 2
        // starts with "the".
        assert!(s.escapes.is_empty());
        assert!(s.malformed.is_empty());
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let s = scan(
            &[comment(
                3,
                "//! lint: allow(lock-hygiene) reason=module-wide demo",
            )],
            &rules(),
        );
        assert_eq!(s.escapes.len(), 1);
    }
}

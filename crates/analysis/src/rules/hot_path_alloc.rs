//! **hot-path-alloc** — the zero-allocation contract.
//!
//! The serving stack's steady-state hot path (Pearson scoring, stage-2
//! best-first improvement, synopsis processing, the output pool) must not
//! allocate per request: storage comes from thread-local scratch and
//! recycled [`OutputPool`] buffers, which is what makes warm-server tail
//! latency flat. This rule pins that property: inside the functions
//! listed as `items` in `analysis.toml` (matched by `file.rs::fn`, with a
//! trailing `*` glob on the fn name), allocating constructs from the
//! `forbid` list are diagnostics. Test code (`#[test]` / `#[cfg(test)]`)
//! is exempt; deliberate cold paths escape with
//! `lint: allow(hot-path-alloc) reason=...`.

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::escapes;
use crate::rules::{fn_matches, is_index_bracket, matcher_for, seq_matches, Matcher};
use crate::FileData;

pub const NAME: &str = "hot-path-alloc";

pub const EXPLAIN: &str = "\
hot-path-alloc: no allocation in hot-path items.

The warm serving path must not touch the allocator: correlation scratch is
thread-local, output buffers are recycled through OutputPool, and ranking
is in place. A stray `Vec::new` / `vec![]` / `.collect()` / `format!` in a
hot function reintroduces a per-request allocation (and potential lock
contention in the allocator) exactly where tail latency is won or lost.

Scope: the `items` list in analysis.toml (`path/to/file.rs::fn_name`,
trailing `*` globs the fn name). Closures inside a hot function are hot;
`#[test]` / `#[cfg(test)]` code is exempt. A deliberate cold path (e.g. a
pool-miss fallback that allocates once per buffer ever in flight) escapes
with `lint: allow(hot-path-alloc) reason=...` — the dynamic allocation
probe (tests/probe_alloc.rs) then proves those paths stay cold.";

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    let matchers: Vec<(String, Matcher)> = rule
        .forbid
        .iter()
        .map(|name| matcher_for(name).map(|m| (name.clone(), m)))
        .collect::<Result<_, _>>()?;

    for file in files {
        // Fn patterns whose items name this file.
        let patterns: Vec<&str> = rule
            .items
            .iter()
            .filter_map(|item| item.rsplit_once("::"))
            .filter(|(path, _)| *path == file.rel)
            .map(|(_, pat)| pat)
            .collect();
        if patterns.is_empty() {
            continue;
        }
        for i in 0..file.tokens.len() {
            let ctx = &file.ctxs[i];
            if ctx.in_test {
                continue;
            }
            let Some(fn_name) = &ctx.fn_name else {
                continue;
            };
            if !patterns.iter().any(|p| fn_matches(p, fn_name)) {
                continue;
            }
            for (name, m) in &matchers {
                let hit = match m {
                    Matcher::Seq(p) => seq_matches(&file.tokens, i, p),
                    Matcher::Indexing => is_index_bracket(&file.tokens, i),
                };
                if !hit {
                    continue;
                }
                let line = file.tokens[i].line;
                if escapes::suppressed(&file.escapes, NAME, line) {
                    continue;
                }
                out.push(Diagnostic::new(
                    &file.rel,
                    line,
                    NAME,
                    format!(
                        "allocating construct `{name}` in hot item `{fn_name}` — reuse \
                         scratch/pooled buffers, or escape a deliberate cold path \
                         (see ANALYSIS.md)"
                    ),
                ));
            }
        }
    }
    Ok(())
}

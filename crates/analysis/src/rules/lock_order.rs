//! `lock-order`: build the workspace lock-acquisition graph (lock B
//! acquired while a guard for lock A is live => edge A -> B) and flag
//! every acquisition site whose edge participates in a cycle. Two
//! functions locking `{a, b}` in opposite orders deadlock under the
//! right interleaving; a consistent global order makes that impossible.
//! Each diagnostic names both conflicting chains with `file:line` per
//! edge so the fix (reorder or drop early) is mechanical.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::escapes;
use crate::rules::guards;
use crate::FileData;

pub const NAME: &str = "lock-order";

pub const EXPLAIN: &str = "Two threads acquiring the same pair of locks in opposite orders can \
each hold one and wait forever for the other; the latency budget does not survive a deadlocked \
dispatcher. This rule replays every function's guard scopes, records which lock is acquired \
while another guard is live, and rejects any cycle in the resulting acquisition graph. Lock \
identity is name-based (field or guard-helper method), which over-approximates across \
instances; justified single-lock-at-a-time idioms (the steal ring) stay clean because they \
drop the first guard before taking the next.";

#[derive(Debug, Clone)]
struct Site {
    rel: String,
    line: usize,
    held_line: usize,
}

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    let acquire = guards::acquire_matchers(rule)?;

    // Aggregate edges across the whole scanned set: cycles typically span
    // files (submit in one, steal in another).
    let mut edge_sites: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    let mut edge_files: BTreeMap<(String, String), Vec<std::rc::Rc<FileData>>> = BTreeMap::new();
    for file in files {
        let walk = guards::walk(file, &acquire, &[], rule.include_tests);
        for e in walk.edges {
            let key = (e.held.clone(), e.acquired.clone());
            edge_sites.entry(key.clone()).or_default().push(Site {
                rel: file.rel.clone(),
                line: e.line,
                held_line: e.held_line,
            });
            edge_files.entry(key).or_default().push(file.clone());
        }
    }

    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (held, acquired) in edge_sites.keys() {
        adj.entry(held).or_default().insert(acquired);
    }

    for ((held, acquired), sites) in &edge_sites {
        // Edge held->acquired is cyclic iff `acquired` reaches `held`.
        let Some(path) = reach(&adj, acquired, held) else {
            continue;
        };
        let chain = describe_chain(&path, &edge_sites);
        for (site, file) in sites
            .iter()
            .zip(&edge_files[&(held.clone(), acquired.clone())])
        {
            if escapes::suppressed(&file.escapes, NAME, site.line) {
                continue;
            }
            out.push(Diagnostic::new(
                &site.rel,
                site.line,
                NAME,
                format!(
                    "acquiring `{acquired}` while holding `{held}` (held since {}:{}) conflicts \
                     with the reverse chain {chain}; pick one global order or drop the first \
                     guard before taking the second",
                    site.rel, site.held_line,
                ),
            ));
        }
    }
    Ok(())
}

/// Shortest path from `from` to `to` over the acquisition graph, as the
/// list of visited nodes (`from == to` yields `[from]`: a self-edge is a
/// re-acquisition deadlock on std's non-reentrant Mutex).
fn reach<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cur = node;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(node).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Render `a -> b (file:line), b -> c (file:line)` for the return path.
fn describe_chain(path: &[&str], sites: &BTreeMap<(String, String), Vec<Site>>) -> String {
    if path.len() < 2 {
        let lock = path.first().copied().unwrap_or("?");
        let site = sites
            .get(&(lock.to_string(), lock.to_string()))
            .and_then(|s| s.first());
        return match site {
            Some(s) => format!("`{lock}` -> `{lock}` ({}:{})", s.rel, s.line),
            None => format!("`{lock}` -> `{lock}`"),
        };
    }
    path.windows(2)
        .map(|w| {
            let key = (w[0].to_string(), w[1].to_string());
            match sites.get(&key).and_then(|s| s.first()) {
                Some(s) => format!("`{}` -> `{}` ({}:{})", w[0], w[1], s.rel, s.line),
                None => format!("`{}` -> `{}`", w[0], w[1]),
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escapes;
    use crate::lexer::lex;
    use crate::scope;
    use std::rc::Rc;

    fn file(rel: &str, src: &str) -> Rc<FileData> {
        let lexed = lex(src);
        let ctxs = scope::contexts(&lexed.tokens);
        let scan = escapes::scan(&lexed.comments, &[NAME.to_string()]);
        Rc::new(FileData {
            rel: rel.into(),
            tokens: lexed.tokens,
            ctxs,
            escapes: scan.escapes,
        })
    }

    fn rule() -> RuleConfig {
        RuleConfig {
            name: NAME.into(),
            enabled: true,
            acquire: vec![".lock".into()],
            ..RuleConfig::default()
        }
    }

    #[test]
    fn opposite_order_cycle_is_flagged_at_both_sites() {
        let files = vec![
            file(
                "ab.rs",
                "fn ab(x: &X) { let a = x.a.lock(); let b = x.b.lock(); }",
            ),
            file(
                "ba.rs",
                "fn ba(x: &X) { let b = x.b.lock(); let a = x.a.lock(); }",
            ),
        ];
        let mut out = Vec::new();
        run(&rule(), &files, &mut out).expect("runs");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|d| d.file == "ab.rs"));
        assert!(out.iter().any(|d| d.file == "ba.rs"));
        assert!(
            out[0].message.contains("reverse chain"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let files = vec![
            file(
                "one.rs",
                "fn f(x: &X) { let a = x.a.lock(); let b = x.b.lock(); }",
            ),
            file(
                "two.rs",
                "fn g(x: &X) { let a = x.a.lock(); let b = x.b.lock(); }",
            ),
        ];
        let mut out = Vec::new();
        run(&rule(), &files, &mut out).expect("runs");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn three_lock_cycle_is_found() {
        let files = vec![file(
            "tri.rs",
            "fn f(x: &X) { let a = x.a.lock(); let b = x.b.lock(); }\n\
             fn g(x: &X) { let b = x.b.lock(); let c = x.c.lock(); }\n\
             fn h(x: &X) { let c = x.c.lock(); let a = x.a.lock(); }",
        )];
        let mut out = Vec::new();
        run(&rule(), &files, &mut out).expect("runs");
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn self_reacquisition_is_flagged() {
        let files = vec![file(
            "re.rs",
            "fn f(x: &X) { let a = x.a.lock(); let again = x.a.lock(); }",
        )];
        let mut out = Vec::new();
        run(&rule(), &files, &mut out).expect("runs");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn escape_suppresses_a_cyclic_site() {
        let files = vec![
            file(
                "ab.rs",
                "fn ab(x: &X) { let a = x.a.lock();\n\
                 // lint: allow(lock-order) reason=b is only probed, never held\n\
                 let b = x.b.lock(); }",
            ),
            file(
                "ba.rs",
                "fn ba(x: &X) { let b = x.b.lock(); let a = x.a.lock(); }",
            ),
        ];
        let mut out = Vec::new();
        run(&rule(), &files, &mut out).expect("runs");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "ba.rs");
    }
}

//! **lock-hygiene** — no `.lock().unwrap()` panic cascades.
//!
//! `Mutex::lock().unwrap()` converts one panicking lock holder into a
//! panic at every later lock site — the classic poisoned-mutex cascade.
//! Every mutex in this workspace instead recovers explicitly: either
//! `unwrap_or_else(|p| p.into_inner())` where the guarded state cannot be
//! torn (an `Option` swap, a stats window), or a dedicated wrapper that
//! repairs state on poison (`OutputPool::free_list` discards the free
//! list). This rule flags the raw idiom everywhere, *including tests* —
//! a test that wants to poison a lock on purpose documents it with
//! `lint: allow(lock-hygiene) reason=...`.

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::rules::scan_paths;
use crate::FileData;

pub const NAME: &str = "lock-hygiene";

pub const EXPLAIN: &str = "\
lock-hygiene: recover from poisoned locks, never unwrap them.

A worker that panics while holding a mutex poisons it; `.lock().unwrap()`
then re-panics in every other thread touching that lock, cascading one
failure across the server. Each lock site must instead decide what poison
means for *its* data and recover: `unwrap_or_else(|p| p.into_inner())`
when the guarded state cannot be observably torn, or a repairing wrapper
(see OutputPool::free_list, which discards the recycled buffers and
continues cold).

The same goes for every guard-returning accessor: `try_lock()`,
`RwLock::read()`/`write()`, and their `.expect(..)` variants are matched
too — an expect message does not make the cascade better.

Scope: all first-party crates, tests included — `include-tests = true` in
analysis.toml — because a cascade bug in a test helper still hides real
failures. A test that deliberately poisons a lock to exercise recovery
carries `lint: allow(lock-hygiene) reason=...`.";

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    scan_paths(rule, NAME, files, out, |name| {
        format!(
            "`{name}` cascades panics across lock sites — recover from poison \
             explicitly (unwrap_or_else(|p| p.into_inner()) or a repairing \
             wrapper; see ANALYSIS.md)"
        )
    })
}

//! The five invariant rules and their shared token-pattern machinery.
//!
//! Each forbidden construct named in `analysis.toml` resolves here to a
//! short token sequence (so `xs.collect::<Vec<_>>()` is caught through
//! its `. collect` prefix regardless of turbofish) or to the special
//! `indexing` matcher. Unknown construct names are config errors, not
//! silently-dead patterns.

pub mod atomic_discipline;
pub mod blocking_while_locked;
pub mod clock_discipline;
pub mod guards;
pub mod hot_path_alloc;
pub mod lock_hygiene;
pub mod lock_order;
pub mod panic_freedom;
pub mod unwind_containment;

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::escapes;
use crate::lexer::{Token, TokenKind};
use crate::FileData;

/// One element of a construct's token pattern.
#[derive(Debug, Clone, Copy)]
pub enum Pat {
    /// Exact identifier (maximal-munch lexing means `unwrap` never
    /// matches inside `unwrap_or`).
    I(&'static str),
    /// Exact punctuation character.
    P(char),
}

/// How a configured construct name is recognised.
#[derive(Debug, Clone)]
pub enum Matcher {
    Seq(Vec<Pat>),
    /// Bare `xs[i]` indexing (panic on out-of-bounds); heuristic over the
    /// token before `[`.
    Indexing,
}

/// Resolve a construct name from `analysis.toml` to its matcher.
pub fn matcher_for(name: &str) -> Result<Matcher, ConfigError> {
    use Pat::{I, P};
    let seq: &[Pat] = match name {
        "Vec::new" => &[I("Vec"), P(':'), P(':'), I("new")],
        "Vec::with_capacity" => &[I("Vec"), P(':'), P(':'), I("with_capacity")],
        "vec!" => &[I("vec"), P('!')],
        ".collect" => &[P('.'), I("collect")],
        ".to_vec" => &[P('.'), I("to_vec")],
        ".to_string" => &[P('.'), I("to_string")],
        ".to_owned" => &[P('.'), I("to_owned")],
        ".clone" => &[P('.'), I("clone")],
        "Box::new" => &[I("Box"), P(':'), P(':'), I("new")],
        "format!" => &[I("format"), P('!')],
        "String::from" => &[I("String"), P(':'), P(':'), I("from")],
        "String::new" => &[I("String"), P(':'), P(':'), I("new")],
        "Instant::now" => &[I("Instant"), P(':'), P(':'), I("now")],
        "SystemTime::now" => &[I("SystemTime"), P(':'), P(':'), I("now")],
        // The call paren keeps a struct field named `elapsed` legal.
        ".elapsed" => &[P('.'), I("elapsed"), P('(')],
        ".unwrap" => &[P('.'), I("unwrap")],
        ".expect" => &[P('.'), I("expect")],
        "panic!" => &[I("panic"), P('!')],
        "unreachable!" => &[I("unreachable"), P('!')],
        "todo!" => &[I("todo"), P('!')],
        "unimplemented!" => &[I("unimplemented"), P('!')],
        ".lock().unwrap" => &[P('.'), I("lock"), P('('), P(')'), P('.'), I("unwrap")],
        ".lock().expect" => &[P('.'), I("lock"), P('('), P(')'), P('.'), I("expect")],
        ".try_lock().unwrap" => &[P('.'), I("try_lock"), P('('), P(')'), P('.'), I("unwrap")],
        ".try_lock().expect" => &[P('.'), I("try_lock"), P('('), P(')'), P('.'), I("expect")],
        ".read().unwrap" => &[P('.'), I("read"), P('('), P(')'), P('.'), I("unwrap")],
        ".read().expect" => &[P('.'), I("read"), P('('), P(')'), P('.'), I("expect")],
        ".write().unwrap" => &[P('.'), I("write"), P('('), P(')'), P('.'), I("unwrap")],
        ".write().expect" => &[P('.'), I("write"), P('('), P(')'), P('.'), I("expect")],
        // Blocking constructs (blocking-while-locked). The call paren keeps
        // fields named `wait`/`recv` legal.
        ".wait" => &[P('.'), I("wait"), P('(')],
        ".wait_timeout" => &[P('.'), I("wait_timeout"), P('(')],
        ".recv" => &[P('.'), I("recv"), P('(')],
        ".recv_timeout" => &[P('.'), I("recv_timeout"), P('(')],
        ".join" => &[P('.'), I("join"), P('(')],
        ".submit" => &[P('.'), I("submit"), P('(')],
        "thread::sleep" => &[I("thread"), P(':'), P(':'), I("sleep")],
        // Bare identifiers: `std::panic::catch_unwind`, `use ...::catch_unwind`,
        // and direct calls all reduce to the one token.
        "catch_unwind" => &[I("catch_unwind")],
        "AssertUnwindSafe" => &[I("AssertUnwindSafe")],
        "indexing" => return Ok(Matcher::Indexing),
        _ => {
            return Err(ConfigError(format!(
                "unknown forbidden construct `{name}` — add it to rules::matcher_for"
            )))
        }
    };
    Ok(Matcher::Seq(seq.to_vec()))
}

/// Does `pats` match the token stream starting at `i`?
pub fn seq_matches(tokens: &[Token], i: usize, pats: &[Pat]) -> bool {
    if i + pats.len() > tokens.len() {
        return false;
    }
    pats.iter()
        .zip(&tokens[i..])
        .all(|(p, t)| match (p, &t.kind) {
            (Pat::I(name), TokenKind::Ident(s)) => s == name,
            (Pat::P(c), TokenKind::Punct(p)) => p == c,
            _ => false,
        })
}

/// Keywords that legitimately precede `[` without it being an index
/// expression (`&mut [T]`, `let [a, b] = ..`, `as [u8; 2]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Is `tokens[i]` the opening bracket of a bare index expression? True
/// when the preceding token could end an indexable expression: a
/// non-keyword identifier, a closing `)`/`]`, or a numeric literal
/// (tuple-field chains like `x.0[i]`).
pub fn is_index_bracket(tokens: &[Token], i: usize) -> bool {
    if !matches!(tokens[i].kind, TokenKind::Punct('[')) || i == 0 {
        return false;
    }
    match &tokens[i - 1].kind {
        TokenKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
        TokenKind::Punct(')') | TokenKind::Punct(']') => true,
        TokenKind::Num => true,
        _ => false,
    }
}

/// Shared engine for the path-scoped rules (clock-discipline,
/// panic-freedom, lock-hygiene): every token of every in-scope file is
/// tested against the rule's forbidden constructs; hits outside an
/// escape directive become diagnostics via `message`.
pub(crate) fn scan_paths(
    rule: &RuleConfig,
    rule_name: &str,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
    message: impl Fn(&str) -> String,
) -> Result<(), ConfigError> {
    let matchers: Vec<(String, Matcher)> = rule
        .forbid
        .iter()
        .map(|name| matcher_for(name).map(|m| (name.clone(), m)))
        .collect::<Result<_, _>>()?;

    for file in files {
        for i in 0..file.tokens.len() {
            if !rule.include_tests && file.ctxs[i].in_test {
                continue;
            }
            for (name, m) in &matchers {
                let hit = match m {
                    Matcher::Seq(p) => seq_matches(&file.tokens, i, p),
                    Matcher::Indexing => is_index_bracket(&file.tokens, i),
                };
                if !hit {
                    continue;
                }
                let line = file.tokens[i].line;
                if escapes::suppressed(&file.escapes, rule_name, line) {
                    continue;
                }
                out.push(Diagnostic::new(&file.rel, line, rule_name, message(name)));
            }
        }
    }
    Ok(())
}

/// Does `fn_name` match an item pattern (`exact` or `prefix*`)?
pub fn fn_matches(pattern: &str, fn_name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => fn_name.starts_with(prefix),
        None => fn_name == pattern,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn first_match(src: &str, construct: &str) -> Option<usize> {
        let toks = lex(src).tokens;
        let m = matcher_for(construct).expect("known construct");
        (0..toks.len()).find(|&i| match &m {
            Matcher::Seq(p) => seq_matches(&toks, i, p),
            Matcher::Indexing => is_index_bracket(&toks, i),
        })
    }

    #[test]
    fn collect_matches_with_and_without_turbofish() {
        assert!(first_match("let v = xs.iter().collect::<Vec<_>>();", ".collect").is_some());
        assert!(first_match("let v: Vec<_> = xs.iter().collect();", ".collect").is_some());
    }

    #[test]
    fn unwrap_does_not_match_unwrap_or() {
        assert!(first_match("x.unwrap_or(0)", ".unwrap").is_none());
        assert!(first_match("x.unwrap_or_else(|| 0)", ".unwrap").is_none());
        assert!(first_match("x.unwrap()", ".unwrap").is_some());
    }

    #[test]
    fn lock_unwrap_needs_the_full_chain() {
        assert!(first_match("m.lock().unwrap()", ".lock().unwrap").is_some());
        assert!(first_match(
            "m.lock().unwrap_or_else(|p| p.into_inner())",
            ".lock().unwrap"
        )
        .is_none());
    }

    #[test]
    fn indexing_heuristic_flags_real_indexing_only() {
        for (src, expect) in [
            ("let y = xs[i];", true),
            ("arr[0] = 1;", true),
            ("f(a)[1]", true),
            ("grid[r][c]", true),
            ("x.0[i]", true),
            ("fn f(x: &[u8]) {}", false),
            ("fn f(x: &mut [u8]) {}", false),
            ("let v: Vec<[u8; 4]> = vec![];", false),
            ("#[test]\nfn t() {}", false),
            ("let [a, b] = pair;", false),
            ("fn g<'a>(x: &'a [u8]) {}", false),
        ] {
            assert_eq!(first_match(src, "indexing").is_some(), expect, "{src}");
        }
    }

    #[test]
    fn unknown_construct_is_a_config_error() {
        assert!(matcher_for("Vec::news").is_err());
    }

    #[test]
    fn fn_pattern_globs() {
        assert!(fn_matches("process_synopsis*", "process_synopsis_batch"));
        assert!(fn_matches("pearson", "pearson"));
        assert!(!fn_matches("pearson", "pearson_on_common"));
    }
}

//! **panic-freedom** — the serving path returns, it does not unwind.
//!
//! A panic inside the serving stack poisons locks, kills dispatcher
//! threads, and turns one bad request into a full-server incident. The
//! request path in `at-core` / `at-server` therefore avoids panicking
//! constructs: no `unwrap`/`expect`, no panic-family macros, no bare
//! `xs[i]` indexing (use `get`, destructuring, or iterators). `assert!`
//! family macros remain allowed — they state contracts whose violation
//! *should* crash loudly. Sites where panicking is the designed behaviour
//! (construction-time environment failures, defensive `unreachable!` on
//! driver bugs) escape with `lint: allow(panic-freedom) reason=...`.

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::rules::scan_paths;
use crate::FileData;

pub const NAME: &str = "panic-freedom";

pub const EXPLAIN: &str = "\
panic-freedom: no panicking constructs on the serving path.

One panicking request must not take the server down with it: an unwinding
worker poisons every lock it holds and kills its dispatcher. The serving
crates (at-core, at-server) therefore return errors or degrade instead of
panicking — `.unwrap()`/`.expect()` become `match`/`let-else`/`unwrap_or`,
bare `xs[i]` indexing becomes `.get(i)` or iteration.

Scope: the `paths` list in analysis.toml; test code is exempt. The
`assert!` family is allowed — contract violations should crash loudly in
debug and CI. Deliberate panic sites (thread-spawn failure at
construction time, `unreachable!` guarding a driver invariant) must carry
`lint: allow(panic-freedom) reason=...` so every such site is an audited,
justified decision rather than an accident.";

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    scan_paths(rule, NAME, files, out, |name| {
        let shown = if name == "indexing" {
            "bare `xs[i]` indexing"
        } else {
            name
        };
        format!(
            "panicking construct `{shown}` on the serving path — return an error, \
             use a checked accessor, or escape a deliberate site (see ANALYSIS.md)"
        )
    })
}

//! `blocking-while-locked`: a blocking call (condvar wait, ticket wait,
//! channel recv, thread join, queue submit, sleep) reached while a lock
//! guard is live stalls every other thread contending for that lock —
//! on this codebase that turns a single slow synopsis into a convoyed
//! dispatcher. The one legitimate shape, `cv.wait(guard)` consuming the
//! guard it atomically releases, is recognised and stays clean.

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::escapes;
use crate::rules::guards;
use crate::FileData;

pub const NAME: &str = "blocking-while-locked";

pub const EXPLAIN: &str = "Blocking while holding a lock convoys every thread that needs the \
same lock behind the slowest sleeper, and blocking on something that itself needs the lock \
deadlocks outright (the classic lost-wakeup shape). This rule tracks guard bindings through \
their lexical scope — let-bound guards until scope close or drop(), statement temporaries \
until the `;` — and flags the configured blocking constructs reached with any guard live. \
`Condvar::wait(guard)` consuming the guard it releases is the sanctioned idiom and is not \
flagged; anything else needs the guard dropped first or a justified escape.";

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    let acquire = guards::acquire_matchers(rule)?;
    let blocking = guards::blocking_matchers(rule)?;
    if blocking.is_empty() {
        return Err(ConfigError(format!(
            "[rules.{NAME}] needs a `forbid` list of blocking constructs"
        )));
    }

    for file in files {
        let walk = guards::walk(file, &acquire, &blocking, rule.include_tests);
        for hit in walk.blocking {
            if escapes::suppressed(&file.escapes, NAME, hit.line) {
                continue;
            }
            let held = hit
                .held
                .iter()
                .map(|(lock, line)| format!("`{lock}` (line {line})"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diagnostic::new(
                &file.rel,
                hit.line,
                NAME,
                format!(
                    "blocking call `{}` with live guard(s) {held} — drop the guard before \
                     blocking, or justify with an escape",
                    hit.construct,
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escapes;
    use crate::lexer::lex;
    use crate::scope;
    use std::rc::Rc;

    fn file(src: &str) -> Rc<FileData> {
        let lexed = lex(src);
        let ctxs = scope::contexts(&lexed.tokens);
        let scan = escapes::scan(&lexed.comments, &[NAME.to_string()]);
        Rc::new(FileData {
            rel: "test.rs".into(),
            tokens: lexed.tokens,
            ctxs,
            escapes: scan.escapes,
        })
    }

    fn rule() -> RuleConfig {
        RuleConfig {
            name: NAME.into(),
            enabled: true,
            acquire: vec![".lock".into(), ".state".into()],
            forbid: vec![".wait".into(), ".join".into(), "thread::sleep".into()],
            ..RuleConfig::default()
        }
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        run(&rule(), &[file(src)], &mut out).expect("runs");
        out
    }

    #[test]
    fn sleep_and_join_under_guard_are_flagged() {
        let out = diags(
            "fn f(x: &X) { let g = x.m.lock(); thread::sleep(d); }\n\
             fn g(x: &X, h: H) { let g = x.m.lock(); h.join(); }",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(
            out[0].message.contains("thread::sleep"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn wait_consuming_its_guard_is_clean_but_foreign_guard_is_not() {
        assert!(diags("fn f(x: &X) { let g = x.state(); let g = x.cv.wait(g); }").is_empty());
        let out = diags(
            "fn f(x: &X) { let held = x.m.lock(); let g = x.state(); let g = x.cv.wait(g); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        assert!(diags("fn f(x: &X) { let g = x.m.lock(); drop(g); thread::sleep(d); }").is_empty());
    }

    #[test]
    fn escape_hatch_applies() {
        let out = diags(
            "fn f(x: &X) { let g = x.m.lock();\n\
             // lint: allow(blocking-while-locked) reason=test-only barrier, no contention\n\
             thread::sleep(d); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_forbid_list_is_a_config_error() {
        let rule = RuleConfig {
            name: NAME.into(),
            enabled: true,
            ..RuleConfig::default()
        };
        assert!(run(&rule, &[], &mut Vec::new()).is_err());
    }
}

//! `atomic-discipline`: every `Ordering::*` use must either target an
//! allowlisted telemetry counter (where `Relaxed` is the documented
//! default — the counters are monotone and never gate control flow) or
//! carry a per-site justification escape. This keeps relaxed loads from
//! silently creeping into protocol logic (stopped flags, steal-ring
//! ordinals, restart budgets) where reordering is a correctness bug,
//! and conversely flags gratuitous `SeqCst` on plain counters.

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::escapes;
use crate::lexer::{Token, TokenKind};
use crate::rules::{seq_matches, Pat};
use crate::FileData;

pub const NAME: &str = "atomic-discipline";

pub const EXPLAIN: &str = "Memory orderings are load-bearing: a Relaxed read of a protocol flag \
(stopped, ticket state, restart budget) can observe stale values and a Relaxed RMW publishes \
nothing about prior writes. The workspace convention is: telemetry counters — named in the \
`counters` allowlist in analysis.toml — use Relaxed and need no ceremony; every other \
`Ordering::*` site must say why its ordering is sufficient via `// lint: \
allow(atomic-discipline) reason=...`. The rule matches both `Ordering::X` and fully-qualified \
`std::sync::atomic::Ordering::X`, and resolves the receiver field through one call or index \
group (`self.ordinals(site).load(..)` -> `ordinals`).";

/// The atomic orderings; `cmp::Ordering`'s variants (Less/Equal/Greater)
/// never match, so the two enums sharing a name is harmless.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    for file in files {
        for i in 0..file.tokens.len() {
            if !rule.include_tests && file.ctxs[i].in_test {
                continue;
            }
            let Some(variant) = ordering_variant(&file.tokens, i) else {
                continue;
            };
            let line = file.tokens[i].line;
            let target = receiver_of(&file.tokens, i);
            let allowed = matches!(&target, Some(name) if rule.counters.iter().any(|c| c == name));
            if allowed && variant == "Relaxed" {
                continue;
            }
            if escapes::suppressed(&file.escapes, NAME, line) {
                continue;
            }
            let target_desc = target.as_deref().unwrap_or("<expr>");
            let detail = if allowed {
                format!(
                    "allowlisted counter `{target_desc}` uses `Ordering::{variant}` — counters \
                     take Relaxed; stronger orderings belong to protocol sites and need a \
                     justification"
                )
            } else {
                format!(
                    "`Ordering::{variant}` on `{target_desc}` is not an allowlisted telemetry \
                     counter — justify the ordering with `// lint: allow({NAME}) reason=...` \
                     or add the counter to `counters` in analysis.toml"
                )
            };
            out.push(Diagnostic::new(&file.rel, line, NAME, detail));
        }
    }
    Ok(())
}

/// If tokens at `i` start `Ordering :: <atomic variant>`, return the
/// variant. Fully-qualified paths match at their trailing `Ordering`.
fn ordering_variant(tokens: &[Token], i: usize) -> Option<&'static str> {
    if !seq_matches(tokens, i, &[Pat::I("Ordering"), Pat::P(':'), Pat::P(':')]) {
        return None;
    }
    let TokenKind::Ident(variant) = &tokens.get(i + 3)?.kind else {
        return None;
    };
    ATOMIC_ORDERINGS.iter().copied().find(|v| v == variant)
}

/// Walk backward from the `Ordering` token to the enclosing call's
/// receiver: skip to the unmatched `(`, take the method name before it,
/// then the receiver ident before the `.` (skipping one balanced
/// `(...)`/`[...]` group). `None` when the shape is anything else.
fn receiver_of(tokens: &[Token], i: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut j = i;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match tokens[j].kind {
            TokenKind::Punct(')') => depth += 1,
            TokenKind::Punct('(') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            // A statement boundary before the call opener: not inside a
            // method call at all (e.g. `use Ordering::Relaxed` — which
            // would be flagged with target `<expr>`, as it should).
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') if depth == 0 => {
                return None;
            }
            _ => {}
        }
    }
    // tokens[j] is the call's `(`; method ident before it.
    if j < 1 {
        return None;
    }
    let TokenKind::Ident(_method) = &tokens[j - 1].kind else {
        return None;
    };
    if j < 2 {
        return None;
    }
    let mut k = j - 2;
    // Static-style call `READS.load(..)` has `.`; `AtomicU64::load` style
    // paths do not occur, so require the dot.
    if !matches!(tokens[k].kind, TokenKind::Punct('.')) {
        return None;
    }
    if k == 0 {
        return None;
    }
    k -= 1;
    if let TokenKind::Punct(close @ (')' | ']')) = tokens[k].kind {
        let open = if close == ')' { '(' } else { '[' };
        let mut nest = 1usize;
        while k > 0 && nest > 0 {
            k -= 1;
            match tokens[k].kind {
                TokenKind::Punct(c) if c == close => nest += 1,
                TokenKind::Punct(c) if c == open => nest -= 1,
                _ => {}
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    match &tokens[k].kind {
        TokenKind::Ident(name) => Some(name.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escapes;
    use crate::lexer::lex;
    use crate::scope;
    use std::rc::Rc;

    fn file(src: &str) -> Rc<FileData> {
        let lexed = lex(src);
        let ctxs = scope::contexts(&lexed.tokens);
        let scan = escapes::scan(&lexed.comments, &[NAME.to_string()]);
        Rc::new(FileData {
            rel: "test.rs".into(),
            tokens: lexed.tokens,
            ctxs,
            escapes: scan.escapes,
        })
    }

    fn diags(src: &str, counters: &[&str]) -> Vec<Diagnostic> {
        let rule = RuleConfig {
            name: NAME.into(),
            enabled: true,
            counters: counters.iter().map(|s| s.to_string()).collect(),
            ..RuleConfig::default()
        };
        let mut out = Vec::new();
        run(&rule, &[file(src)], &mut out).expect("runs");
        out
    }

    #[test]
    fn allowlisted_counter_relaxed_is_clean() {
        assert!(diags(
            "fn f(c: &C) { c.completed.fetch_add(1, Ordering::Relaxed); }",
            &["completed"],
        )
        .is_empty());
    }

    #[test]
    fn fully_qualified_path_matches_too() {
        let out = diags(
            "fn f(c: &C) { c.stopped.load(std::sync::atomic::Ordering::Relaxed); }",
            &["completed"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`stopped`"), "{}", out[0].message);
    }

    #[test]
    fn receiver_resolves_through_call_and_index_groups() {
        let out = diags(
            "fn f(s: &S) { s.ordinals(site).fetch_add(1, Ordering::Relaxed); \
             s.cells[i].load(Ordering::Acquire); }",
            &[],
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("`ordinals`"));
        assert!(out[1].message.contains("`cells`"));
    }

    #[test]
    fn strong_ordering_on_a_counter_is_flagged() {
        let out = diags(
            "fn f(c: &C) { c.completed.fetch_add(1, Ordering::SeqCst); }",
            &["completed"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("stronger orderings"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn escape_justifies_a_protocol_site() {
        assert!(diags(
            "fn f(c: &C) {\n\
             // lint: allow(atomic-discipline) reason=single-writer ordinal, reads are monotone\n\
             c.cursor.fetch_add(1, Ordering::Relaxed); }",
            &[],
        )
        .is_empty());
    }

    #[test]
    fn cmp_ordering_variants_do_not_match() {
        assert!(diags(
            "fn f(a: u32, b: u32) -> Ordering { a.cmp(&b).then(Ordering::Less) }",
            &[],
        )
        .is_empty());
    }

    #[test]
    fn tests_are_skipped_by_default() {
        assert!(diags(
            "#[cfg(test)] mod t { #[test] fn f() { X.load(Ordering::SeqCst); } }",
            &[],
        )
        .is_empty());
    }

    #[test]
    fn static_receiver_matches_allowlist() {
        assert!(diags(
            "fn f() { READS.fetch_add(1, Ordering::Relaxed); }",
            &["READS"],
        )
        .is_empty());
    }
}

//! Lexical guard-liveness tracking shared by `lock-order` and
//! `blocking-while-locked`.
//!
//! The walker replays a file's token stream with the same brace-stack
//! discipline as `scope::contexts`, tracking which lock guards are live
//! at each point:
//!
//! - `let g = recv.lock()...;` binds a guard that lives until its
//!   enclosing brace scope closes, `drop(g)` runs, or a
//!   `Condvar::wait(g)`-style call consumes it.
//! - An acquisition outside a `let` initializer is a temporary: it dies
//!   at the end of the statement (`;`) or, for `if !x.state().stopped {`
//!   conditions, at the opening `{` (Rust drops condition temporaries
//!   before entering the block).
//! - `state = guard;` renames a live guard (the `wait_timeout` reacquire
//!   idiom), so the rebound name keeps suppressing false "fresh lock"
//!   edges.
//!
//! Lock identity is the receiver field for `.lock`/`.read`/`.write`
//! (`self.inner.lock()` -> `inner`) and the helper name itself for the
//! workspace's guard-returning methods (`shared.state()` -> `state`).
//! This is deliberately name-based, not instance-based: two `Worker`
//! values each locking their own `state` field collapse onto one node,
//! which over-approximates (sound for deadlock *detection* on this
//! codebase, where every cross-instance acquisition goes through the
//! one-at-a-time steal-ring idiom) — see ANALYSIS.md for limitations.

use crate::config::{ConfigError, RuleConfig};
use crate::lexer::{Token, TokenKind};
use crate::rules::{matcher_for, seq_matches, Matcher, Pat};
use crate::FileData;

/// A lock-acquisition event observed while another guard was live.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Lock already held.
    pub held: String,
    /// Line where the held guard was acquired.
    pub held_line: usize,
    /// Lock being acquired.
    pub acquired: String,
    /// Line of the new acquisition (diagnostic site).
    pub line: usize,
}

/// A blocking construct reached with at least one live guard.
#[derive(Debug, Clone)]
pub struct BlockingHit {
    pub construct: String,
    pub line: usize,
    /// Live guards at the call: (lock name, acquisition line).
    pub held: Vec<(String, usize)>,
}

/// Result of walking one file.
#[derive(Debug, Default)]
pub struct Walk {
    pub edges: Vec<Edge>,
    pub blocking: Vec<BlockingHit>,
}

#[derive(Debug)]
struct LiveGuard {
    /// Binding name (`None` for statement temporaries).
    binding: Option<String>,
    lock: String,
    line: usize,
    /// Brace depth at acquisition; the guard dies when this scope closes.
    depth: usize,
    temp: bool,
}

/// Default acquisition constructs when a rule config names none.
pub const DEFAULT_ACQUIRE: &[&str] = &[".lock", ".read", ".write"];

/// Resolve a rule's `acquire` list to (construct, lock-method) matchers.
/// Only `.name`-style constructs are accepted; the primitive trio
/// (`.lock`/`.read`/`.write`) takes the receiver as the lock name, any
/// other method is itself the lock name (guard-returning helper).
pub fn acquire_matchers(rule: &RuleConfig) -> Result<Vec<(String, Vec<Pat>)>, ConfigError> {
    let names: Vec<String> = if rule.acquire.is_empty() {
        DEFAULT_ACQUIRE.iter().map(|s| s.to_string()).collect()
    } else {
        rule.acquire.clone()
    };
    names
        .into_iter()
        .map(|name| {
            let Some(method) = name.strip_prefix('.') else {
                return Err(ConfigError(format!(
                    "acquire construct `{name}` must be a `.method` name"
                )));
            };
            if method.is_empty() || !method.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(ConfigError(format!(
                    "acquire construct `{name}` is not a method name"
                )));
            }
            // `.lock(` -- the call paren keeps fields named `lock` legal.
            let pats = vec![Pat::P('.'), Pat::I(leak(method.to_string())), Pat::P('(')];
            Ok((name, pats))
        })
        .collect()
}

/// `Pat::I` wants `&'static str`; construct names come from config, so
/// leak the handful of short strings (bounded by the config size).
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Resolve a rule's `forbid` list to blocking-construct matchers via the
/// shared dictionary.
pub fn blocking_matchers(rule: &RuleConfig) -> Result<Vec<(String, Vec<Pat>)>, ConfigError> {
    rule.forbid
        .iter()
        .map(|name| match matcher_for(name)? {
            Matcher::Seq(p) => Ok((name.clone(), p)),
            Matcher::Indexing => Err(ConfigError(format!(
                "construct `{name}` cannot be used as a blocking call"
            ))),
        })
        .collect()
}

/// Is the lock acquired by the construct matching at `i` named by the
/// receiver (primitive `.lock`/`.read`/`.write`) or by the method itself?
fn lock_name(tokens: &[Token], i: usize, construct: &str) -> String {
    let method = construct.trim_start_matches('.');
    if !matches!(method, "lock" | "read" | "write") {
        return method.to_string();
    }
    // Receiver of `recv.lock()`: the token before the `.` at `i`, walking
    // backward over one balanced `(...)`/`[...]` group so
    // `self.queues[i].lock()` -> `queues` and `ordinals(site).lock()` ->
    // `ordinals`.
    let mut j = i; // tokens[i] is the `.`
    if j == 0 {
        return format!("<{method}>");
    }
    j -= 1;
    if let TokenKind::Punct(close @ (')' | ']')) = tokens[j].kind {
        let open = if close == ')' { '(' } else { '[' };
        let mut depth = 1usize;
        while j > 0 && depth > 0 {
            j -= 1;
            match tokens[j].kind {
                TokenKind::Punct(c) if c == close => depth += 1,
                TokenKind::Punct(c) if c == open => depth -= 1,
                _ => {}
            }
        }
        if j == 0 {
            return format!("<{method}>");
        }
        j -= 1;
    }
    match &tokens[j].kind {
        TokenKind::Ident(name) => name.clone(),
        _ => format!("<{method}>"),
    }
}

/// Walk one file, reporting acquisition edges and blocking-under-guard
/// hits. Events inside `#[test]` scopes are skipped unless
/// `include_tests`.
pub fn walk(
    file: &FileData,
    acquire: &[(String, Vec<Pat>)],
    blocking: &[(String, Vec<Pat>)],
    include_tests: bool,
) -> Walk {
    let tokens = &file.tokens;
    let mut out = Walk::default();
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    // `let` statement tracking: bindings collected between `let` and the
    // first `=`; an acquisition after the `=` (same statement) binds to
    // the first pattern ident instead of becoming a temporary.
    let mut let_depth: Option<usize> = None;
    let mut let_past_eq = false;
    let mut let_binding: Option<String> = None;
    let mut last_fn: Option<String> = None;

    for i in 0..tokens.len() {
        let in_test = file.ctxs[i].in_test;
        // Function boundary: guards cannot outlive their function.
        if file.ctxs[i].fn_name != last_fn {
            last_fn = file.ctxs[i].fn_name.clone();
            live.clear();
            let_depth = None;
        }
        match &tokens[i].kind {
            TokenKind::Punct('{') => {
                // If-condition / match-scrutinee temporaries drop before
                // the block body runs.
                live.retain(|g| !g.temp);
                depth += 1;
            }
            TokenKind::Punct('}') => {
                live.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
            }
            TokenKind::Punct(';') => {
                live.retain(|g| !g.temp);
                if let_depth == Some(depth) {
                    let_depth = None;
                }
                // Guard rename: `state = guard;` keeps the reacquired
                // guard live under its new binding.
                if i >= 3 {
                    if let (TokenKind::Ident(to), TokenKind::Punct('='), TokenKind::Ident(from)) = (
                        &tokens[i - 3].kind,
                        &tokens[i - 2].kind,
                        &tokens[i - 1].kind,
                    ) {
                        if live
                            .iter()
                            .any(|g| g.binding.as_deref() == Some(from.as_str()))
                        {
                            // Assignment drops whatever `to` held before.
                            live.retain(|g| g.binding.as_deref() != Some(to.as_str()));
                            let g = live
                                .iter_mut()
                                .find(|g| g.binding.as_deref() == Some(from.as_str()))
                                .expect("checked above");
                            g.binding = Some(to.clone());
                        }
                    }
                }
            }
            TokenKind::Ident(name) if name == "let" => {
                let_depth = Some(depth);
                let_past_eq = false;
                let_binding = None;
            }
            TokenKind::Ident(name)
                if let_depth == Some(depth)
                    && !let_past_eq
                    && !matches!(name.as_str(), "mut" | "ref")
                    && let_binding.is_none() =>
            {
                let_binding = Some(name.clone());
            }
            TokenKind::Punct('=') if let_depth == Some(depth) && !let_past_eq => {
                // `==`/`=>`/`<=` cannot appear before the initializer `=`
                // of a let statement, so any `=` here ends the pattern.
                let_past_eq = true;
            }
            _ => {}
        }

        // `drop(g)` releases a named guard early.
        if let TokenKind::Ident(name) = &tokens[i].kind {
            if name == "drop"
                && seq_matches(tokens, i + 1, &[Pat::P('(')])
                && i + 3 < tokens.len()
                && matches!(tokens[i + 3].kind, TokenKind::Punct(')'))
            {
                if let TokenKind::Ident(arg) = &tokens[i + 2].kind {
                    live.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                }
            }
        }

        let skip_events = in_test && !include_tests;

        // Acquisition?
        if let Some((construct, _)) = acquire
            .iter()
            .find(|(_, pats)| seq_matches(tokens, i, pats))
        {
            if !skip_events {
                let lock = lock_name(tokens, i, construct);
                let line = tokens[i].line;
                for g in &live {
                    out.edges.push(Edge {
                        held: g.lock.clone(),
                        held_line: g.line,
                        acquired: lock.clone(),
                        line,
                    });
                }
                let bound = let_depth == Some(depth) && let_past_eq;
                live.push(LiveGuard {
                    binding: if bound { let_binding.clone() } else { None },
                    lock,
                    line,
                    depth,
                    temp: !bound,
                });
            }
            continue;
        }

        // Blocking construct?
        if let Some((construct, pats)) = blocking
            .iter()
            .find(|(_, pats)| seq_matches(tokens, i, pats))
        {
            if skip_events {
                continue;
            }
            // `cv.wait(guard)` atomically releases the guard it consumes:
            // exclude a live binding passed as the first argument.
            let mut consumed: Option<String> = None;
            if matches!(construct.as_str(), ".wait" | ".wait_timeout") {
                let open = i + pats.len() - 1; // the `(` token
                if let Some(t) = tokens.get(open + 1) {
                    if let TokenKind::Ident(arg) = &t.kind {
                        consumed = Some(arg.clone());
                    }
                }
            }
            let held: Vec<(String, usize)> = live
                .iter()
                .filter(|g| consumed.is_none() || g.binding.as_deref() != consumed.as_deref())
                .map(|g| (g.lock.clone(), g.line))
                .collect();
            if !held.is_empty() {
                out.blocking.push(BlockingHit {
                    construct: construct.clone(),
                    line: tokens[i].line,
                    held,
                });
            }
            // The consumed guard is gone either way (wait returns a fresh
            // guard, typically rebound via `let` or `g = cv.wait(g)...`).
            if let Some(arg) = consumed {
                live.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleConfig;
    use crate::escapes;
    use crate::lexer::lex;
    use crate::scope;
    use crate::FileData;

    fn file(src: &str) -> FileData {
        let lexed = lex(src);
        let ctxs = scope::contexts(&lexed.tokens);
        let scan = escapes::scan(
            &lexed.comments,
            &[
                "lock-order".to_string(),
                "blocking-while-locked".to_string(),
            ],
        );
        FileData {
            rel: "test.rs".into(),
            tokens: lexed.tokens,
            ctxs,
            escapes: scan.escapes,
        }
    }

    fn run(src: &str) -> Walk {
        let rule = RuleConfig {
            acquire: vec![".lock".into(), ".state".into()],
            forbid: vec![
                ".wait".into(),
                ".wait_timeout".into(),
                "thread::sleep".into(),
            ],
            ..RuleConfig::default()
        };
        let acquire = acquire_matchers(&rule).expect("acquire");
        let blocking = blocking_matchers(&rule).expect("blocking");
        walk(&file(src), &acquire, &blocking, false)
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let w = run("fn f() { let a = self.a.lock(); let b = self.b.lock(); }");
        assert_eq!(w.edges.len(), 1);
        assert_eq!(w.edges[0].held, "a");
        assert_eq!(w.edges[0].acquired, "b");
    }

    #[test]
    fn drop_and_scope_end_release_guards() {
        let w = run("fn f() { let a = x.a.lock(); drop(a); let b = x.b.lock(); }");
        assert!(w.edges.is_empty(), "{:?}", w.edges);
        let w = run("fn f() { { let a = x.a.lock(); } let b = x.b.lock(); }");
        assert!(w.edges.is_empty(), "{:?}", w.edges);
    }

    #[test]
    fn statement_temporaries_die_at_semicolon_and_block_open() {
        let w = run("fn f() { *x.a.lock() += 1; let b = x.b.lock(); }");
        assert!(w.edges.is_empty(), "{:?}", w.edges);
        // if-condition temporary dies before the body.
        let w = run("fn f() { if x.state().stopped { thread::sleep(d); } }");
        assert!(w.blocking.is_empty(), "{:?}", w.blocking);
    }

    #[test]
    fn sleeping_under_a_guard_is_flagged() {
        let w = run("fn f() { let g = x.a.lock(); thread::sleep(d); }");
        assert_eq!(w.blocking.len(), 1);
        assert_eq!(w.blocking[0].held, vec![("a".into(), 1)]);
    }

    #[test]
    fn condvar_wait_consuming_its_own_guard_is_clean() {
        let w = run("fn f() { let mut g = x.state(); g = cv.wait(g); }");
        assert!(w.blocking.is_empty(), "{:?}", w.blocking);
    }

    #[test]
    fn condvar_wait_with_a_foreign_guard_is_flagged() {
        let w = run("fn f() { let held = x.a.lock(); let g = x.state(); let g = cv.wait(g); }");
        assert_eq!(w.blocking.len(), 1);
        assert_eq!(w.blocking[0].held, vec![("a".into(), 1)]);
    }

    #[test]
    fn guard_rename_keeps_liveness() {
        let w = run(
            "fn f() { let mut state = x.state(); let guard = x.state(); state = guard; \
             thread::sleep(d); }",
        );
        // Rebinding `guard` into `state` must not duplicate it, and the
        // sleep still sees a live guard (two acquisitions, one edge).
        assert_eq!(w.blocking.len(), 1);
    }

    #[test]
    fn wait_timeout_reacquire_idiom_is_clean() {
        // The dispatch_loop idiom: wait_timeout consumes `guard`, result
        // rebound into `state` which the next `.wait(state)` consumes.
        let w = run("fn f() { let mut state = s.state(); loop { \
             state = s.work.wait(state).unwrap_or_else(|p| p.into_inner()); \
             drop(state); \
             let guard = s.state(); \
             let (guard, _t) = s.work.wait_timeout(guard, d).unwrap_or_else(|p| p.into_inner()); \
             state = guard; } }");
        assert!(w.blocking.is_empty(), "{:?}", w.blocking);
        assert!(w.edges.is_empty(), "{:?}", w.edges);
    }

    #[test]
    fn receiver_extraction_handles_indexing_and_calls() {
        let w = run("fn f() { let a = self.queues[i].lock(); let b = ord(site).lock(); }");
        assert_eq!(w.edges.len(), 1);
        assert_eq!(w.edges[0].held, "queues");
        assert_eq!(w.edges[0].acquired, "ord");
    }

    #[test]
    fn test_scopes_are_skipped_by_default() {
        let w = run(
            "#[cfg(test)] mod t { #[test] fn f() { let a = x.a.lock(); let b = x.b.lock(); \
             thread::sleep(d); } }",
        );
        assert!(w.edges.is_empty());
        assert!(w.blocking.is_empty());
    }
}

//! **clock-discipline** — every clock read goes through the gateway.
//!
//! Algorithm 1's clock-free policies (`is_clock_free()`) must be *really*
//! clock-free: the duplicate-collapsing proof in `serve_batch` and the
//! deterministic replay of the benches both rely on policy decisions
//! never depending on wall time. To make that auditable, every serving-
//! stack clock read funnels through `at_core::clock::{now, elapsed_since}`
//! — a gateway that also counts reads, so the contract is dynamically
//! observable (tests/probe_clock.rs). This rule enforces the static half:
//! raw `Instant::now()` / `SystemTime::now()` / `.elapsed()` anywhere in
//! the configured paths, outside the allowlisted gateway file, is a
//! diagnostic.

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::rules::scan_paths;
use crate::FileData;

pub const NAME: &str = "clock-discipline";

pub const EXPLAIN: &str = "\
clock-discipline: raw clock reads only in the allowlisted gateway.

Clock-free execution policies (everything but Deadline) must make
identical decisions regardless of wall time — serve_batch collapses
duplicate requests on that guarantee, and the benches replay
deterministically because of it. All serving-stack time therefore flows
through at_core::clock::{now, elapsed_since}, whose read counter makes
`0 clock reads on a clock-free path` a testable assertion
(tests/probe_clock.rs).

Scope: the `paths` list in analysis.toml, minus the `allow` file list
(the gateway itself). Forbidden: Instant::now, SystemTime::now, and
.elapsed() calls. Test code is exempt — tests may time things freely.
If a new module legitimately needs raw time (e.g. an offline build step),
either route it through the gateway or extend the allowlist in
analysis.toml alongside a rationale in ANALYSIS.md.";

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    scan_paths(rule, NAME, files, out, |name| {
        format!(
            "raw clock read `{name}` outside the clock gateway — call \
             at_core::clock::now / elapsed_since instead (see ANALYSIS.md)"
        )
    })
}

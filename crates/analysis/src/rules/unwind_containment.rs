//! **unwind-containment** — one panic boundary, not many.
//!
//! The fan-out's partial-failure story depends on `catch_unwind` living
//! in exactly one audited place (`at_core::containment`): that module
//! documents why `AssertUnwindSafe` is sound there (every structure a
//! leg can touch repairs itself — the pool discards on poison, scratches
//! reset at use, breakers update outside the closure). A second,
//! ad-hoc `catch_unwind` elsewhere would silently swallow panics without
//! that audit — broken-invariant state kept alive, faults neither
//! recorded by breakers nor surfaced as failed components. This rule
//! flags `catch_unwind`/`AssertUnwindSafe` everywhere (tests included)
//! except the allowlisted boundary module.

use crate::config::{ConfigError, RuleConfig};
use crate::diagnostics::Diagnostic;
use crate::rules::scan_paths;
use crate::FileData;

pub const NAME: &str = "unwind-containment";

pub const EXPLAIN: &str = "\
unwind-containment: catch panics at one audited boundary only.

Catching a panic keeps every structure the panicking code touched alive,
so each catch site must prove its closure cannot leave observably torn
state — that proof lives once, in at_core::containment, where the
fan-out turns a dying leg into a failed component (breaker charged,
telemetry marked, compose over the survivors). A catch_unwind or
AssertUnwindSafe anywhere else skips the audit and the accounting:
panics vanish without tripping breakers or marking components_failed,
and unwind-unsafe state leaks back into the serving loop.

Scope: all first-party crates, tests included — a test that needs to
observe a panic uses thread::spawn + join (the thread boundary drops the
torn state) instead of catching in place. The only allowlisted file is
crates/core/src/containment.rs.";

pub fn run(
    rule: &RuleConfig,
    files: &[std::rc::Rc<FileData>],
    out: &mut Vec<Diagnostic>,
) -> Result<(), ConfigError> {
    scan_paths(rule, NAME, files, out, |name| {
        format!(
            "`{name}` outside the audited boundary module — route panic \
             containment through at_core::containment (or observe panics \
             across a thread::spawn/join boundary; see ANALYSIS.md)"
        )
    })
}

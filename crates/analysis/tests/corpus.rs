//! The fixture corpus: the violating tree must produce *exactly* the
//! diagnostics its `// expect:` markers claim (no false negatives, no
//! false positives, correct lines), and the clean tree must produce
//! none.
//!
//! Marker syntax, inside the fixture sources:
//! - `// expect: rule-a, rule-b` — those rules fire on this line
//! - `// expect-above: rule` — the rule fires on the previous line
//!   (for violations that live inside a comment, like malformed escape
//!   directives)

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use at_analysis::diagnostics::Diagnostic;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(root: &Path) -> Vec<Diagnostic> {
    let cfg = at_analysis::config::load(&root.join("analysis.toml")).expect("fixture config");
    at_analysis::analyze(root, &cfg).expect("analysis over the fixture tree")
}

/// Collect `(file, line, rule)` for every marker in the fixture sources.
fn expected_markers(root: &Path) -> BTreeSet<(String, usize, String)> {
    let mut out = BTreeSet::new();
    let src = root.join("src");
    let mut entries: Vec<_> = std::fs::read_dir(&src)
        .expect("fixture src dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().map(|e| e != "rs").unwrap_or(true) {
            continue;
        }
        let rel = format!(
            "src/{}",
            path.file_name().expect("file name").to_string_lossy()
        );
        let text = std::fs::read_to_string(&path).expect("fixture source");
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let (rules, at) = if let Some(rest) = line.split("// expect-above:").nth(1) {
                (rest, lineno.checked_sub(1).expect("marker not on line 1"))
            } else if let Some(rest) = line.split("// expect:").nth(1) {
                (rest, lineno)
            } else {
                continue;
            };
            for rule in rules.split(',') {
                let rule = rule.trim();
                assert!(!rule.is_empty(), "{rel}:{lineno}: empty expect marker");
                out.insert((rel.clone(), at, rule.to_string()));
            }
        }
    }
    out
}

#[test]
fn violating_corpus_flags_every_seeded_violation_exactly() {
    let root = fixture("violating");
    let got: BTreeSet<(String, usize, String)> = run(&root)
        .into_iter()
        .map(|d| (d.file, d.line, d.rule))
        .collect();
    let want = expected_markers(&root);
    assert!(
        !want.is_empty(),
        "corpus must seed violations — did the marker scan break?"
    );
    let missed: Vec<_> = want.difference(&got).collect();
    let spurious: Vec<_> = got.difference(&want).collect();
    assert!(
        missed.is_empty() && spurious.is_empty(),
        "marker/diagnostic mismatch\n  missed (expected, not reported): {missed:?}\n  \
         spurious (reported, not expected): {spurious:?}"
    );
}

#[test]
fn violating_corpus_covers_every_rule() {
    let rules: BTreeSet<String> = run(&fixture("violating"))
        .into_iter()
        .map(|d| d.rule)
        .collect();
    for rule in [
        "hot-path-alloc",
        "clock-discipline",
        "panic-freedom",
        "lock-hygiene",
        "unwind-containment",
        "lock-order",
        "blocking-while-locked",
        "atomic-discipline",
        "lint-escape",
    ] {
        assert!(rules.contains(rule), "no seeded violation exercises {rule}");
    }
}

#[test]
fn every_registered_rule_has_a_rationale() {
    for rule in at_analysis::rule_names() {
        assert!(
            at_analysis::explain(rule).is_some(),
            "rule `{rule}` is registered but has no --explain text"
        );
    }
}

#[test]
fn clean_corpus_produces_no_diagnostics() {
    let diags = run(&fixture("clean"));
    assert!(
        diags.is_empty(),
        "clean corpus flagged:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

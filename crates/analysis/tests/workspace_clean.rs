//! The self-check: the real workspace, under its real `analysis.toml`,
//! has zero invariant violations. This is the same gate CI runs via
//! `cargo run -p at-analysis -- --check`, kept as a test so `cargo test`
//! alone catches a regression.

use std::path::Path;

#[test]
fn the_workspace_passes_its_own_invariant_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg =
        at_analysis::config::load(&root.join("analysis.toml")).expect("workspace analysis.toml");
    let diags = at_analysis::analyze(&root, &cfg).expect("analysis over the workspace");
    assert!(
        diags.is_empty(),
        "workspace invariant violations — fix them or add a justified \
         `lint: allow(...)` escape:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Seeded hot-path-alloc violations: every forbidden allocating
//! construct appears once inside a hot item; cold functions and test
//! code allocate freely and must NOT be flagged.

pub fn hot_score(xs: &[u32]) -> usize {
    let grown: Vec<u32> = Vec::new(); // expect: hot-path-alloc
    let seeded = vec![1u32, 2, 3]; // expect: hot-path-alloc
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect(); // expect: hot-path-alloc
    grown.len() + seeded.len() + doubled.len()
}

pub fn hot_copy(xs: &[u32]) -> usize {
    let copied = xs.to_vec(); // expect: hot-path-alloc
    let boxed = Box::new(7u32); // expect: hot-path-alloc
    copied.len() + *boxed as usize
}

pub fn serve_one(name: &str) -> String {
    let labeled = format!("req-{name}"); // expect: hot-path-alloc
    let owned = String::from(name); // expect: hot-path-alloc
    let via_closure: Vec<u8> = std::iter::empty().collect(); // expect: hot-path-alloc
    let _ = via_closure;
    if labeled.len() > owned.len() {
        labeled
    } else {
        owned
    }
}

/// Not in the items list: allocating here is fine.
pub fn cold_setup() -> Vec<u32> {
    let mut v = Vec::new();
    v.extend([1, 2, 3].iter().copied().map(|x| x + 1));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_fns_compute() {
        // Test code in a hot file allocates freely.
        let fresh: Vec<u32> = vec![1, 2, 3];
        assert_eq!(hot_score(&fresh), 6);
    }
}

//! Seeded clock-discipline violations: raw clock reads outside any
//! gateway. The test fn at the bottom times things legally.

use std::time::{Duration, Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now() // expect: clock-discipline
}

pub fn wall() -> SystemTime {
    SystemTime::now() // expect: clock-discipline
}

pub fn took(start: Instant) -> Duration {
    start.elapsed() // expect: clock-discipline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_time_freely() {
        let t0 = Instant::now();
        assert!(took(t0) >= Duration::ZERO);
    }
}

//! Seeded lock-hygiene violations. `.lock().unwrap()` in regular code
//! also trips panic-freedom's `.unwrap`; in test code only lock-hygiene
//! fires, because lock-hygiene alone opts into tests.

use std::sync::{Mutex, RwLock};

pub fn cascade(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap() // expect: lock-hygiene, panic-freedom
}

pub fn cascade_expect(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned") // expect: lock-hygiene, panic-freedom
}

pub fn cascade_try(m: &Mutex<u32>) -> u32 {
    *m.try_lock().unwrap() // expect: lock-hygiene, panic-freedom
}

pub fn cascade_read(l: &RwLock<u32>) -> u32 {
    *l.read().unwrap() // expect: lock-hygiene, panic-freedom
}

pub fn cascade_write(l: &RwLock<u32>) -> u32 {
    *l.write().expect("poisoned") // expect: lock-hygiene, panic-freedom
}

/// The sanctioned idiom must NOT be flagged.
pub fn recovering(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_helpers_cascade_too() {
        let m = Mutex::new(1);
        let got = *m.lock().unwrap(); // expect: lock-hygiene
        assert_eq!(got, 1);
    }
}

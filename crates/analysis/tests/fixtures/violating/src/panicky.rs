//! Seeded panic-freedom violations: each panicking construct once.
//! Checked accessors and asserts are legal and must NOT be flagged.

pub fn take_first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap(); // expect: panic-freedom
    *head
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("not a number") // expect: panic-freedom
}

pub fn explode(flag: bool) {
    if flag {
        panic!("boom"); // expect: panic-freedom
    }
}

pub fn impossible(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => unreachable!(), // expect: panic-freedom
    }
}

pub fn later() {
    todo!() // expect: panic-freedom
}

pub fn never() {
    unimplemented!() // expect: panic-freedom
}

pub fn nth(xs: &[u32], i: usize) -> u32 {
    xs[i] // expect: panic-freedom
}

/// Checked and defaulted accessors are the sanctioned idiom.
pub fn safe_nth(xs: &[u32], i: usize) -> u32 {
    assert!(!xs.is_empty(), "contract checks stay legal");
    xs.get(i).copied().unwrap_or(0)
}

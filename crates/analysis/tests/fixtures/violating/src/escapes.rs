//! Seeded escape-hatch misuse: directives that fail to parse are
//! findings (`lint-escape`), and a malformed directive does NOT suppress
//! the underlying violation. One well-formed escape shows suppression
//! working inside an otherwise-violating corpus.

pub fn missing_reason(x: Option<u32>) -> u32 {
    // lint: allow(panic-freedom) // expect: lint-escape
    x.unwrap() // expect: panic-freedom
}

pub fn empty_reason(x: Option<u32>) -> u32 {
    // lint: allow(panic-freedom) reason=
    // expect-above: lint-escape
    x.unwrap() // expect: panic-freedom
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    // lint: allow(panik-freedom) reason=typo in the rule name // expect: lint-escape
    x.unwrap() // expect: panic-freedom
}

pub fn properly_escaped(x: Option<u32>) -> u32 {
    // lint: allow(panic-freedom) reason=fixture demonstrating a justified escape
    x.unwrap()
}

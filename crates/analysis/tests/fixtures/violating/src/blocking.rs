//! Seeded blocking-while-locked violations, next to the sanctioned
//! wait-consumes-guard idiom that must stay clean.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

pub struct Gate {
    pub data: Mutex<u32>,
    pub flag: Mutex<bool>,
    pub cond: Condvar,
}

pub fn sleep_under_guard(g: &Gate) -> u32 {
    let held = g.data.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    std::thread::sleep(Duration::from_millis(1)); // expect: blocking-while-locked
    *held
}

pub fn wait_with_foreign_guard(g: &Gate) {
    let held = g.data.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let flag = g.flag.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _flag = g.cond.wait(flag).unwrap_or_else(|poisoned| poisoned.into_inner()); // expect: blocking-while-locked
    drop(held);
}

/// The sanctioned idiom: `wait` consumes the only live guard (the one it
/// atomically releases) — no finding.
pub fn wait_own_guard(g: &Gate) {
    let flag = g.flag.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _flag = g.cond.wait(flag).unwrap_or_else(|poisoned| poisoned.into_inner());
}

/// Dropping the guard before blocking — no finding.
pub fn sleep_after_drop(g: &Gate) {
    let held = g.data.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    drop(held);
    std::thread::sleep(Duration::from_millis(1));
}

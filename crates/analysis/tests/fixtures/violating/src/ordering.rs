//! Seeded lock-order violations: `a` then `b` in one function, `b` then
//! `a` in another — two threads running them concurrently can each hold
//! one lock and wait forever for the other. Both edges of the cycle are
//! flagged at their acquiring sites.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub struct Unrelated {
    pub c: Mutex<u32>,
    pub d: Mutex<u32>,
}

pub fn sum_ab(p: &Pair) -> u32 {
    let a = p.a.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let b = p.b.lock().unwrap_or_else(|poisoned| poisoned.into_inner()); // expect: lock-order
    *a + *b
}

pub fn sum_ba(p: &Pair) -> u32 {
    let b = p.b.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let a = p.a.lock().unwrap_or_else(|poisoned| poisoned.into_inner()); // expect: lock-order
    *a + *b
}

/// Nested acquisition in one consistent order (`c` before `d`, nothing
/// ever takes `d` before `c`) — an edge, but no cycle, so no finding.
pub fn sum_cd(q: &Unrelated) -> u32 {
    let c = q.c.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let d = q.d.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    *c + *d
}

/// Dropping the first guard before the second acquisition never records
/// an edge at all.
pub fn sum_sequential(p: &Pair) -> u32 {
    let first = {
        let b = p.b.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *b
    };
    let a = p.a.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    first + *a
}

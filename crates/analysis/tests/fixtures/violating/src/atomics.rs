//! Seeded atomic-discipline violations: a protocol flag read with an
//! unjustified Relaxed, and a gratuitous SeqCst on an allowlisted
//! counter. The allowlisted-Relaxed and justified-escape shapes stay
//! clean.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flags {
    pub stopped: AtomicU64,
    pub completed: AtomicU64,
}

pub fn racy_stop_check(f: &Flags) -> bool {
    f.stopped.load(Ordering::Relaxed) != 0 // expect: atomic-discipline
}

pub fn ceremonial_count(f: &Flags) {
    f.completed.fetch_add(1, Ordering::SeqCst); // expect: atomic-discipline
}

/// Allowlisted counter at the documented default — no finding.
pub fn counted(f: &Flags) {
    f.completed.fetch_add(1, Ordering::Relaxed);
}

/// Justified protocol read — no finding.
pub fn justified_stop_check(f: &Flags) -> bool {
    // lint: allow(atomic-discipline) reason=fixture: single-writer flag, acquire pairs with the release store
    f.stopped.load(Ordering::Acquire) != 0
}

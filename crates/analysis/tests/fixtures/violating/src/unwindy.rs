//! Seeded unwind-containment violations: panic catching outside the one
//! audited boundary module (no file is allowlisted in this corpus).

use std::panic::{catch_unwind, AssertUnwindSafe}; // expect: unwind-containment

/// An ad-hoc swallow site: the panic disappears without any breaker or
/// telemetry accounting — exactly what the rule exists to prevent.
pub fn swallow(f: impl FnOnce() -> u32) -> u32 {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or(0) // expect: unwind-containment
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rule opts into tests: catching in a test body fires too (the
    /// sanctioned pattern is thread::spawn + join instead).
    #[test]
    fn catches_in_tests_too() {
        let r = std::panic::catch_unwind(|| swallow(|| 7)); // expect: unwind-containment
        assert!(r.is_ok());
    }
}

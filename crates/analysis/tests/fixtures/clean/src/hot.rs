//! Clean hot-path idioms: scratch reuse in hot items, allocation only
//! outside them (or escaped with a justified directive), iterators and
//! checked accessors instead of indexing.

/// Hot item: sums into caller-provided scratch, allocation-free.
pub fn hot_accumulate(xs: &[u32], scratch: &mut Vec<u32>) -> u32 {
    scratch.clear();
    scratch.extend(xs.iter().map(|x| x * 2));
    scratch.iter().sum()
}

/// Hot item with a justified cold path: the pool-miss fallback.
pub fn hot_with_fallback(pool: Option<Vec<u32>>) -> Vec<u32> {
    match pool {
        Some(mut buf) => {
            buf.clear();
            buf
        }
        // lint: allow(hot-path-alloc) reason=pool miss allocates once per buffer ever in flight
        None => Vec::new(),
    }
}

/// Not a hot item: free to allocate.
pub fn cold_summary(xs: &[u32]) -> Vec<String> {
    xs.iter().map(|x| format!("v={x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_reuse_matches_fresh_compute() {
        let mut scratch = vec![9; 8];
        assert_eq!(hot_accumulate(&[1, 2], &mut scratch), 6);
    }
}

//! The allowlisted containment boundary, mirroring
//! `at_core::containment`: the one file where catching a panic is legal.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn contain<T>(f: impl FnOnce() -> T) -> Result<T, ()> {
    catch_unwind(AssertUnwindSafe(f)).map_err(drop)
}

//! The allowlisted clock gateway: the one file where raw clock reads are
//! legal, mirroring `at_core::clock`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static READS: AtomicU64 = AtomicU64::new(0);

pub fn now() -> Instant {
    READS.fetch_add(1, Ordering::Relaxed);
    Instant::now()
}

pub fn reads() -> u64 {
    READS.load(Ordering::Relaxed)
}

//! Clean concurrency idioms: one global lock order, guards dropped
//! before blocking, the wait-consumes-guard shape, allowlisted counter
//! atomics, and a justified protocol ordering.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

pub struct Queue {
    pub state: Mutex<u32>,
    pub work: Condvar,
    pub drained: AtomicU64,
}

/// Consistent nested order everywhere: `state` is the only lock, and
/// every waiter passes its own guard.
pub fn drain(q: &Queue) -> u32 {
    let mut state = q.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    while *state == 0 {
        state = q
            .work
            .wait(state)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
    q.drained.fetch_add(1, Ordering::Relaxed);
    *state
}

/// Guard dropped before the blocking call.
pub fn pause_between_rounds(q: &Queue) {
    let state = q.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let idle = *state == 0;
    drop(state);
    if idle {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Protocol ordering with its justification.
pub fn publish_drained(q: &Queue) -> u64 {
    // lint: allow(atomic-discipline) reason=fixture: acquire load pairs with the worker's release bump to order the drained count after its writes
    q.drained.load(Ordering::Acquire)
}

//! Clean serving-path idioms: gateway time, checked accessors, poison
//! recovery, and test code exercising its freedoms.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::gateway;

/// Time flows through the gateway, never read raw.
pub fn stamped() -> Instant {
    gateway::now()
}

/// Checked accessors and defaults instead of panicking constructs.
pub fn nth(xs: &[u32], i: usize) -> u32 {
    assert!(i < usize::MAX, "contract checks are legal");
    xs.get(i).copied().unwrap_or(0)
}

pub fn first_or(xs: &[u32], default: u32) -> u32 {
    match xs.first() {
        Some(v) => *v,
        None => default,
    }
}

/// Poison recovery instead of `.lock().unwrap()`.
pub fn counter_get(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_allocate_time_and_unwrap_freely() {
        let t0 = Instant::now();
        let xs: Vec<u32> = (0..4).collect();
        assert_eq!(nth(&xs, 2), 2);
        assert_eq!(first_or(&xs, 9), 0);
        assert_eq!(xs.first().copied().unwrap(), 0);
        assert!(t0.elapsed() >= Duration::ZERO);
    }
}

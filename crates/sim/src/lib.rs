//! # at-sim
//!
//! Discrete-event cluster simulator for the AccuracyTrader reproduction
//! (Han et al., ICPP 2016) — the substitute for the paper's 30-node Xen /
//! JStorm testbed (substitution rationale in DESIGN.md §3).
//!
//! * [`cluster`] — the fan-out + FIFO-queue + heterogeneity + interference
//!   model and the four techniques (Basic, Request reissue, Partial
//!   execution, AccuracyTrader).
//! * [`cost`] — per-request compute costs (paper-plausible defaults or
//!   measured via [`calibrate()`](calibrate())).
//! * [`metrics`] — 99.9th-percentile latency collection and per-minute
//!   series.
//! * [`runner`] — experiment drivers: fixed-rate sweeps (Tables 1–2),
//!   single hours and full days of the diurnal pattern (Figures 5–8).
//!
//! The simulator reports, per sampled request, how many ranked sets each
//! component managed to process (AccuracyTrader) or which components beat
//! the deadline (partial execution); the benchmark harness replays those
//! against the *real* recommender/search implementations to measure
//! accuracy losses.

pub mod calibrate;
pub mod cluster;
pub mod cost;
pub mod failures;
pub mod metrics;
pub mod runner;
pub mod shard;

pub use calibrate::calibrate;
pub use cluster::{simulate, RequestSample, SimConfig, SimResult, Technique};
pub use cost::CostModel;
pub use failures::{FailureConfig, FailureTrace};
pub use metrics::{BucketedLatencies, LatencyRecorder};
pub use runner::{run_day, run_fixed_rate, run_hour, run_hour_window, sweep_rates};
pub use shard::{pick_strategy, simulate_shards, ShardSimConfig, ShardSimResult, ShardStrategy};

//! Experiment drivers shared by the table/figure harnesses.

use rayon::prelude::*;

use at_workloads::{poisson_arrivals, variable_rate_arrivals, DiurnalPattern};

use crate::cluster::{simulate, SimConfig, SimResult, Technique};

/// One cell of Table 1/2: fixed-rate Poisson load for `duration_s`.
pub fn run_fixed_rate(
    rate: f64,
    duration_s: f64,
    technique: Technique,
    cfg: &SimConfig,
) -> SimResult {
    let arrivals = poisson_arrivals(rate, duration_s, cfg.seed ^ 0xA11);
    simulate(&arrivals, technique, cfg)
}

/// Sweep request arrival rates for one technique (Table 1/2 rows); cells
/// run in parallel.
pub fn sweep_rates(
    rates: &[f64],
    duration_s: f64,
    technique: Technique,
    cfg: &SimConfig,
) -> Vec<SimResult> {
    rates
        .par_iter()
        .map(|&r| run_fixed_rate(r, duration_s, technique, cfg))
        .collect()
}

/// One hour of the diurnal pattern (Figures 5–8): 60 one-minute sessions
/// with the within-hour rate trend of `pattern` (increasing for hour 9,
/// steady for hour 10, decreasing for hour 24).
pub fn run_hour(
    pattern: &DiurnalPattern,
    hour: usize,
    technique: Technique,
    cfg: &SimConfig,
) -> SimResult {
    run_hour_window(pattern, hour, 3600.0, technique, cfg)
}

/// Like [`run_hour`] but compressing the hour's within-hour rate trend
/// into a `window_s`-second run (sessions shrink proportionally). Used to
/// keep full-day sweeps laptop-sized while preserving each hour's
/// increasing/steady/decreasing character. Bucket width follows suit
/// (`window_s / 60` = one "minute" session per bucket).
pub fn run_hour_window(
    pattern: &DiurnalPattern,
    hour: usize,
    window_s: f64,
    technique: Technique,
    cfg: &SimConfig,
) -> SimResult {
    assert!(window_s > 0.0, "window must be positive");
    let max_rate = (0..60)
        .map(|m| pattern.minute_rate(hour, m))
        .fold(0.0, f64::max)
        .max(1e-9);
    let arrivals = variable_rate_arrivals(
        |t| {
            let minute = ((t / window_s * 60.0) as usize).min(59);
            pattern.minute_rate(hour, minute)
        },
        max_rate,
        window_s,
        cfg.seed ^ (hour as u64) << 8,
    );
    let cfg = SimConfig {
        bucket_s: window_s / 60.0,
        ..*cfg
    };
    simulate(&arrivals, technique, &cfg)
}

/// All 24 hours for one technique (Figure 7/8), hours in parallel.
/// Returns per-hour results, hour 1 first.
pub fn run_day(pattern: &DiurnalPattern, technique: Technique, cfg: &SimConfig) -> Vec<SimResult> {
    (1..=24usize)
        .into_par_iter()
        .map(|h| run_hour(pattern, h, technique, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Technique;

    fn cfg() -> SimConfig {
        SimConfig {
            n_components: 12,
            n_nodes: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sweep_produces_one_result_per_rate() {
        let rs = sweep_rates(&[5.0, 20.0], 20.0, Technique::Basic, &cfg());
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| !r.latencies.is_empty()));
        // Heavier load, worse tail.
        assert!(rs[1].latencies.p999_ms() >= rs[0].latencies.p999_ms() * 0.5);
    }

    #[test]
    fn hour_run_has_sixty_minute_buckets() {
        let pattern = DiurnalPattern::sogou_like(3.0);
        let r = run_hour(&pattern, 10, Technique::Basic, &cfg());
        assert_eq!(r.bucketed.len(), 60);
        let series = r.bucketed.p999_series_ms();
        assert!(series.iter().filter(|s| s.is_some()).count() > 50);
    }

    #[test]
    fn day_covers_24_hours() {
        // Tiny rates to keep the test fast.
        let pattern = DiurnalPattern::sogou_like(1.0);
        let day = run_day(
            &pattern,
            Technique::AccuracyTrader {
                deadline_s: 0.1,
                imax: None,
            },
            &cfg(),
        );
        assert_eq!(day.len(), 24);
        assert!(day.iter().all(|r| r.n_requests > 0));
    }
}

//! The discrete-event cluster simulator.
//!
//! Substitution note (DESIGN.md §3): stands in for the paper's 30-node Xen
//! cluster running 110 VMs under JStorm with co-located Hadoop jobs. The
//! model keeps exactly the mechanisms the paper identifies as the sources
//! of component tail latency:
//!
//! * **fan-out** — every request spawns one sub-operation on each of the
//!   `n_components` parallel components;
//! * **queueing** — each component instance is a FIFO queue + server
//!   ("performance variance is significantly amplified by request queueing
//!   delays");
//! * **heterogeneity** — per-instance speed factors (hardware/software
//!   variance across VMs);
//! * **interference** — a time-varying slowdown per node driven by the
//!   SWIM-like MapReduce trace ("frequently changing performance
//!   interference from co-located workloads").
//!
//! Service times come from the [`CostModel`]; what work a technique does
//! per sub-operation is encoded in [`Technique`].

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use at_workloads::zipf::normal;
use at_workloads::{InterferenceTrace, MapReduceConfig};

use crate::cost::CostModel;
use crate::failures::{FailureConfig, FailureTrace};
use crate::metrics::{BucketedLatencies, LatencyRecorder};

/// Tail-latency mitigation technique under test (§4.1 "compared
/// techniques").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Technique {
    /// No mitigation: exact processing, plain FIFO.
    Basic,
    /// Request reissue: when a sub-operation has been outstanding longer
    /// than the `trigger_percentile` of its class's expected latency, a
    /// replica is dispatched to the partition's backup instance and the
    /// quicker of the two is used.
    Reissue {
        /// Percentile of expected latency that triggers the replica
        /// (paper: 95.0).
        trigger_percentile: f64,
    },
    /// Partial execution: exact processing, but the composer only waits
    /// `deadline_s`; sub-operations finishing later are skipped.
    Partial {
        /// Composer deadline in seconds (paper: 0.1).
        deadline_s: f64,
    },
    /// AccuracyTrader: process the synopsis, then improve with ranked sets
    /// while the deadline allows (Algorithm 1 under the cost model).
    AccuracyTrader {
        /// `l_spe` in seconds (paper: 0.1).
        deadline_s: f64,
        /// `i_max` (None = all sets).
        imax: Option<usize>,
    },
    /// AccuracyTrader combined with request reissue — the paper positions
    /// AccuracyTrader as a *complement* to exact-result techniques (§1);
    /// this hybrid reissues a straggling AccuracyTrader sub-operation (one
    /// stuck in a queue or on a crashed node) to the backup instance,
    /// which then runs Algorithm 1 under the same original deadline.
    Hybrid {
        /// `l_spe` in seconds.
        deadline_s: f64,
        /// `i_max` (None = all sets).
        imax: Option<usize>,
        /// Percentile of the expected AT latency that triggers the replica.
        trigger_percentile: f64,
    },
}

/// Cluster-level simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Parallel processing components (paper: 108).
    pub n_components: usize,
    /// Physical nodes the instances map onto (paper: 30).
    pub n_nodes: usize,
    /// Log-normal sigma of per-instance hardware speed factors.
    pub hetero_sigma: f64,
    /// Unloaded compute costs.
    pub cost: CostModel,
    /// Co-located MapReduce interference configuration.
    pub interference: MapReduceConfig,
    /// Optional node-failure injection (outages defer service).
    pub failures: Option<FailureConfig>,
    /// Record detailed per-request state every k-th request (0 = never);
    /// the accuracy evaluations replay these against the real services.
    pub sample_every: usize,
    /// Width of the latency-series buckets (s); Figure 5 uses one-minute
    /// sessions, compressed windows use proportionally smaller buckets.
    pub bucket_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_components: 108,
            n_nodes: 30,
            hetero_sigma: 0.15,
            cost: CostModel::default(),
            interference: MapReduceConfig::default(),
            failures: None,
            sample_every: 0,
            bucket_s: 60.0,
            seed: 0xC10C,
        }
    }
}

/// Detailed state of one sampled request, for accuracy replay.
#[derive(Clone, Debug)]
pub struct RequestSample {
    /// Index into the arrival vector.
    pub request_idx: usize,
    /// Submission time (s).
    pub arrival_s: f64,
    /// AccuracyTrader: ranked sets processed per component.
    pub sets_processed: Option<Vec<usize>>,
    /// Partial execution: whether each component beat the deadline.
    pub made_deadline: Option<Vec<bool>>,
}

/// What one simulation run produced.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Every sub-operation's latency (min over replicas for reissue).
    pub latencies: LatencyRecorder,
    /// The same latencies bucketed per minute of the run.
    pub bucketed: BucketedLatencies,
    /// Sampled per-request detail (per [`SimConfig::sample_every`]).
    pub samples: Vec<RequestSample>,
    /// Requests simulated.
    pub n_requests: usize,
}

/// Pending sub-operation arrival event.
#[derive(Clone, Copy, Debug)]
struct Event {
    time: f64,
    seq: u64,
    request: u32,
    component: u32,
    is_replica: bool,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("NaN event time")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Simulate one run: `arrivals` are request submission times (seconds,
/// sorted ascending); every request fans out to all components.
///
/// # Panics
/// Panics if the config is inconsistent or arrivals are unsorted.
pub fn simulate(arrivals: &[f64], technique: Technique, cfg: &SimConfig) -> SimResult {
    assert!(cfg.n_components > 0 && cfg.n_nodes > 0, "empty cluster");
    cfg.cost.validate().expect("invalid cost model");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let horizon = arrivals.last().copied().unwrap_or(0.0) + 3600.0;
    let interference = InterferenceTrace::generate(
        MapReduceConfig {
            n_nodes: cfg.n_nodes,
            ..cfg.interference
        },
        horizon,
    );

    // Instance layout: primaries 0..n, backups n..2n (reissue targets).
    let n = cfg.n_components;
    let n_instances = 2 * n;
    let instance_node = |inst: usize| -> usize {
        if inst < n {
            inst % cfg.n_nodes
        } else {
            (inst - n + cfg.n_nodes / 2) % cfg.n_nodes
        }
    };
    let hetero: Vec<f64> = (0..n_instances)
        .map(|_| normal(&mut rng, 0.0, cfg.hetero_sigma).exp())
        .collect();
    let failures = match cfg.failures {
        Some(f) => FailureTrace::generate(cfg.n_nodes, horizon, f),
        None => FailureTrace::none(cfg.n_nodes),
    };

    // Reissue trigger: the p-th percentile of the sub-op latency class,
    // estimated from unloaded service-time draws (queueing excluded, as
    // "expected latency" is a per-class constant in the paper's setup).
    let trigger_delay = {
        let spec = match technique {
            Technique::Reissue { trigger_percentile } => {
                Some((trigger_percentile, cfg.cost.exact_s))
            }
            Technique::Hybrid {
                trigger_percentile,
                imax,
                ..
            } => {
                // Expected AT latency class: synopsis + the capped set work.
                let k = imax.unwrap_or(cfg.cost.n_sets).min(cfg.cost.n_sets);
                Some((trigger_percentile, cfg.cost.accuracy_trader_s(k)))
            }
            _ => None,
        };
        spec.map(|(pct, base)| {
            let mut draws = Vec::with_capacity(4000);
            for i in 0..4000usize {
                let inst = i % n;
                let t = (i as f64 * 0.137) % horizon.max(1.0);
                let slow = interference.slowdown(instance_node(inst), t)
                    * hetero[inst]
                    * normal(&mut rng, 0.0, cfg.cost.jitter_sigma).exp();
                draws.push(base * slow);
            }
            at_linalg::stats::percentile(&draws, pct)
        })
    };

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    for (req, &a) in arrivals.iter().enumerate() {
        for comp in 0..n as u32 {
            heap.push(Event {
                time: a,
                seq,
                request: req as u32,
                component: comp,
                is_replica: false,
            });
            seq += 1;
        }
    }

    let duration = arrivals.last().copied().unwrap_or(0.0).max(cfg.bucket_s);
    let mut server_free = vec![0.0f64; n_instances];
    let mut latencies = LatencyRecorder::new();
    let mut bucketed = BucketedLatencies::new(
        cfg.bucket_s,
        (duration / cfg.bucket_s).ceil().max(1.0) as usize,
    );
    // (request, component) -> primary completion, for reissue mins.
    let mut primary_done: HashMap<(u32, u32), f64> = HashMap::new();

    let sampled_idx: std::collections::HashSet<usize> = if cfg.sample_every > 0 {
        (0..arrivals.len()).step_by(cfg.sample_every).collect()
    } else {
        Default::default()
    };
    let mut sample_map: HashMap<usize, RequestSample> = sampled_idx
        .iter()
        .map(|&i| {
            (
                i,
                RequestSample {
                    request_idx: i,
                    arrival_s: arrivals[i],
                    sets_processed: match technique {
                        Technique::AccuracyTrader { .. } | Technique::Hybrid { .. } => {
                            Some(vec![0; n])
                        }
                        _ => None,
                    },
                    made_deadline: match technique {
                        Technique::Partial { .. } => Some(vec![false; n]),
                        _ => None,
                    },
                },
            )
        })
        .collect();

    while let Some(ev) = heap.pop() {
        let a = arrivals[ev.request as usize];
        let inst = if ev.is_replica {
            n + ev.component as usize
        } else {
            ev.component as usize
        };
        // Service cannot begin while the node is down (crash / stall).
        let start = failures.next_available(instance_node(inst), server_free[inst].max(ev.time));
        let slowdown = interference.slowdown(instance_node(inst), start)
            * hetero[inst]
            * normal(&mut rng, 0.0, cfg.cost.jitter_sigma).exp();

        let (service, sets) = match technique {
            Technique::Basic | Technique::Reissue { .. } | Technique::Partial { .. } => {
                (cfg.cost.exact_s * slowdown, 0usize)
            }
            Technique::AccuracyTrader { deadline_s, imax }
            | Technique::Hybrid {
                deadline_s, imax, ..
            } => {
                // Wall-clock budget left once service begins; the synopsis
                // pass always runs (the "slightly longer than required"
                // floor of §4.3).
                let wall_budget = (a + deadline_s - start).max(0.0);
                let mut k = cfg.cost.sets_within(wall_budget / slowdown);
                if let Some(m) = imax {
                    k = k.min(m);
                }
                (cfg.cost.accuracy_trader_s(k) * slowdown, k)
            }
        };
        let completion = start + service;
        server_free[inst] = completion;
        let latency = completion - a;

        match technique {
            Technique::Reissue { .. } | Technique::Hybrid { .. } => {
                let key = (ev.request, ev.component);
                if ev.is_replica {
                    let primary = primary_done
                        .remove(&key)
                        .expect("replica without pending primary");
                    let final_latency = latency.min(primary - a);
                    latencies.record(final_latency);
                    bucketed.record(a, final_latency);
                } else {
                    let trigger = trigger_delay.expect("reissue has a trigger");
                    if latency > trigger {
                        // Straggler: dispatch the replica at the trigger
                        // instant; the final latency is the quicker one.
                        primary_done.insert(key, completion);
                        heap.push(Event {
                            time: a + trigger,
                            seq,
                            request: ev.request,
                            component: ev.component,
                            is_replica: true,
                        });
                        seq += 1;
                    } else {
                        latencies.record(latency);
                        bucketed.record(a, latency);
                    }
                }
            }
            _ => {
                latencies.record(latency);
                bucketed.record(a, latency);
            }
        }

        if let Some(sample) = sample_map.get_mut(&(ev.request as usize)) {
            if !ev.is_replica {
                if matches!(
                    technique,
                    Technique::AccuracyTrader { .. } | Technique::Hybrid { .. }
                ) {
                    if let Some(v) = sample.sets_processed.as_mut() {
                        v[ev.component as usize] = sets;
                    }
                }
                if let (Technique::Partial { deadline_s }, Some(v)) =
                    (technique, sample.made_deadline.as_mut())
                {
                    v[ev.component as usize] = latency <= deadline_s;
                }
            }
        }
    }

    let mut samples: Vec<RequestSample> = sample_map.into_values().collect();
    samples.sort_by_key(|s| s.request_idx);
    SimResult {
        latencies,
        bucketed,
        samples,
        n_requests: arrivals.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_workloads::poisson_arrivals;

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            n_components: 24,
            n_nodes: 8,
            sample_every: 50,
            seed,
            ..SimConfig::default()
        }
    }

    fn arrivals(rate: f64) -> Vec<f64> {
        poisson_arrivals(rate, 60.0, 42)
    }

    #[test]
    fn basic_light_load_is_fast() {
        let r = simulate(&arrivals(5.0), Technique::Basic, &small_cfg(1));
        assert!(!r.latencies.is_empty());
        // Light load: median near the unloaded exact cost.
        let med = r.latencies.percentile_ms(50.0);
        assert!(med < 150.0, "median {med} ms too slow for light load");
    }

    #[test]
    fn basic_saturates_under_heavy_load() {
        let light = simulate(&arrivals(5.0), Technique::Basic, &small_cfg(1));
        let heavy = simulate(&arrivals(90.0), Technique::Basic, &small_cfg(1));
        assert!(
            heavy.latencies.p999_ms() > light.latencies.p999_ms() * 20.0,
            "heavy {} vs light {}",
            heavy.latencies.p999_ms(),
            light.latencies.p999_ms()
        );
    }

    #[test]
    fn reissue_beats_basic_at_light_load() {
        let basic = simulate(&arrivals(5.0), Technique::Basic, &small_cfg(3));
        let reissue = simulate(
            &arrivals(5.0),
            Technique::Reissue {
                trigger_percentile: 95.0,
            },
            &small_cfg(3),
        );
        assert!(
            reissue.latencies.p999_ms() < basic.latencies.p999_ms(),
            "reissue {} !< basic {}",
            reissue.latencies.p999_ms(),
            basic.latencies.p999_ms()
        );
    }

    #[test]
    fn accuracy_trader_tail_stays_near_deadline() {
        for rate in [5.0, 60.0, 100.0] {
            let r = simulate(
                &arrivals(rate),
                Technique::AccuracyTrader {
                    deadline_s: 0.1,
                    imax: None,
                },
                &small_cfg(4),
            );
            let p999 = r.latencies.p999_ms();
            assert!(
                p999 < 300.0,
                "rate {rate}: AT tail {p999} ms should stay near the 100 ms deadline"
            );
        }
    }

    #[test]
    fn accuracy_trader_beats_basic_under_load() {
        let basic = simulate(&arrivals(80.0), Technique::Basic, &small_cfg(5));
        let at = simulate(
            &arrivals(80.0),
            Technique::AccuracyTrader {
                deadline_s: 0.1,
                imax: None,
            },
            &small_cfg(5),
        );
        assert!(
            at.latencies.p999_ms() * 10.0 < basic.latencies.p999_ms(),
            "AT {} vs basic {}",
            at.latencies.p999_ms(),
            basic.latencies.p999_ms()
        );
    }

    #[test]
    fn at_processes_fewer_sets_under_load() {
        let cfg = small_cfg(6);
        let mean_sets = |rate: f64| {
            let r = simulate(
                &arrivals(rate),
                Technique::AccuracyTrader {
                    deadline_s: 0.1,
                    imax: None,
                },
                &cfg,
            );
            let mut total = 0usize;
            let mut count = 0usize;
            for s in &r.samples {
                for &k in s.sets_processed.as_ref().unwrap() {
                    total += k;
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        let light = mean_sets(5.0);
        let heavy = mean_sets(100.0);
        assert!(
            heavy < light,
            "heavier load must leave budget for fewer sets: light {light} heavy {heavy}"
        );
        assert!(light > 0.0);
    }

    #[test]
    fn partial_misses_more_deadlines_under_load() {
        let cfg = small_cfg(7);
        let made_frac = |rate: f64| {
            let r = simulate(
                &arrivals(rate),
                Technique::Partial { deadline_s: 0.1 },
                &cfg,
            );
            let mut made = 0usize;
            let mut total = 0usize;
            for s in &r.samples {
                for &m in s.made_deadline.as_ref().unwrap() {
                    made += usize::from(m);
                    total += 1;
                }
            }
            made as f64 / total as f64
        };
        let light = made_frac(5.0);
        let heavy = made_frac(100.0);
        assert!(
            light > heavy,
            "deadline hit rate must fall with load: {light} -> {heavy}"
        );
        assert!(
            light > 0.5,
            "light load should mostly make the deadline: {light}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&arrivals(20.0), Technique::Basic, &small_cfg(9));
        let b = simulate(&arrivals(20.0), Technique::Basic, &small_cfg(9));
        assert_eq!(a.latencies.samples(), b.latencies.samples());
    }

    #[test]
    fn every_subop_recorded() {
        let arr = arrivals(10.0);
        let cfg = small_cfg(10);
        let r = simulate(&arr, Technique::Basic, &cfg);
        assert_eq!(r.latencies.len(), arr.len() * cfg.n_components);
        let r = simulate(
            &arr,
            Technique::Reissue {
                trigger_percentile: 95.0,
            },
            &cfg,
        );
        // Reissue still records exactly one latency per (request, component).
        assert_eq!(r.latencies.len(), arr.len() * cfg.n_components);
    }

    #[test]
    fn empty_arrivals() {
        let r = simulate(&[], Technique::Basic, &small_cfg(11));
        assert_eq!(r.n_requests, 0);
        assert!(r.latencies.is_empty());
    }
}

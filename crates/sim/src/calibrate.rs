//! Cost-model calibration against the *real* implementations.
//!
//! The simulator's [`CostModel`] can be measured instead of assumed: time
//! the actual synopsis pass, per-set improvement, and exact processing of a
//! built component over a batch of requests, then rescale to paper-sized
//! subsets with [`CostModel::scaled_to_exact`]. This grounds the latency
//! simulation in the very code whose accuracy is being evaluated.

use std::time::Instant;

use at_core::{Algorithm1, ApproximateService, Component, ExecutionPolicy};

use crate::cost::CostModel;

/// Measure mean costs of a component's three processing operations over
/// `requests`. Jitter sigma is kept from `base` (measurement noise on a
/// busy laptop is not the variance we want to model).
pub fn calibrate<S: ApproximateService>(
    component: &Component<S>,
    requests: &[S::Request],
    base: CostModel,
) -> CostModel {
    assert!(!requests.is_empty(), "calibrate: need at least one request");
    let n_sets = component.store().synopsis().len().max(1);

    // Synopsis pass (stage 1 + ranking).
    let t0 = Instant::now();
    for req in requests {
        let engine = Algorithm1::new(component.dataset(), component.store(), component.service());
        std::hint::black_box(engine.ranked(req));
    }
    let synopsis_s = t0.elapsed().as_secs_f64() / requests.len() as f64;

    // Full improvement (synopsis + every set) — per-set cost by difference.
    let t1 = Instant::now();
    for req in requests {
        std::hint::black_box(component.execute(
            req,
            &ExecutionPolicy::budgeted(usize::MAX),
            Instant::now(),
        ));
    }
    let full_s = t1.elapsed().as_secs_f64() / requests.len() as f64;

    // Exact baseline.
    let t2 = Instant::now();
    for req in requests {
        std::hint::black_box(component.execute(req, &ExecutionPolicy::Exact, Instant::now()));
    }
    let exact_s = t2.elapsed().as_secs_f64() / requests.len() as f64;

    let per_set_s = ((full_s - synopsis_s) / n_sets as f64).max(1e-9);
    CostModel {
        exact_s: exact_s.max(synopsis_s * 1.5).max(1e-9),
        synopsis_s: synopsis_s.max(1e-9),
        per_set_s,
        n_sets,
        jitter_sigma: base.jitter_sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_core::{Correlation, Ctx};
    use at_linalg::svd::SvdConfig;
    use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig};

    struct SumService;

    impl ApproximateService for SumService {
        type Request = u32;
        type Output = f64;

        fn process_synopsis(&self, ctx: Ctx<'_>, req: &u32, corr: &mut Vec<Correlation>) -> f64 {
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: p.info.get(*req).unwrap_or(0.0),
            }));
            0.0
        }

        fn improve(
            &self,
            ctx: Ctx<'_>,
            req: &u32,
            out: &mut f64,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            for &m in members {
                *out += ctx.dataset.row(m).get(*req).unwrap_or(0.0);
            }
        }

        fn process_exact(&self, ctx: Ctx<'_>, req: &u32) -> f64 {
            (0..ctx.dataset.len() as u64)
                .map(|m| ctx.dataset.row(m).get(*req).unwrap_or(0.0))
                .sum()
        }
    }

    #[test]
    fn calibration_yields_valid_model() {
        let mut data = RowStore::new(16);
        for r in 0..600u32 {
            data.push_row(SparseRow::from_pairs(
                (0..16).map(|c| (c, ((r + c) % 7) as f64)).collect(),
            ));
        }
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(10),
            size_ratio: 20,
            ..SynopsisConfig::default()
        };
        let (component, _) = Component::build(data, AggregationMode::Mean, cfg, SumService);
        let requests: Vec<u32> = (0..8).collect();
        let measured = calibrate(&component, &requests, CostModel::default());
        measured.validate().expect("measured model is coherent");
        assert_eq!(measured.n_sets, component.store().synopsis().len());
        // Scaling to paper-sized work preserves the structure.
        let scaled = measured.scaled_to_exact(0.018);
        scaled.validate().unwrap();
        assert!((scaled.exact_s - 0.018).abs() < 1e-12);
    }
}

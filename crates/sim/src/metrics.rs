//! Latency metric collection: tail percentiles and time-bucketed series.

use at_linalg::stats::Percentiles;

/// Accumulates sub-operation latencies (seconds) and reports percentiles
/// in milliseconds — the unit of every table/figure in the paper.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Record one latency (seconds).
    pub fn record(&mut self, latency_s: f64) {
        debug_assert!(latency_s >= 0.0, "negative latency");
        self.samples.push(latency_s);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile in **milliseconds**.
    ///
    /// # Panics
    /// Panics when empty.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        Percentiles::new(self.samples.clone()).get(p) * 1000.0
    }

    /// The paper's headline metric: the 99.9th-percentile latency (ms).
    pub fn p999_ms(&self) -> f64 {
        self.percentile_ms(99.9)
    }

    /// Mean latency (ms).
    pub fn mean_ms(&self) -> f64 {
        at_linalg::stats::mean(&self.samples) * 1000.0
    }

    /// Raw samples (seconds).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Latencies bucketed by submission time — Figure 5's per-minute tail-
/// latency series within an hour.
#[derive(Clone, Debug)]
pub struct BucketedLatencies {
    bucket_s: f64,
    buckets: Vec<LatencyRecorder>,
}

impl BucketedLatencies {
    /// `n_buckets` buckets of `bucket_s` seconds each.
    pub fn new(bucket_s: f64, n_buckets: usize) -> Self {
        assert!(bucket_s > 0.0 && n_buckets > 0);
        BucketedLatencies {
            bucket_s,
            buckets: vec![LatencyRecorder::new(); n_buckets],
        }
    }

    /// Record a latency for a sub-op submitted at `arrival_s`; samples
    /// past the last bucket are clamped into it.
    pub fn record(&mut self, arrival_s: f64, latency_s: f64) {
        let idx = ((arrival_s / self.bucket_s) as usize).min(self.buckets.len() - 1);
        self.buckets[idx].record(latency_s);
    }

    /// Per-bucket 99.9th-percentile latency (ms); `None` for empty buckets.
    pub fn p999_series_ms(&self) -> Vec<Option<f64>> {
        self.buckets
            .iter()
            .map(|b| {
                if b.is_empty() {
                    None
                } else {
                    Some(b.p999_ms())
                }
            })
            .collect()
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when there are no buckets (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Borrow one bucket.
    pub fn bucket(&self, i: usize) -> &LatencyRecorder {
        &self.buckets[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_in_ms() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(i as f64 / 1000.0); // 1..100 ms
        }
        assert!((r.percentile_ms(50.0) - 50.5).abs() < 0.5);
        assert!(r.p999_ms() > 99.0);
        assert!((r.mean_ms() - 50.5).abs() < 0.01);
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn buckets_split_by_arrival() {
        let mut b = BucketedLatencies::new(60.0, 3);
        b.record(10.0, 0.001);
        b.record(70.0, 0.002);
        b.record(250.0, 0.003); // clamped into last bucket
        let series = b.p999_series_ms();
        assert_eq!(series.len(), 3);
        assert!((series[0].unwrap() - 1.0).abs() < 1e-9);
        assert!((series[1].unwrap() - 2.0).abs() < 1e-9);
        assert!((series[2].unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_bucket_is_none() {
        let b = BucketedLatencies::new(1.0, 2);
        assert_eq!(b.p999_series_ms(), vec![None, None]);
    }
}

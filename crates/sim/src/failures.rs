//! Node-failure injection.
//!
//! The paper attributes component latency variance to "different hardware
//! and software reasons" beyond interference; transient node outages
//! (crashes, GC stalls measured in seconds, network partitions) are the
//! extreme end of that spectrum and are what request reissue was designed
//! for (Dean & Barroso's "tail at scale"). The trace marks each node
//! unavailable during outage windows; a sub-operation whose service would
//! start inside a window is deferred to the window's end.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use at_workloads::zipf::exponential;

/// Failure-injection parameters.
#[derive(Clone, Copy, Debug)]
pub struct FailureConfig {
    /// Mean time between failures per node (s).
    pub mtbf_s: f64,
    /// Mean time to recovery (s).
    pub mttr_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            mtbf_s: 600.0,
            mttr_s: 5.0,
            seed: 0xFA11,
        }
    }
}

/// Per-node outage windows, sorted by start.
#[derive(Clone, Debug)]
pub struct FailureTrace {
    per_node: Vec<Vec<(f64, f64)>>,
}

impl FailureTrace {
    /// Generate outages over `[0, duration)` for `n_nodes` nodes:
    /// exponential inter-failure gaps (mean `mtbf_s`), exponential outage
    /// lengths (mean `mttr_s`).
    pub fn generate(n_nodes: usize, duration: f64, cfg: FailureConfig) -> Self {
        assert!(
            cfg.mtbf_s > 0.0 && cfg.mttr_s > 0.0,
            "failure times must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let per_node = (0..n_nodes)
            .map(|_| {
                let mut windows = Vec::new();
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, 1.0 / cfg.mtbf_s);
                    if t >= duration {
                        break;
                    }
                    let end = t + exponential(&mut rng, 1.0 / cfg.mttr_s);
                    windows.push((t, end));
                    t = end;
                }
                windows
            })
            .collect();
        FailureTrace { per_node }
    }

    /// A trace with no outages.
    pub fn none(n_nodes: usize) -> Self {
        FailureTrace {
            per_node: vec![Vec::new(); n_nodes],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Outage windows of `node`.
    pub fn outages(&self, node: usize) -> &[(f64, f64)] {
        &self.per_node[node]
    }

    /// Whether `node` is down at time `t`.
    pub fn is_down(&self, node: usize, t: f64) -> bool {
        let windows = &self.per_node[node];
        let idx = windows.partition_point(|w| w.0 <= t);
        idx > 0 && t < windows[idx - 1].1
    }

    /// The earliest time ≥ `t` at which `node` can serve (t itself when
    /// up; the outage end when down).
    pub fn next_available(&self, node: usize, t: f64) -> f64 {
        let windows = &self.per_node[node];
        let idx = windows.partition_point(|w| w.0 <= t);
        if idx > 0 && t < windows[idx - 1].1 {
            windows[idx - 1].1
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> FailureTrace {
        FailureTrace::generate(10, 10_000.0, FailureConfig::default())
    }

    #[test]
    fn windows_are_disjoint_and_sorted() {
        let t = trace();
        for node in 0..10 {
            let w = t.outages(node);
            for pair in w.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlapping outages");
            }
            for &(s, e) in w {
                assert!(s < e);
            }
        }
    }

    #[test]
    fn outage_frequency_tracks_mtbf() {
        let t = trace();
        let total: usize = (0..10).map(|n| t.outages(n).len()).sum();
        // 10 nodes x 10000s / 600s MTBF ≈ 166 outages.
        assert!(
            (80..300).contains(&total),
            "unexpected outage count {total}"
        );
    }

    #[test]
    fn is_down_matches_windows() {
        let t = trace();
        let w = t.outages(0).first().copied().expect("has outages");
        let mid = 0.5 * (w.0 + w.1);
        assert!(t.is_down(0, mid));
        assert!(!t.is_down(0, w.0 - 0.001));
        assert!(!t.is_down(0, w.1 + 0.001));
    }

    #[test]
    fn next_available_defers_into_recovery() {
        let t = trace();
        let w = t.outages(0).first().copied().expect("has outages");
        let mid = 0.5 * (w.0 + w.1);
        assert_eq!(t.next_available(0, mid), w.1);
        assert_eq!(t.next_available(0, w.1 + 1.0), w.1 + 1.0);
    }

    #[test]
    fn none_trace_is_always_up() {
        let t = FailureTrace::none(3);
        assert!(!t.is_down(2, 123.0));
        assert_eq!(t.next_available(2, 123.0), 123.0);
    }

    #[test]
    fn deterministic() {
        let a = trace();
        let b = trace();
        assert_eq!(a.outages(5), b.outages(5));
    }
}

//! Analytic model of multi-worker sharded serving.
//!
//! Companion to [`crate::cluster::simulate`]: where the cluster simulator
//! models the paper's 30-node fan-out with queueing and interference, this
//! module models the *front-end* dimension added by `at-server`'s
//! `ShardedServer` — how a routing strategy partitions a duplicate-heavy
//! request stream across worker queues, and how that partition changes the
//! amount of **unique** work each worker's micro-batches contain.
//!
//! The central effect is collapse locality. `serve_batch` collapses
//! duplicate requests inside a batch, so a batch's service time is
//!
//! ```text
//! pass_s + uniques · per_unique_s + len · per_request_s
//! ```
//!
//! — a fixed per-batch pass, the dominant per-*unique* compute, and a small
//! per-request bookkeeping term. Hash-affinity routing sends all copies of a
//! key to the same worker, so a worker's batches draw from `K / W` of the
//! key space and contain fewer uniques per batch than a round-robin or
//! least-loaded split of the same stream. On a duplicate-heavy (zipf) mix
//! that shrinks total unique work, which is the whole throughput win when
//! cores are scarce.
//!
//! The model is deliberately open-loop and clock-free: all requests are
//! pre-assigned, each worker drains its queue in batches of `max_batch`,
//! and the makespan is a list-scheduling bound over `cores`. Work stealing
//! only affects the *balance* term (an idle worker drains a sibling's
//! backlog), never the per-batch cost of its own rounds, so with stealing
//! the makespan collapses to the perfectly-balanced bound. On one core both
//! bounds equal total work — stealing cannot manufacture throughput there,
//! only routing can.

use std::collections::HashSet;

/// Routing strategies the model can rank. Mirrors `at-server`'s
/// `RoutingStrategy` without a crate dependency (the server depends on
/// neither the simulator nor vice versa; the bench maps between them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Route by `route_key % workers`: duplicates of a key always share a
    /// worker, concentrating collapse.
    HashAffinity,
    /// Route to the shallowest queue. Under an open-loop model queues drain
    /// uniformly, so this behaves like an even interleave of the stream.
    LeastLoaded,
    /// Route request `i` to worker `i % workers`.
    RoundRobin,
}

impl ShardStrategy {
    /// All strategies, in ranking order for ties (first wins).
    pub const ALL: [ShardStrategy; 3] = [
        ShardStrategy::HashAffinity,
        ShardStrategy::LeastLoaded,
        ShardStrategy::RoundRobin,
    ];

    /// Stable name for reports and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ShardStrategy::HashAffinity => "hash_affinity",
            ShardStrategy::LeastLoaded => "least_loaded",
            ShardStrategy::RoundRobin => "round_robin",
        }
    }
}

/// Parameters of the sharded-serving model.
#[derive(Clone, Copy, Debug)]
pub struct ShardSimConfig {
    /// Serving workers (dispatcher threads with private queues).
    pub workers: usize,
    /// Cores available to run them (`makespan >= total / cores`).
    pub cores: usize,
    /// Dispatcher drain limit per round.
    pub max_batch: usize,
    /// Fixed cost of one batch round (synopsis pass, queue handoff).
    pub pass_s: f64,
    /// Cost per *unique* request in a batch — the collapsed compute.
    pub per_unique_s: f64,
    /// Cost per request in a batch (bookkeeping, fulfilment).
    pub per_request_s: f64,
    /// Whether idle workers steal from deep sibling queues.
    pub work_stealing: bool,
}

impl Default for ShardSimConfig {
    fn default() -> Self {
        ShardSimConfig {
            workers: 2,
            cores: 1,
            max_batch: 256,
            pass_s: 50e-6,
            per_unique_s: 400e-6,
            per_request_s: 2e-6,
            work_stealing: true,
        }
    }
}

impl ShardSimConfig {
    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 || self.cores == 0 || self.max_batch == 0 {
            return Err("workers, cores and max_batch must be positive".into());
        }
        for (name, v) in [
            ("pass_s", self.pass_s),
            ("per_unique_s", self.per_unique_s),
            ("per_request_s", self.per_request_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

/// What one model evaluation produced.
#[derive(Clone, Copy, Debug)]
pub struct ShardSimResult {
    /// Strategy that was evaluated.
    pub strategy: ShardStrategy,
    /// Total service time across all workers (the 1-core makespan).
    pub total_work_s: f64,
    /// List-scheduling makespan over `cores`.
    pub makespan_s: f64,
    /// Modelled throughput: requests / makespan.
    pub throughput_rps: f64,
    /// Batch rounds across all workers.
    pub batches: usize,
    /// Mean unique keys per batch — the collapse-locality signal.
    pub mean_uniques_per_batch: f64,
}

/// Evaluate one routing strategy on a stream of route keys.
///
/// `keys` is the request stream in arrival order, already reduced to route
/// keys (`RouteKey::route_key()` values, or any stand-in where equal
/// requests share a key).
///
/// # Panics
/// Panics if the config is invalid.
pub fn simulate_shards(
    keys: &[u64],
    strategy: ShardStrategy,
    cfg: &ShardSimConfig,
) -> ShardSimResult {
    cfg.validate().expect("invalid shard sim config");
    let w = cfg.workers;

    // Route the stream. LeastLoaded under open loop keeps queue counts
    // level, which is an even interleave — model it exactly that way but
    // tracking real depths so bursts of one key still spread out.
    let mut queues: Vec<Vec<u64>> = vec![Vec::new(); w];
    for (i, &k) in keys.iter().enumerate() {
        let target = match strategy {
            ShardStrategy::HashAffinity => (k % w as u64) as usize,
            ShardStrategy::RoundRobin => i % w,
            ShardStrategy::LeastLoaded => {
                let mut best = 0usize;
                for (j, q) in queues.iter().enumerate() {
                    if q.len() < queues[best].len() {
                        best = j;
                    }
                }
                best
            }
        };
        if let Some(q) = queues.get_mut(target) {
            q.push(k);
        }
    }

    // Drain each queue in rounds of up to max_batch; cost per the collapse
    // model. A HashSet is fine here — this is the simulator, not the
    // serving hot path.
    let mut busy: Vec<f64> = Vec::with_capacity(w);
    let mut batches = 0usize;
    let mut unique_total = 0usize;
    let mut seen: HashSet<u64> = HashSet::new();
    for q in &queues {
        let mut worker_busy = 0.0f64;
        for batch in q.chunks(cfg.max_batch) {
            seen.clear();
            seen.extend(batch.iter().copied());
            let uniques = seen.len();
            worker_busy += cfg.pass_s
                + uniques as f64 * cfg.per_unique_s
                + batch.len() as f64 * cfg.per_request_s;
            batches += 1;
            unique_total += uniques;
        }
        busy.push(worker_busy);
    }

    let total_work_s: f64 = busy.iter().sum();
    let max_busy = busy.iter().copied().fold(0.0f64, f64::max);
    // List scheduling w workers onto `cores`: at least total/cores, at
    // least the longest single worker. Stealing lets an idle core drain a
    // deep sibling, erasing the imbalance term down to one batch of
    // granularity; model that as the balanced bound.
    let balanced = total_work_s / cfg.cores.min(w).max(1) as f64;
    let makespan_s = if cfg.work_stealing {
        balanced.max(if batches > 0 {
            total_work_s / batches.max(1) as f64
        } else {
            0.0
        })
    } else {
        balanced.max(max_busy)
    };
    let throughput_rps = if makespan_s > 0.0 {
        keys.len() as f64 / makespan_s
    } else {
        0.0
    };

    ShardSimResult {
        strategy,
        total_work_s,
        makespan_s,
        throughput_rps,
        batches,
        mean_uniques_per_batch: if batches > 0 {
            unique_total as f64 / batches as f64
        } else {
            0.0
        },
    }
}

/// Rank all strategies on the given stream and return the winner (highest
/// modelled throughput; ties break in [`ShardStrategy::ALL`] order).
pub fn pick_strategy(keys: &[u64], cfg: &ShardSimConfig) -> ShardSimResult {
    let mut best: Option<ShardSimResult> = None;
    for s in ShardStrategy::ALL {
        let r = simulate_shards(keys, s, cfg);
        let better = match &best {
            None => true,
            Some(b) => r.throughput_rps > b.throughput_rps,
        };
        if better {
            best = Some(r);
        }
    }
    best.expect("ALL is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_workloads::zipf::Zipf;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn zipf_keys(n_keys: usize, n_requests: usize, alpha: f64, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let zipf = Zipf::new(n_keys, alpha);
        (0..n_requests)
            .map(|_| {
                // Spread ranks over u64 so `% workers` isn't trivially
                // correlated with popularity.
                let rank = zipf.sample(&mut rng) as u64;
                rank.wrapping_mul(0x9E3779B97F4A7C15)
            })
            .collect()
    }

    fn cfg(workers: usize) -> ShardSimConfig {
        ShardSimConfig {
            workers,
            ..ShardSimConfig::default()
        }
    }

    #[test]
    fn hash_affinity_shrinks_unique_work_on_zipf() {
        let keys = zipf_keys(24, 8192, 1.1, 7);
        let hash = simulate_shards(&keys, ShardStrategy::HashAffinity, &cfg(4));
        let rr = simulate_shards(&keys, ShardStrategy::RoundRobin, &cfg(4));
        let ll = simulate_shards(&keys, ShardStrategy::LeastLoaded, &cfg(4));
        // Collapse locality: a hash-partitioned worker sees ~K/W of the
        // key space, so batches carry fewer uniques and total work drops.
        assert!(
            hash.mean_uniques_per_batch < rr.mean_uniques_per_batch,
            "hash {} !< rr {}",
            hash.mean_uniques_per_batch,
            rr.mean_uniques_per_batch
        );
        assert!(
            hash.total_work_s < rr.total_work_s && hash.total_work_s < ll.total_work_s,
            "hash {} vs rr {} vs ll {}",
            hash.total_work_s,
            rr.total_work_s,
            ll.total_work_s
        );
    }

    #[test]
    fn pick_strategy_prefers_hash_affinity_on_duplicate_heavy_mix() {
        let keys = zipf_keys(24, 8192, 1.1, 11);
        let winner = pick_strategy(&keys, &cfg(4));
        assert_eq!(winner.strategy, ShardStrategy::HashAffinity);
    }

    #[test]
    fn single_worker_is_strategy_invariant() {
        let keys = zipf_keys(24, 2048, 1.1, 3);
        let base = simulate_shards(&keys, ShardStrategy::HashAffinity, &cfg(1));
        for s in ShardStrategy::ALL {
            let r = simulate_shards(&keys, s, &cfg(1));
            assert!((r.total_work_s - base.total_work_s).abs() < 1e-12);
            assert_eq!(r.batches, base.batches);
        }
    }

    #[test]
    fn stealing_erases_the_imbalance_term() {
        // All keys hash to one worker: without stealing the makespan on 4
        // cores is the hot worker's busy time; with stealing it is the
        // balanced bound.
        let keys: Vec<u64> = vec![4; 4096];
        let mut c = cfg(4);
        c.cores = 4;
        c.work_stealing = false;
        let skewed = simulate_shards(&keys, ShardStrategy::HashAffinity, &c);
        c.work_stealing = true;
        let stolen = simulate_shards(&keys, ShardStrategy::HashAffinity, &c);
        assert!(
            stolen.makespan_s < skewed.makespan_s / 2.0,
            "stealing {} !<< skewed {}",
            stolen.makespan_s,
            skewed.makespan_s
        );
        // Total work is routing-determined; stealing never changes it.
        assert!((stolen.total_work_s - skewed.total_work_s).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_typed_zeros() {
        let r = simulate_shards(&[], ShardStrategy::RoundRobin, &cfg(2));
        assert_eq!(r.batches, 0);
        assert_eq!(r.throughput_rps, 0.0);
        assert_eq!(r.total_work_s, 0.0);
    }
}

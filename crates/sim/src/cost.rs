//! Per-request compute-cost model.
//!
//! The simulator separates *what work a technique does* (this model) from
//! *when it gets to run* (queueing + interference in [`crate::cluster`]).
//! Costs can be set from paper-plausible magnitudes (defaults below,
//! chosen so the queueing cliff falls between 40 and 60 req/s like the
//! paper's Table 1) or measured from the real implementations via
//! [`crate::calibrate()`] and rescaled to the paper's subset sizes.

/// Unloaded processing costs of one sub-operation on one component.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Full exact computation over the component's entire subset (s).
    pub exact_s: f64,
    /// Processing the synopsis: initial result + correlation ranking (s).
    pub synopsis_s: f64,
    /// Improving the result with one ranked set of original points (s).
    pub per_set_s: f64,
    /// Number of ranked sets a component's synopsis holds.
    pub n_sets: usize,
    /// Multiplicative per-sub-op jitter (log-normal sigma) modelling
    /// software-level variance beyond interference.
    pub jitter_sigma: f64,
}

impl Default for CostModel {
    /// Paper-plausible magnitudes. Exact processing is ≈ 17 ms unloaded,
    /// so the *median* component crosses utilization 1 just past 58 req/s
    /// (the paper's Table 1 cliff between 40 and 60, where partial
    /// execution starts skipping a large share of components), while 20
    /// req/s stays light everywhere (the regime where request reissue
    /// wins) and 40 req/s only saturates interfered nodes (mild tail
    /// growth, like the paper's 263 ms). The synopsis costs ~1/30 of an
    /// exact pass. Improving with all ranked sets costs ~2× an exact
    /// pass (group-at-a-time improvement has far worse locality than one
    /// streaming scan), so the improvement loop genuinely runs into the
    /// 100 ms deadline in slowed/queued tail cases — reproducing the
    /// paper's light-load ordering reissue < basic < AccuracyTrader ≈
    /// deadline.
    fn default() -> Self {
        CostModel {
            exact_s: 0.017,
            synopsis_s: 0.0005,
            per_set_s: 0.0011,
            n_sets: 30,
            jitter_sigma: 0.12,
        }
    }
}

impl CostModel {
    /// Cost of AccuracyTrader processing `k` ranked sets.
    pub fn accuracy_trader_s(&self, k: usize) -> f64 {
        self.synopsis_s + k as f64 * self.per_set_s
    }

    /// Largest set count whose processing fits in `budget_s` seconds of
    /// *compute* (the caller has already divided wall-clock budget by the
    /// current slowdown), after the mandatory synopsis pass.
    pub fn sets_within(&self, budget_s: f64) -> usize {
        let left = budget_s - self.synopsis_s;
        if left <= 0.0 {
            0
        } else {
            ((left / self.per_set_s).floor() as usize).min(self.n_sets)
        }
    }

    /// Rescale all durations so that `exact_s` becomes `target_exact_s`,
    /// preserving the measured ratios — how a laptop calibration is mapped
    /// onto paper-sized subsets.
    pub fn scaled_to_exact(&self, target_exact_s: f64) -> CostModel {
        assert!(self.exact_s > 0.0, "cannot scale a zero-cost model");
        assert!(target_exact_s > 0.0, "target must be positive");
        let f = target_exact_s / self.exact_s;
        CostModel {
            exact_s: self.exact_s * f,
            synopsis_s: self.synopsis_s * f,
            per_set_s: self.per_set_s * f,
            n_sets: self.n_sets,
            jitter_sigma: self.jitter_sigma,
        }
    }

    /// Sanity constraints (positive costs, synopsis ≪ exact).
    pub fn validate(&self) -> Result<(), String> {
        if self.exact_s <= 0.0 || self.synopsis_s <= 0.0 || self.per_set_s <= 0.0 {
            return Err("costs must be positive".into());
        }
        if self.n_sets == 0 {
            return Err("n_sets must be >= 1".into());
        }
        if self.synopsis_s >= self.exact_s {
            return Err(format!(
                "synopsis ({}) must be cheaper than exact ({})",
                self.synopsis_s, self.exact_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CostModel::default().validate().unwrap();
    }

    #[test]
    fn sets_within_budget() {
        let c = CostModel {
            exact_s: 1.0,
            synopsis_s: 0.1,
            per_set_s: 0.05,
            n_sets: 10,
            jitter_sigma: 0.0,
        };
        assert_eq!(c.sets_within(0.05), 0, "below synopsis cost");
        assert_eq!(c.sets_within(0.1), 0);
        assert_eq!(c.sets_within(0.2), 2);
        assert_eq!(c.sets_within(100.0), 10, "capped at n_sets");
    }

    #[test]
    fn at_cost_is_synopsis_plus_sets() {
        let c = CostModel::default();
        assert!((c.accuracy_trader_s(0) - c.synopsis_s).abs() < 1e-15);
        let full = c.accuracy_trader_s(c.n_sets);
        assert!(full > c.synopsis_s);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let c = CostModel::default();
        let s = c.scaled_to_exact(0.18);
        assert!((s.exact_s - 0.18).abs() < 1e-12);
        assert!((s.synopsis_s / s.exact_s - c.synopsis_s / c.exact_s).abs() < 1e-12);
        assert_eq!(s.n_sets, c.n_sets);
    }

    #[test]
    fn validate_rejects_bad_models() {
        let mut c = CostModel::default();
        c.synopsis_s = c.exact_s * 2.0;
        assert!(c.validate().is_err());
        c = CostModel::default();
        c.per_set_s = 0.0;
        assert!(c.validate().is_err());
    }
}

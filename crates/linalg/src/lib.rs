//! # at-linalg
//!
//! Linear-algebra and statistics substrate for the AccuracyTrader
//! reproduction (Han et al., ICPP 2016).
//!
//! The paper's offline synopsis-creation pipeline needs three numeric
//! building blocks, all provided here:
//!
//! * [`Matrix`] / [`SparseMatrix`] — dense row-major and CSR sparse storage
//!   for input datasets (user-item rating matrices, document term vectors).
//! * [`svd::IncrementalSvd`] — the incremental, gradient-descent SVD of
//!   Gorrell / Funk that the paper cites for step 1 of synopsis creation
//!   (dimensionality reduction whose cost is independent of dataset size).
//! * [`stats`] / [`mod@pearson`] — percentile estimation (the 99.9th-percentile
//!   tail-latency metric), RMSE, and Pearson's correlation coefficient (the
//!   CF weight measure used for accuracy-correlation estimation).
//!
//! Everything is deterministic given a caller-supplied RNG and allocates
//! predictably; hot loops are written over contiguous slices so the compiler
//! can vectorise them.

pub mod blocked;
pub mod matrix;
pub mod pearson;
pub mod sparse;
pub mod stats;
pub mod svd;
pub mod vector;

pub use blocked::{
    for_each_common_slot, pearson_on_common_blocked, pearson_on_common_lanes4,
    pearson_on_common_lanes8, BlockedRow, BlockedSet, LANES,
};
pub use matrix::Matrix;
pub use pearson::{pearson, pearson_on_common, pearson_on_common_alloc, WelfordPair};
pub use sparse::{SparseMatrix, SparseMatrixBuilder};
pub use stats::{mean, percentile, rmse, stddev, variance, Percentiles, RowStats, StreamingStats};
pub use svd::{IncrementalSvd, SvdConfig, SvdModel};
pub use vector::{add_assign, dot, euclidean, norm2, scale, sub};

//! Pearson's correlation coefficient.
//!
//! In the paper's CF recommender, the weight between an active user and a
//! neighbourhood user is Pearson's correlation computed over the items both
//! users have rated (§3.2), and the same weight against *aggregated* users
//! is the correlation estimate `c_i` of Algorithm 1.
//!
//! # Hot-path invariants
//!
//! [`pearson_on_common`] sits on the per-request serving path: every
//! synopsis weight and every exact neighbour weight goes through it, so it
//! must be **allocation-free and single-pass**. The intersection of the two
//! sorted column slices is consumed by a streaming merge that folds each
//! co-rated pair into Welford running moments — no intermediate `xs`/`ys`
//! vectors, no second pass over the common values. The allocating two-pass
//! formulation is retained as [`pearson_on_common_alloc`] strictly as the
//! differential-test oracle and the benchmark baseline; serving code must
//! never call it.

/// Pearson correlation of two equal-length samples.
///
/// Returns `0.0` when either sample has zero variance (the convention used
/// by CF systems: a flat co-rater carries no similarity signal) or when
/// fewer than two pairs exist.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        (cov / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Pearson correlation over the *intersection* of two sparse rating rows.
///
/// `(cols_a, vals_a)` and `(cols_b, vals_b)` are parallel slices with
/// `cols_*` sorted ascending (the invariant of
/// [`crate::SparseMatrix`] rows). Returns `(weight, common)` where `common`
/// is the number of co-rated items; weight is `0.0` when `common < 2`.
///
/// This is the exact CF weight of the paper: "the weight (similarity)
/// between user u and any neighbourhood user who has rated the same item".
///
/// Single-pass streaming merge: co-rated pairs are folded into Welford
/// running moments (mean, co-moment, second moments) as the merge advances,
/// so the call performs **no heap allocation** and touches each input entry
/// at most once.
pub fn pearson_on_common(
    cols_a: &[u32],
    vals_a: &[f64],
    cols_b: &[u32],
    vals_b: &[f64],
) -> (f64, usize) {
    debug_assert_eq!(cols_a.len(), vals_a.len());
    debug_assert_eq!(cols_b.len(), vals_b.len());
    let mut n = 0usize;
    let mut mean_x = 0.0f64;
    let mut mean_y = 0.0f64;
    let mut m2x = 0.0f64;
    let mut m2y = 0.0f64;
    let mut cxy = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < cols_a.len() && j < cols_b.len() {
        match cols_a[i].cmp(&cols_b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (x, y) = (vals_a[i], vals_b[j]);
                n += 1;
                let inv = 1.0 / n as f64;
                let dx = x - mean_x;
                let dy = y - mean_y;
                mean_x += dx * inv;
                mean_y += dy * inv;
                // Post-update deltas: Welford's numerically stable form.
                let dx2 = x - mean_x;
                let dy2 = y - mean_y;
                m2x += dx * dx2;
                m2y += dy * dy2;
                cxy += dx * dy2;
                i += 1;
                j += 1;
            }
        }
    }
    if n < 2 || m2x <= 0.0 || m2y <= 0.0 {
        (0.0, n)
    } else {
        ((cxy / (m2x.sqrt() * m2y.sqrt())).clamp(-1.0, 1.0), n)
    }
}

/// The pre-streaming, allocating formulation of [`pearson_on_common`]:
/// materialises the intersection into two vectors, then runs the two-pass
/// dense [`pearson`] over them.
///
/// Kept **only** as the differential-test oracle (the streaming merge must
/// agree with it on random sparse rows) and as the "before" baseline of the
/// hot-path benchmarks. Not for serving-path use.
pub fn pearson_on_common_alloc(
    cols_a: &[u32],
    vals_a: &[f64],
    cols_b: &[u32],
    vals_b: &[f64],
) -> (f64, usize) {
    debug_assert_eq!(cols_a.len(), vals_a.len());
    debug_assert_eq!(cols_b.len(), vals_b.len());
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < cols_a.len() && j < cols_b.len() {
        match cols_a[i].cmp(&cols_b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                xs.push(vals_a[i]);
                ys.push(vals_b[j]);
                i += 1;
                j += 1;
            }
        }
    }
    let common = xs.len();
    if common < 2 {
        (0.0, common)
    } else {
        (pearson(&xs, &ys), common)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_gives_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn too_few_pairs_gives_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        // A symmetric pattern with zero covariance.
        let a = [1.0, 2.0, 1.0, 2.0];
        let b = [1.0, 1.0, 2.0, 2.0];
        assert!(pearson(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn result_is_clamped() {
        let a = [1e-8, 2e-8, 3e-8];
        let b = [1e-8, 2e-8, 3e-8];
        let r = pearson(&a, &b);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn common_intersection_basic() {
        // User A rated items 1,2,3; user B rated 2,3,4. Common = {2,3}.
        let (w, n) = pearson_on_common(&[1, 2, 3], &[5.0, 1.0, 2.0], &[2, 3, 4], &[2.0, 4.0, 1.0]);
        assert_eq!(n, 2);
        // Two points always correlate perfectly (here positively: 1<2, 2<4).
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_overlap_gives_zero_weight() {
        let (w, n) = pearson_on_common(&[1, 2], &[1.0, 2.0], &[3, 4], &[1.0, 2.0]);
        assert_eq!(n, 0);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn single_common_item_gives_zero_weight() {
        let (w, n) = pearson_on_common(&[1], &[5.0], &[1], &[5.0]);
        assert_eq!(n, 1);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn intersection_matches_dense_pearson() {
        let cols_a = [0u32, 1, 2, 3, 5];
        let vals_a = [1.0, 4.0, 2.0, 5.0, 3.0];
        let cols_b = [1u32, 2, 3, 4, 5];
        let vals_b = [2.0, 1.0, 4.0, 9.0, 2.0];
        let (w, n) = pearson_on_common(&cols_a, &vals_a, &cols_b, &vals_b);
        assert_eq!(n, 4); // items 1,2,3,5
        let dense = pearson(&[4.0, 2.0, 5.0, 3.0], &[2.0, 1.0, 4.0, 2.0]);
        assert!((w - dense).abs() < 1e-12);
    }

    #[test]
    fn streaming_constant_side_gives_zero() {
        // A constant common side must yield exactly 0 (Welford's m2 is
        // exactly zero for constant input, not merely tiny).
        let cols = [0u32, 1, 2, 3];
        let (w, n) = pearson_on_common(&cols, &[2.5; 4], &cols, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(n, 4);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn streaming_matches_allocating_oracle() {
        let cols_a = [0u32, 2, 3, 5, 8, 9];
        let vals_a = [1.0, 4.5, 2.0, 5.0, 3.0, 0.5];
        let cols_b = [1u32, 2, 3, 4, 5, 9];
        let vals_b = [2.0, 1.0, 4.0, 9.0, 2.0, 4.5];
        let (ws, ns) = pearson_on_common(&cols_a, &vals_a, &cols_b, &vals_b);
        let (wa, na) = pearson_on_common_alloc(&cols_a, &vals_a, &cols_b, &vals_b);
        assert_eq!(ns, na);
        assert!((ws - wa).abs() < 1e-12, "{ws} vs {wa}");
    }
}

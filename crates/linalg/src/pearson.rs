//! Pearson's correlation coefficient.
//!
//! In the paper's CF recommender, the weight between an active user and a
//! neighbourhood user is Pearson's correlation computed over the items both
//! users have rated (§3.2), and the same weight against *aggregated* users
//! is the correlation estimate `c_i` of Algorithm 1.
//!
//! # Hot-path invariants
//!
//! [`pearson_on_common`] sits on the per-request serving path: every
//! synopsis weight and every exact neighbour weight goes through it, so it
//! must be **allocation-free and single-pass**. The intersection of the two
//! sorted column slices is consumed by a streaming merge that folds each
//! co-rated pair into Welford running moments — no intermediate `xs`/`ys`
//! vectors, no second pass over the common values. The allocating two-pass
//! formulation is retained as [`pearson_on_common_alloc`] strictly as the
//! differential-test oracle and the benchmark baseline; serving code must
//! never call it.

/// The shared Welford pair-moment accumulator: running means, second
/// moments and co-moment of a stream of `(x, y)` pairs, folded one pair at
/// a time in the numerically stable post-update-delta form.
///
/// Every Pearson kernel in this crate — dense [`pearson`], streaming
/// [`pearson_on_common`], and the blocked/lane-chunked variants in
/// [`crate::blocked`] — funnels matched pairs through [`push`](Self::push)
/// in ascending column order and ends with [`finish`](Self::finish). One
/// recurrence, one op order: kernels that visit the same pairs in the same
/// order are bit-identical by construction, which is what lets the blocked
/// layout swap in under the differential oracle without moving a single
/// result bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct WelfordPair {
    n: usize,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl WelfordPair {
    /// Fresh accumulator (zero pairs seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one `(x, y)` pair into the running moments.
    #[inline(always)]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let inv = 1.0 / self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx * inv;
        self.mean_y += dy * inv;
        // Post-update deltas: Welford's numerically stable form.
        let dx2 = x - self.mean_x;
        let dy2 = y - self.mean_y;
        self.m2x += dx * dx2;
        self.m2y += dy * dy2;
        self.cxy += dx * dy2;
    }

    /// `(weight, pairs)` under the CF conventions: `0.0` for fewer than two
    /// pairs or a zero-variance side, clamped to `[-1, 1]` otherwise.
    #[inline]
    pub fn finish(self) -> (f64, usize) {
        if self.n < 2 || self.m2x <= 0.0 || self.m2y <= 0.0 {
            (0.0, self.n)
        } else {
            (
                (self.cxy / (self.m2x.sqrt() * self.m2y.sqrt())).clamp(-1.0, 1.0),
                self.n,
            )
        }
    }
}

/// Pearson correlation of two equal-length samples.
///
/// Returns `0.0` when either sample has zero variance (the convention used
/// by CF systems: a flat co-rater carries no similarity signal) or when
/// fewer than two pairs exist.
///
/// Single pass: pairs fold through the same [`WelfordPair`] recurrence as
/// [`pearson_on_common`], so gathering an intersection and calling this
/// (what [`pearson_on_common_alloc`] does) yields **bit-identical** results
/// to streaming the intersection directly — which is what makes the
/// allocating formulation a byte-exact differential oracle for every
/// streaming/blocked kernel variant. A constant side still gives exactly
/// `0.0`: Welford's `m2` is exactly zero for constant input.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let mut w = WelfordPair::new();
    for (&x, &y) in a.iter().zip(b) {
        w.push(x, y);
    }
    w.finish().0
}

/// Pearson correlation over the *intersection* of two sparse rating rows.
///
/// `(cols_a, vals_a)` and `(cols_b, vals_b)` are parallel slices with
/// `cols_*` sorted ascending (the invariant of
/// [`crate::SparseMatrix`] rows). Returns `(weight, common)` where `common`
/// is the number of co-rated items; weight is `0.0` when `common < 2`.
///
/// This is the exact CF weight of the paper: "the weight (similarity)
/// between user u and any neighbourhood user who has rated the same item".
///
/// Single-pass streaming merge: co-rated pairs are folded into Welford
/// running moments (mean, co-moment, second moments) as the merge advances,
/// so the call performs **no heap allocation** and touches each input entry
/// at most once.
pub fn pearson_on_common(
    cols_a: &[u32],
    vals_a: &[f64],
    cols_b: &[u32],
    vals_b: &[f64],
) -> (f64, usize) {
    debug_assert_eq!(cols_a.len(), vals_a.len());
    debug_assert_eq!(cols_b.len(), vals_b.len());
    let mut w = WelfordPair::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < cols_a.len() && j < cols_b.len() {
        match cols_a[i].cmp(&cols_b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                w.push(vals_a[i], vals_b[j]);
                i += 1;
                j += 1;
            }
        }
    }
    w.finish()
}

/// The pre-streaming, allocating formulation of [`pearson_on_common`]:
/// materialises the intersection into two vectors, then runs the dense
/// [`pearson`] over them.
///
/// Kept **only** as the differential-test oracle (the streaming, blocked
/// and lane-chunked merges must agree with it **bit-for-bit** on random
/// sparse rows — gather + fold and stream + fold share the
/// [`WelfordPair`] recurrence, so the op sequences coincide) and as the
/// "before" baseline of the hot-path benchmarks. Not for serving-path use.
pub fn pearson_on_common_alloc(
    cols_a: &[u32],
    vals_a: &[f64],
    cols_b: &[u32],
    vals_b: &[f64],
) -> (f64, usize) {
    debug_assert_eq!(cols_a.len(), vals_a.len());
    debug_assert_eq!(cols_b.len(), vals_b.len());
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < cols_a.len() && j < cols_b.len() {
        match cols_a[i].cmp(&cols_b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                xs.push(vals_a[i]);
                ys.push(vals_b[j]);
                i += 1;
                j += 1;
            }
        }
    }
    let common = xs.len();
    if common < 2 {
        (0.0, common)
    } else {
        (pearson(&xs, &ys), common)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_gives_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn too_few_pairs_gives_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        // A symmetric pattern with zero covariance.
        let a = [1.0, 2.0, 1.0, 2.0];
        let b = [1.0, 1.0, 2.0, 2.0];
        assert!(pearson(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn result_is_clamped() {
        let a = [1e-8, 2e-8, 3e-8];
        let b = [1e-8, 2e-8, 3e-8];
        let r = pearson(&a, &b);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn common_intersection_basic() {
        // User A rated items 1,2,3; user B rated 2,3,4. Common = {2,3}.
        let (w, n) = pearson_on_common(&[1, 2, 3], &[5.0, 1.0, 2.0], &[2, 3, 4], &[2.0, 4.0, 1.0]);
        assert_eq!(n, 2);
        // Two points always correlate perfectly (here positively: 1<2, 2<4).
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_overlap_gives_zero_weight() {
        let (w, n) = pearson_on_common(&[1, 2], &[1.0, 2.0], &[3, 4], &[1.0, 2.0]);
        assert_eq!(n, 0);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn single_common_item_gives_zero_weight() {
        let (w, n) = pearson_on_common(&[1], &[5.0], &[1], &[5.0]);
        assert_eq!(n, 1);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn intersection_matches_dense_pearson() {
        let cols_a = [0u32, 1, 2, 3, 5];
        let vals_a = [1.0, 4.0, 2.0, 5.0, 3.0];
        let cols_b = [1u32, 2, 3, 4, 5];
        let vals_b = [2.0, 1.0, 4.0, 9.0, 2.0];
        let (w, n) = pearson_on_common(&cols_a, &vals_a, &cols_b, &vals_b);
        assert_eq!(n, 4); // items 1,2,3,5
        let dense = pearson(&[4.0, 2.0, 5.0, 3.0], &[2.0, 1.0, 4.0, 2.0]);
        assert!((w - dense).abs() < 1e-12);
    }

    #[test]
    fn streaming_constant_side_gives_zero() {
        // A constant common side must yield exactly 0 (Welford's m2 is
        // exactly zero for constant input, not merely tiny).
        let cols = [0u32, 1, 2, 3];
        let (w, n) = pearson_on_common(&cols, &[2.5; 4], &cols, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(n, 4);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn streaming_matches_allocating_oracle() {
        let cols_a = [0u32, 2, 3, 5, 8, 9];
        let vals_a = [1.0, 4.5, 2.0, 5.0, 3.0, 0.5];
        let cols_b = [1u32, 2, 3, 4, 5, 9];
        let vals_b = [2.0, 1.0, 4.0, 9.0, 2.0, 4.5];
        let (ws, ns) = pearson_on_common(&cols_a, &vals_a, &cols_b, &vals_b);
        let (wa, na) = pearson_on_common_alloc(&cols_a, &vals_a, &cols_b, &vals_b);
        assert_eq!(ns, na);
        assert!((ws - wa).abs() < 1e-12, "{ws} vs {wa}");
    }

    #[test]
    fn allocating_oracle_is_bit_identical_to_streaming() {
        // Since the dense `pearson` became the same single-pass Welford
        // fold as the streaming merge, gather-then-fold and stream-fold run
        // the identical op sequence: the oracle is byte-exact, which is the
        // property the blocked/lane kernel proptests lean on.
        let cols_a = [0u32, 2, 3, 5, 8, 9, 11, 13];
        let vals_a = [1.0, 4.5, 2.0, 5.0, 3.0, 0.5, 2.25, 1.75];
        let cols_b = [1u32, 2, 3, 4, 5, 9, 11, 13];
        let vals_b = [2.0, 1.0, 4.0, 9.0, 2.0, 4.5, 0.125, 3.5];
        let (ws, ns) = pearson_on_common(&cols_a, &vals_a, &cols_b, &vals_b);
        let (wa, na) = pearson_on_common_alloc(&cols_a, &vals_a, &cols_b, &vals_b);
        assert_eq!(ns, na);
        assert_eq!(ws.to_bits(), wa.to_bits());
    }

    #[test]
    fn dense_welford_keeps_conventions() {
        // Satellite regression: the single-pass rewrite keeps the clamp and
        // zero-variance conventions of the two-pass form bit-compatible.
        assert_eq!(
            pearson(&[2.5, 2.5, 2.5], &[1.0, 2.0, 3.0]).to_bits(),
            0.0f64.to_bits()
        );
        assert_eq!(pearson(&[7.0], &[3.0]).to_bits(), 0.0f64.to_bits());
        let r = pearson(&[1.0, 2.0, 3.0, 4.0], &[2.0, 4.0, 6.0, 8.0]);
        assert!(r <= 1.0 && (r - 1.0).abs() < 1e-12);
    }
}

//! Summary statistics: mean/variance, RMSE, and percentile estimation.
//!
//! The paper's headline performance metric is the **99.9th-percentile
//! component latency**; its headline accuracy metric for the recommender is
//! **RMSE**. Both live here so every crate shares one definition.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root-mean-square error between predictions and ground truth — the
/// recommender accuracy metric of the paper (§4.1).
///
/// # Panics
/// Panics if lengths differ or both are empty.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse: length mismatch");
    assert!(!predicted.is_empty(), "rmse: empty input");
    let se: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    (se / predicted.len() as f64).sqrt()
}

/// The `p`-th percentile (0 ≤ p ≤ 100) of `xs` using linear interpolation
/// between closest ranks (the "exclusive" definition used by most latency
/// tooling). Sorts a copy; for repeated queries use [`Percentiles`].
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in input"));
    percentile_of_sorted(&sorted, p)
}

fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile: empty input");
    assert!((0.0..=100.0).contains(&p), "percentile: p={p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Pre-sorted sample supporting repeated percentile queries — used by the
/// simulator's metric recorder which asks for p50/p95/p99/p99.9 of the same
/// latency population.
#[derive(Clone, Debug)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Sort `samples` once for repeated queries.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Percentiles: empty sample set");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("Percentiles: NaN in input"));
        Percentiles { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100).
    pub fn get(&self, p: f64) -> f64 {
        percentile_of_sorted(&self.sorted, p)
    }

    /// Convenience accessor for the paper's tail metric.
    pub fn p999(&self) -> f64 {
        self.get(99.9)
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.get(50.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }
}

/// Cached summary of one sparse row's stored values: sum, entry count, and
/// the derived mean.
///
/// The CF prediction path needs a neighbour's mean rating for every
/// accumulated neighbour; recomputing it per request turns an `O(1)` lookup
/// into an `O(nnz)` scan on the hot path. Stores cache a `RowStats` next to
/// each row (and each aggregated synopsis point) and invalidate it whenever
/// the row changes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RowStats {
    /// Sum of the stored values.
    pub sum: f64,
    /// Number of stored entries (`nnz`).
    pub nnz: usize,
}

impl RowStats {
    /// Compute the stats of one row's value slice.
    pub fn of(vals: &[f64]) -> Self {
        RowStats {
            sum: vals.iter().sum(),
            nnz: vals.len(),
        }
    }

    /// Mean of the stored values; `0.0` for an empty row.
    pub fn mean(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            self.sum / self.nnz as f64
        }
    }
}

/// Online mean/variance accumulator (Welford). Used where samples stream in
/// (e.g. per-component service-time calibration) and storing them all would
/// be wasteful.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamingStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        StreamingStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` before any observation.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations so far.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` before any observation).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` before any observation).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn rmse_perfect_prediction_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors 1 and -1 -> rmse 1
        assert_eq!(rmse(&[2.0, 1.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
        assert!((percentile(&xs, 99.9) - 9.99).abs() < 1e-9);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[42.0], 99.9), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn percentiles_struct_matches_free_function() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let p = Percentiles::new(xs.clone());
        for q in [0.0, 10.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(p.get(q), percentile(&xs, q), "q={q}");
        }
        assert_eq!(p.min(), 0.0);
        assert_eq!(p.max(), 999.0);
        assert_eq!(p.len(), 1000);
    }

    #[test]
    fn p999_is_deep_tail() {
        // 10_000 samples of 1ms with 20 samples of 1000ms (0.2% of the
        // population): p99.9 must sit in the slow region, far above the
        // median.
        let mut xs = vec![1.0; 10_000];
        xs.extend(vec![1000.0; 20]);
        let p = Percentiles::new(xs);
        assert!(p.p999() > p.median() * 100.0);
    }

    #[test]
    fn row_stats_sum_nnz_mean() {
        let s = RowStats::of(&[1.0, 2.0, 6.0]);
        assert_eq!(s.sum, 9.0);
        assert_eq!(s.nnz, 3);
        assert_eq!(s.mean(), 3.0);
        let empty = RowStats::of(&[]);
        assert_eq!(empty.nnz, 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn streaming_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn streaming_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn streaming_merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&StreamingStats::new());
        assert_eq!(a.mean(), before.mean());
        assert_eq!(a.count(), before.count());
    }
}

//! Small dense-vector kernels used throughout the workspace.
//!
//! All functions operate on `&[f64]` slices and panic if lengths differ;
//! the callers (SVD training, R-tree distance computations, similarity
//! scoring) always hold equal-length feature vectors.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared L2 norm of `a`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// `a += b` element-wise.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add_assign: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a - b` as a new vector.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a *= s` element-wise.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_matches_self_dot() {
        let v = [3.0, -4.0];
        assert_eq!(norm2(&v), dot(&v, &v));
        assert_eq!(norm2(&v), 25.0);
    }

    #[test]
    fn euclidean_345() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn euclidean_is_symmetric() {
        let a = [1.0, 2.5, -3.0];
        let b = [-0.5, 0.0, 7.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
    }

    #[test]
    fn add_assign_and_sub_roundtrip() {
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &[3.0, 4.0]);
        assert_eq!(a, vec![4.0, 6.0]);
        assert_eq!(sub(&a, &[3.0, 4.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut a = vec![1.0, -2.0, 0.5];
        scale(&mut a, 2.0);
        assert_eq!(a, vec![2.0, -4.0, 1.0]);
    }
}

//! CSR sparse matrix for user-item rating data.
//!
//! A CF rating matrix is extremely sparse (the paper's subsets hold ~0.27 M
//! ratings over 4 000 users × 1 000 items ≈ 6.8 % density). CSR keeps each
//! user's ratings contiguous, which is the access pattern of both Pearson
//! weight computation (iterate two users' common items) and incremental SVD
//! training (iterate all observed cells).

/// Compressed sparse row matrix of `f64` values.
///
/// Rows are users / documents; columns are items / terms. Column indices
/// within a row are kept sorted so that two rows can be intersected with a
/// linear merge.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes `col_idx` / `values` for row `r`.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` pairs of row `r`, sorted by column.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (s, e) = self.row_range(r);
        self.col_idx[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }

    /// Column indices of row `r` (sorted ascending).
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        let (s, e) = self.row_range(r);
        &self.col_idx[s..e]
    }

    /// Values of row `r`, parallel to [`Self::row_cols`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        let (s, e) = self.row_range(r);
        &self.values[s..e]
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        let (s, e) = self.row_range(r);
        e - s
    }

    /// Blocked view of row `r` (see [`crate::blocked`]): fixed-width column
    /// blocks with dense value lanes + occupancy masks, for the
    /// block-aligned kernels. Allocates — construction/offline path; the
    /// CSR slices above remain the compat view.
    pub fn row_blocked(&self, r: usize) -> crate::blocked::BlockedRow {
        crate::blocked::BlockedRow::from_sorted(self.row_cols(r), self.row_values(r))
    }

    /// Value at `(r, c)` if stored.
    pub fn get(&self, r: usize, c: u32) -> Option<f64> {
        let (s, e) = self.row_range(r);
        let cols = &self.col_idx[s..e];
        cols.binary_search(&c).ok().map(|i| self.values[s + i])
    }

    /// Mean of the stored values of row `r`, or `None` when the row is empty.
    pub fn row_mean(&self, r: usize) -> Option<f64> {
        let vals = self.row_values(r);
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Iterate over all stored `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    #[inline]
    fn row_range(&self, r: usize) -> (usize, usize) {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        (self.row_ptr[r], self.row_ptr[r + 1])
    }
}

/// Incremental builder for a [`SparseMatrix`].
///
/// Entries may be pushed in any order; `build` sorts and deduplicates
/// (last write wins), matching how a rating stream updates a matrix.
#[derive(Clone, Debug, Default)]
pub struct SparseMatrixBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, u32, f64)>,
}

impl SparseMatrixBuilder {
    /// Create a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        SparseMatrixBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Stage entry `(r, c) = v`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, r: usize, c: u32, v: f64) {
        assert!(r < self.rows, "push: row {r} out of bounds");
        assert!((c as usize) < self.cols, "push: col {c} out of bounds");
        self.entries.push((r, c, v));
    }

    /// Number of staged entries (before dedup).
    pub fn staged(&self) -> usize {
        self.entries.len()
    }

    /// Finalize into CSR form. Duplicate coordinates keep the value staged
    /// last, so replaying an update stream gives the stream's final state.
    pub fn build(mut self) -> SparseMatrix {
        // Stable sort keeps duplicate coordinates in push order; the dedup
        // pass below then keeps the last pushed value.
        self.entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut dedup: Vec<(usize, u32, f64)> = Vec::with_capacity(self.entries.len());
        for e in self.entries {
            match dedup.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 = e.2,
                _ => dedup.push(e),
            }
        }

        let mut row_ptr = vec![0usize; self.rows + 1];
        for &(r, _, _) in &dedup {
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = dedup.iter().map(|&(_, c, _)| c).collect();
        let values = dedup.iter().map(|&(_, _, v)| v).collect();
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(3, 4);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 3, 3.0);
        b.push(2, 1, 4.0);
        b.build()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let m = sample();
        assert_eq!(m.row_cols(2), &[1, 3]);
        assert_eq!(m.row_values(2), &[4.0, 3.0]);
    }

    #[test]
    fn empty_row_has_no_entries() {
        let m = sample();
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_mean(1), None);
    }

    #[test]
    fn get_hits_and_misses() {
        let m = sample();
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(2, 1), Some(4.0));
    }

    #[test]
    fn duplicate_push_last_wins() {
        let mut b = SparseMatrixBuilder::new(1, 2);
        b.push(0, 1, 5.0);
        b.push(0, 1, 9.0);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), Some(9.0));
    }

    #[test]
    fn row_mean_averages_stored_values() {
        let m = sample();
        assert_eq!(m.row_mean(0), Some(1.5));
    }

    #[test]
    fn iter_visits_all_triples_in_row_major_order() {
        let m = sample();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 4.0), (2, 3, 3.0)]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut b = SparseMatrixBuilder::new(1, 1);
        b.push(0, 5, 1.0);
    }

    #[test]
    fn empty_matrix() {
        let m = SparseMatrixBuilder::new(0, 0).build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.iter().count(), 0);
    }
}

//! Dense row-major matrix.
//!
//! Used for the low-dimensional output of the SVD step (step 1 of synopsis
//! creation): a `u × v` input dataset is reduced to a `u × j` dense matrix
//! (`j` ≈ 3) whose rows are then spatially indexed by the R-tree.

use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// Row-major layout keeps each data point's feature vector contiguous, which
/// is what the R-tree construction and distance kernels iterate over.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from an iterator of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut data = Vec::new();
        let mut cols = None;
        let mut nrows = 0;
        for row in rows {
            let row = row.as_ref();
            match cols {
                None => cols = Some(row.len()),
                Some(c) => assert_eq!(c, row.len(), "from_rows: ragged rows"),
            }
            data.extend_from_slice(row);
            nrows += 1;
        }
        Matrix {
            rows: nrows,
            cols: cols.unwrap_or(0),
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Matrix transpose (allocates).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product `self * other` (naive triple loop; only used in tests
    /// and small reconstruction checks, never on hot paths).
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Frobenius norm of `self - other`, used to measure SVD reconstruction
    /// error in tests.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn frobenius_distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "frobenius: row mismatch");
        assert_eq!(self.cols, other.cols, "frobenius: col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_get_set() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        m.set(1, 1, 9.0);
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn from_rows_builds_consistent_matrix() {
        let m = Matrix::from_rows([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows([vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn row_mut_mutates_in_place() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[7.0, 8.0, 9.0]);
        assert_eq!(m.row(1), &[7.0, 8.0, 9.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let id = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn frobenius_distance_zero_for_equal() {
        let m = Matrix::filled(3, 3, 2.5);
        assert_eq!(m.frobenius_distance(&m), 0.0);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = Matrix::from_rows([[1.0], [2.0], [3.0]]);
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0][..], &[2.0][..], &[3.0][..]]);
    }

    #[test]
    fn empty_matrix_iter_rows() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(m.iter_rows().count(), 0);
    }
}

//! Blocked sparse row layout and block-aligned correlation kernels.
//!
//! The streaming kernels in [`crate::pearson`] walk two sorted column lists
//! element-at-a-time: every merge step is a data-dependent three-way branch,
//! so the CPU mispredicts its way through the intersection. This module
//! re-buckets a sparse row into fixed-width **column blocks** of
//! [`LANES`] = 8 columns: per block a `u8` occupancy mask plus a dense
//! `[f64; 8]` value lane array (absent lanes hold `0.0`). Intersection then
//! becomes a merge over *block ids* — 8× fewer merge steps — and within a
//! matching block a single `mask_a & mask_b` AND replaces up to eight
//! compare-branches; matched lanes are walked in ascending bit order, or via
//! a fixed-trip unrolled loop when both blocks are full.
//!
//! # Bit-identity contract
//!
//! Every kernel here folds matched pairs through the **same Welford
//! recurrence, in the same ascending-column order, with the same finish
//! conventions** as [`crate::pearson_on_common`] (shared
//! [`WelfordPair`]). Block layout changes how intersections are *found*,
//! never the floating-point operation sequence — so the blocked kernels are
//! drop-in bit-identical replacements for the scalar ones, and the
//! allocating oracle [`crate::pearson_on_common_alloc`] proves them equal
//! byte-for-byte in the differential proptests.
//!
//! The Welford recurrence itself is a serial dependence (`mean` feeds the
//! next delta), so lanes cannot legally parallelise the *fold* without
//! reassociating — which would break bit-identity. Lane width is therefore
//! spent where it is free: gathering, masking and selecting candidate pairs
//! in fixed-width chunks the autovectorizer can keep in vector registers.
//! Everything is stable, `unsafe`-free Rust (the workspace forbids
//! `unsafe`); there are no intrinsics to audit.

use crate::pearson::WelfordPair;

/// Lanes per column block. A block covers columns
/// `[id * LANES, (id + 1) * LANES)`.
pub const LANES: usize = 8;

/// A sparse row re-bucketed into fixed-width column blocks.
///
/// Parallel arrays, one entry per *occupied* block (ascending block id):
/// `ids[k]` is the block id (`col / LANES`), `masks[k]` the occupancy bitmap
/// (bit `j` set ⇔ column `id * LANES + j` is stored), `lanes[k]` the dense
/// value lanes (absent lanes `0.0`). Empty blocks are not stored, so a row
/// with clustered columns stays compact while a fully dense row costs
/// `9/8`ths of its CSR values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockedRow {
    ids: Vec<u32>,
    masks: Vec<u8>,
    lanes: Vec<[f64; LANES]>,
}

impl BlockedRow {
    /// Build from parallel `(cols, vals)` with `cols` strictly ascending
    /// (the [`crate::SparseMatrix`] / `SparseRow` invariant).
    pub fn from_sorted(cols: &[u32], vals: &[f64]) -> Self {
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols not sorted");
        let mut row = BlockedRow {
            ids: Vec::new(),
            masks: Vec::new(),
            lanes: Vec::new(),
        };
        for (&c, &v) in cols.iter().zip(vals) {
            let id = c / LANES as u32;
            let lane = (c % LANES as u32) as usize;
            if row.ids.last() != Some(&id) {
                row.ids.push(id);
                row.masks.push(0);
                row.lanes.push([0.0; LANES]);
            }
            let k = row.ids.len() - 1;
            row.masks[k] |= 1 << lane;
            row.lanes[k][lane] = v;
        }
        row
    }

    /// Number of stored entries (total set mask bits).
    pub fn nnz(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Number of occupied blocks.
    pub fn num_blocks(&self) -> usize {
        self.ids.len()
    }

    /// True when the row stores no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Decode back to sorted `(cols, vals)` — the CSR round-trip view
    /// (construction/compat path; allocates, offline use only).
    pub fn to_sorted(&self) -> (Vec<u32>, Vec<f64>) {
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        self.for_each(|c, v| {
            cols.push(c);
            vals.push(v);
        });
        (cols, vals)
    }

    /// Visit stored `(col, val)` pairs in ascending column order.
    pub fn for_each(&self, mut f: impl FnMut(u32, f64)) {
        for ((&id, &mask), lanes) in self.ids.iter().zip(&self.masks).zip(&self.lanes) {
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                f(id * LANES as u32 + lane as u32, lanes[lane]);
                m &= m - 1;
            }
        }
    }
}

/// A blocked *membership + rank* set over a sorted column list — the target
/// side of the weighted linear merge ([`for_each_common_slot`]).
///
/// Same block bucketing as [`BlockedRow`] but values are replaced by a rank
/// prefix: `base[k]` counts the set bits in `masks[..k]`, so the position of
/// a member column inside the original sorted list is recovered branch-free
/// as `base[k] + popcount(mask & (bit - 1))`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockedSet {
    ids: Vec<u32>,
    masks: Vec<u8>,
    base: Vec<u32>,
    len: usize,
}

impl BlockedSet {
    /// Build from a strictly ascending column list.
    pub fn from_sorted(cols: &[u32]) -> Self {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols not sorted");
        let mut set = BlockedSet {
            ids: Vec::new(),
            masks: Vec::new(),
            base: Vec::new(),
            len: cols.len(),
        };
        for (rank, &c) in cols.iter().enumerate() {
            let id = c / LANES as u32;
            let lane = (c % LANES as u32) as usize;
            if set.ids.last() != Some(&id) {
                set.ids.push(id);
                set.masks.push(0);
                set.base.push(rank as u32);
            }
            let k = set.ids.len() - 1;
            set.masks[k] |= 1 << lane;
        }
        set
    }

    /// Number of member columns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Visit every `(slot, value)` where a column of `row` is a member of
/// `set`, in ascending column order; `slot` is the column's rank (position)
/// in the sorted list `set` was built from.
///
/// This is the block-aligned form of the two-pointer scan in the
/// recommender's `accumulate_neighbor`: the caller owns the per-slot
/// arithmetic, so the floating-point operation sequence — and thus
/// bit-identity with the scalar merge — is entirely in the caller's hands.
pub fn for_each_common_slot(row: &BlockedRow, set: &BlockedSet, mut f: impl FnMut(usize, f64)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < row.ids.len() && j < set.ids.len() {
        match row.ids[i].cmp(&set.ids[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let smask = set.masks[j];
                let base = set.base[j] as usize;
                let vals = &row.lanes[i];
                let mut m = row.masks[i] & smask;
                if m == 0xFF {
                    // Both blocks full: ranks are consecutive, trip count
                    // fixed — the loop unrolls and the gather vectorizes.
                    for (lane, &v) in vals.iter().enumerate() {
                        f(base + lane, v);
                    }
                } else {
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        let below = smask & ((1u8 << lane) - 1);
                        f(base + below.count_ones() as usize, vals[lane]);
                        m &= m - 1;
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
}

/// Block-aligned [`crate::pearson_on_common`]: Pearson correlation over the
/// intersection of two blocked rows. Returns `(weight, common)`.
///
/// Bit-identical to the scalar streaming kernel (see the module docs): the
/// merge runs over block ids, matched lanes come from one mask AND, and the
/// shared [`WelfordPair`] folds them in the scalar kernel's exact order.
pub fn pearson_on_common_blocked(a: &BlockedRow, b: &BlockedRow) -> (f64, usize) {
    let mut w = WelfordPair::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.ids.len() && j < b.ids.len() {
        match a.ids[i].cmp(&b.ids[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let m = a.masks[i] & b.masks[j];
                let (xs, ys) = (&a.lanes[i], &b.lanes[j]);
                if m == 0xFF {
                    // Full block on both sides: fixed-trip unrolled fold.
                    for lane in 0..LANES {
                        w.push(xs[lane], ys[lane]);
                    }
                } else {
                    let mut m = m;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        w.push(xs[lane], ys[lane]);
                        m &= m - 1;
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    w.finish()
}

/// Lane-chunked streaming Pearson over CSR slices: the two-pointer merge
/// gathers matched pairs into fixed-width `[f64; L]` buffers and folds each
/// full chunk through the shared Welford recurrence in a fixed-trip
/// (manually unrollable) loop. `L` = 4.
///
/// Same match order, same fold order ⇒ bit-identical to
/// [`crate::pearson_on_common`]; the chunking exists so the gather phase
/// runs over compiler-visible fixed-width arrays.
pub fn pearson_on_common_lanes4(
    cols_a: &[u32],
    vals_a: &[f64],
    cols_b: &[u32],
    vals_b: &[f64],
) -> (f64, usize) {
    pearson_on_common_lanes::<4>(cols_a, vals_a, cols_b, vals_b)
}

/// 8-lane variant of [`pearson_on_common_lanes4`].
pub fn pearson_on_common_lanes8(
    cols_a: &[u32],
    vals_a: &[f64],
    cols_b: &[u32],
    vals_b: &[f64],
) -> (f64, usize) {
    pearson_on_common_lanes::<8>(cols_a, vals_a, cols_b, vals_b)
}

fn pearson_on_common_lanes<const L: usize>(
    cols_a: &[u32],
    vals_a: &[f64],
    cols_b: &[u32],
    vals_b: &[f64],
) -> (f64, usize) {
    debug_assert_eq!(cols_a.len(), vals_a.len());
    debug_assert_eq!(cols_b.len(), vals_b.len());
    let mut w = WelfordPair::new();
    let mut bx = [0.0f64; L];
    let mut by = [0.0f64; L];
    let mut fill = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < cols_a.len() && j < cols_b.len() {
        match cols_a[i].cmp(&cols_b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                bx[fill] = vals_a[i];
                by[fill] = vals_b[j];
                fill += 1;
                if fill == L {
                    for lane in 0..L {
                        w.push(bx[lane], by[lane]);
                    }
                    fill = 0;
                }
                i += 1;
                j += 1;
            }
        }
    }
    for lane in 0..fill {
        w.push(bx[lane], by[lane]);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson::{pearson_on_common, pearson_on_common_alloc};

    fn row(pairs: &[(u32, f64)]) -> (Vec<u32>, Vec<f64>) {
        (
            pairs.iter().map(|&(c, _)| c).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
    }

    #[test]
    fn from_sorted_roundtrips() {
        let (cols, vals) = row(&[(0, 1.0), (3, 2.0), (7, 3.0), (8, 4.0), (31, 5.0)]);
        let b = BlockedRow::from_sorted(&cols, &vals);
        assert_eq!(b.nnz(), 5);
        assert_eq!(b.num_blocks(), 3); // blocks 0, 1, 3
        assert_eq!(b.to_sorted(), (cols, vals));
    }

    #[test]
    fn empty_row_is_empty() {
        let b = BlockedRow::from_sorted(&[], &[]);
        assert!(b.is_empty());
        assert_eq!(b.nnz(), 0);
        assert_eq!(b.to_sorted(), (vec![], vec![]));
    }

    #[test]
    fn blocked_pearson_is_bit_identical_to_scalar() {
        let (ca, va) = row(&[(0, 1.0), (2, 4.5), (3, 2.0), (5, 5.0), (8, 3.0), (9, 0.5)]);
        let (cb, vb) = row(&[(1, 2.0), (2, 1.0), (3, 4.0), (4, 9.0), (5, 2.0), (9, 4.5)]);
        let a = BlockedRow::from_sorted(&ca, &va);
        let b = BlockedRow::from_sorted(&cb, &vb);
        let (ws, ns) = pearson_on_common(&ca, &va, &cb, &vb);
        let (wb, nb) = pearson_on_common_blocked(&a, &b);
        assert_eq!(ns, nb);
        assert_eq!(ws.to_bits(), wb.to_bits());
    }

    #[test]
    fn full_block_fast_path_is_bit_identical() {
        // Two rows dense over the same 16 columns: every block merge takes
        // the m == 0xFF unrolled path.
        let ca: Vec<u32> = (0..16).collect();
        let va: Vec<f64> = (0..16).map(|i| (i % 5) as f64 + 1.0).collect();
        let vb: Vec<f64> = (0..16).map(|i| 5.0 - (i % 4) as f64).collect();
        let a = BlockedRow::from_sorted(&ca, &va);
        let b = BlockedRow::from_sorted(&ca, &vb);
        let (ws, ns) = pearson_on_common(&ca, &va, &ca, &vb);
        let (wb, nb) = pearson_on_common_blocked(&a, &b);
        assert_eq!(ns, nb);
        assert_eq!(ws.to_bits(), wb.to_bits());
    }

    #[test]
    fn lane_variants_are_bit_identical_to_scalar() {
        let (ca, va) = row(&[(0, 1.0), (2, 4.5), (3, 2.0), (5, 5.0), (8, 3.0), (9, 0.5)]);
        let (cb, vb) = row(&[(1, 2.0), (2, 1.0), (3, 4.0), (4, 9.0), (5, 2.0), (9, 4.5)]);
        let (ws, ns) = pearson_on_common(&ca, &va, &cb, &vb);
        for (w, n) in [
            pearson_on_common_lanes4(&ca, &va, &cb, &vb),
            pearson_on_common_lanes8(&ca, &va, &cb, &vb),
        ] {
            assert_eq!(ns, n);
            assert_eq!(ws.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn blocked_agrees_with_allocating_oracle() {
        let (ca, va) = row(&[(0, 1.0), (2, 4.5), (3, 2.0), (5, 5.0), (8, 3.0)]);
        let (cb, vb) = row(&[(2, 1.0), (3, 4.0), (5, 2.0), (8, 4.5), (12, 7.0)]);
        let a = BlockedRow::from_sorted(&ca, &va);
        let b = BlockedRow::from_sorted(&cb, &vb);
        let (wb, nb) = pearson_on_common_blocked(&a, &b);
        let (wo, no) = pearson_on_common_alloc(&ca, &va, &cb, &vb);
        assert_eq!(nb, no);
        assert_eq!(wb.to_bits(), wo.to_bits());
    }

    #[test]
    fn empty_intersection_gives_zero() {
        let a = BlockedRow::from_sorted(&[0, 1], &[1.0, 2.0]);
        let b = BlockedRow::from_sorted(&[64, 65], &[1.0, 2.0]);
        assert_eq!(pearson_on_common_blocked(&a, &b), (0.0, 0));
    }

    #[test]
    fn blocked_set_ranks_match_positions() {
        let cols = [2u32, 5, 7, 8, 16, 17, 30];
        let set = BlockedSet::from_sorted(&cols);
        assert_eq!(set.len(), 7);
        let vals: Vec<f64> = cols.iter().map(|&c| c as f64).collect();
        let rowb = BlockedRow::from_sorted(&cols, &vals);
        let mut seen = Vec::new();
        for_each_common_slot(&rowb, &set, |slot, v| seen.push((slot, v)));
        let expect: Vec<(usize, f64)> = vals.iter().enumerate().map(|(i, &v)| (i, v)).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn common_slot_merge_matches_two_pointer_scan() {
        let targets = [1u32, 3, 6, 9, 14, 22];
        let (rc, rv) = row(&[(0, 0.5), (3, 1.5), (6, 2.5), (10, 3.5), (22, 4.5)]);
        let set = BlockedSet::from_sorted(&targets);
        let rowb = BlockedRow::from_sorted(&rc, &rv);
        let mut got = Vec::new();
        for_each_common_slot(&rowb, &set, |slot, v| got.push((slot, v)));
        // Reference: plain two-pointer merge over the sorted lists.
        let mut expect = Vec::new();
        let (mut i, mut t) = (0usize, 0usize);
        while i < rc.len() && t < targets.len() {
            match rc[i].cmp(&targets[t]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => t += 1,
                std::cmp::Ordering::Equal => {
                    expect.push((t, rv[i]));
                    i += 1;
                    t += 1;
                }
            }
        }
        assert_eq!(got, expect);
    }
}

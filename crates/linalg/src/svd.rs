//! Incremental (gradient-descent) SVD.
//!
//! Step 1 of the paper's synopsis creation uses "the incremental SVD \[17\]
//! whose execution time is independent of the dataset size": latent factors
//! are trained **one dimension at a time** by stochastic gradient descent
//! over the observed cells (Gorrell's generalized Hebbian algorithm; the
//! implementation the paper links is Simon Funk's). With `j` dimensions and
//! `i` epochs per dimension the cost is `O(j × i × nnz)` — in the paper's
//! accounting, `O(j × i)` passes.
//!
//! The trained **row factors** form the `u × j` low-dimensional dataset fed
//! to the R-tree; the model also supports *folding in* new rows against the
//! frozen column factors, which is how synopsis updating projects newly
//! arrived data points into the existing latent space without retraining.

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hyper-parameters for [`IncrementalSvd`].
#[derive(Clone, Copy, Debug)]
pub struct SvdConfig {
    /// Number of latent dimensions `j` (the paper uses 3).
    pub dims: usize,
    /// Gradient-descent epochs per dimension (the paper uses 100).
    pub epochs_per_dim: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub regularization: f64,
    /// Magnitude of the random factor initialization.
    pub init_scale: f64,
    /// RNG seed for factor initialization (fully deterministic fits).
    pub seed: u64,
}

impl Default for SvdConfig {
    fn default() -> Self {
        SvdConfig {
            dims: 3,
            epochs_per_dim: 100,
            learning_rate: 0.005,
            regularization: 0.02,
            init_scale: 0.1,
            seed: 0x5eed_5eed,
        }
    }
}

impl SvdConfig {
    /// Config matching the paper's synopsis-creation setting: 3 dimensions,
    /// 100 iterations per dimension.
    pub fn paper() -> Self {
        SvdConfig::default()
    }

    /// Builder-style override of the dimension count.
    pub fn with_dims(mut self, dims: usize) -> Self {
        self.dims = dims;
        self
    }

    /// Builder-style override of epochs per dimension.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs_per_dim = epochs;
        self
    }

    /// Builder-style override of the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fitted factor model: `value(r, c) ≈ global_mean + U[r] · V[c]`.
#[derive(Clone, Debug)]
pub struct SvdModel {
    /// `rows × dims` row factors — the reduced dataset.
    row_factors: Matrix,
    /// `cols × dims` column factors.
    col_factors: Matrix,
    /// Mean of all observed values (baseline predictor).
    global_mean: f64,
    config: SvdConfig,
}

impl SvdModel {
    /// The `u × j` reduced dataset (row factor vectors).
    pub fn row_factors(&self) -> &Matrix {
        &self.row_factors
    }

    /// The `v × j` column factor matrix.
    pub fn col_factors(&self) -> &Matrix {
        &self.col_factors
    }

    /// Mean of the observed training values.
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }

    /// Reduced feature vector of row `r`.
    pub fn row_vector(&self, r: usize) -> &[f64] {
        self.row_factors.row(r)
    }

    /// Reconstruct cell `(r, c)`.
    pub fn predict(&self, r: usize, c: usize) -> f64 {
        self.global_mean + crate::vector::dot(self.row_factors.row(r), self.col_factors.row(c))
    }

    /// Project a *new* row (given as a sparse `(col, value)` list) into the
    /// latent space by training only its factor vector against the frozen
    /// column factors. This is the incremental "fold-in" used when synopsis
    /// updating sees newly added data points.
    pub fn fold_in_row(&self, cols: &[u32], vals: &[f64], epochs: usize) -> Vec<f64> {
        debug_assert_eq!(cols.len(), vals.len());
        let dims = self.config.dims;
        let mut factors = vec![self.config.init_scale; dims];
        if cols.is_empty() {
            return factors;
        }
        let lr = self.config.learning_rate;
        let reg = self.config.regularization;
        for d in 0..dims {
            for _ in 0..epochs {
                for (&c, &v) in cols.iter().zip(vals) {
                    let col = self.col_factors.row(c as usize);
                    // Prediction using dimensions trained so far plus the
                    // one in flight, mirroring the per-dimension training.
                    let mut pred = self.global_mean;
                    for k in 0..=d {
                        pred += factors[k] * col[k];
                    }
                    let err = v - pred;
                    factors[d] += lr * (err * col[d] - reg * factors[d]);
                }
            }
        }
        factors
    }

    /// RMSE of the model over all observed cells of `data` — the measure
    /// that "minimizing the difference (distance) between the two datasets"
    /// refers to.
    pub fn reconstruction_rmse(&self, data: &SparseMatrix) -> f64 {
        let mut se = 0.0;
        let mut n = 0usize;
        for (r, c, v) in data.iter() {
            let e = v - self.predict(r, c as usize);
            se += e * e;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            (se / n as f64).sqrt()
        }
    }
}

/// Trainer for the incremental SVD.
pub struct IncrementalSvd {
    config: SvdConfig,
}

impl IncrementalSvd {
    /// Create a trainer with the given configuration.
    pub fn new(config: SvdConfig) -> Self {
        IncrementalSvd { config }
    }

    /// Fit the factor model over the observed cells of `data`.
    ///
    /// Dimensions are trained sequentially: dimension `d` descends on the
    /// residual left by dimensions `0..d`, exactly as in the
    /// Funk/Gorrell incremental scheme.
    ///
    /// # Panics
    /// Panics if `config.dims == 0`.
    pub fn fit(&self, data: &SparseMatrix) -> SvdModel {
        let cfg = self.config;
        assert!(cfg.dims > 0, "IncrementalSvd: dims must be >= 1");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut row_factors = Matrix::zeros(data.rows(), cfg.dims);
        let mut col_factors = Matrix::zeros(data.cols(), cfg.dims);
        for r in 0..data.rows() {
            for v in row_factors.row_mut(r) {
                *v = rng.random_range(-cfg.init_scale..cfg.init_scale);
            }
        }
        for c in 0..data.cols() {
            for v in col_factors.row_mut(c) {
                *v = rng.random_range(-cfg.init_scale..cfg.init_scale);
            }
        }

        let nnz = data.nnz();
        let global_mean = if nnz == 0 {
            0.0
        } else {
            data.iter().map(|(_, _, v)| v).sum::<f64>() / nnz as f64
        };

        // residual[k] caches v - (mean + sum_{d' < d} U[r][d']·V[c][d']) so
        // each dimension's epochs touch only two factor entries per cell.
        let mut residuals: Vec<f64> = data.iter().map(|(_, _, v)| v - global_mean).collect();

        for d in 0..cfg.dims {
            for _ in 0..cfg.epochs_per_dim {
                let mut k = 0usize;
                for r in 0..data.rows() {
                    let rf = row_factors.row_mut(r);
                    for (c, _v) in data.row(r) {
                        let cf = col_factors.row_mut(c as usize);
                        let err = residuals[k] - rf[d] * cf[d];
                        let ru = rf[d];
                        rf[d] += cfg.learning_rate * (err * cf[d] - cfg.regularization * rf[d]);
                        cf[d] += cfg.learning_rate * (err * ru - cfg.regularization * cf[d]);
                        k += 1;
                    }
                }
            }
            // Fold dimension d into the residuals before training d+1.
            let mut k = 0usize;
            for r in 0..data.rows() {
                let rf = row_factors.row(r);
                for (c, _v) in data.row(r) {
                    residuals[k] -= rf[d] * col_factors.get(c as usize, d);
                    k += 1;
                }
            }
        }

        SvdModel {
            row_factors,
            col_factors,
            global_mean,
            config: cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseMatrixBuilder;

    /// A matrix that is exactly `mean + a_r * b_c` with centred factors, so
    /// the mean-plus-rank-1 model class can reconstruct it perfectly.
    fn rank1_matrix(rows: usize, cols: usize) -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(rows, cols);
        for r in 0..rows {
            let a = (r as f64) / rows as f64 - 0.5;
            for c in 0..cols {
                let bc = (c as f64) / cols as f64 - 0.5;
                b.push(r, c as u32, 3.0 + a * bc);
            }
        }
        b.build()
    }

    #[test]
    fn learns_rank1_structure() {
        let data = rank1_matrix(20, 10);
        let model = IncrementalSvd::new(SvdConfig {
            dims: 1,
            epochs_per_dim: 800,
            learning_rate: 0.02,
            ..SvdConfig::default()
        })
        .fit(&data);
        let rmse = model.reconstruction_rmse(&data);
        assert!(rmse < 0.05, "rank-1 reconstruction rmse too high: {rmse}");
    }

    #[test]
    fn more_dims_reduce_reconstruction_error() {
        // rank-2 data: mean + a*b + c*d
        let mut b = SparseMatrixBuilder::new(30, 15);
        for r in 0..30 {
            for c in 0..15 {
                let v = 3.0
                    + (0.3 + r as f64 / 30.0) * (c as f64 / 15.0)
                    + ((r % 3) as f64 - 1.0) * ((c % 4) as f64 / 4.0 - 0.5);
                b.push(r, c as u32, v);
            }
        }
        let data = b.build();
        let cfg1 = SvdConfig {
            dims: 1,
            epochs_per_dim: 250,
            ..SvdConfig::default()
        };
        let cfg3 = SvdConfig {
            dims: 3,
            epochs_per_dim: 250,
            ..SvdConfig::default()
        };
        let e1 = IncrementalSvd::new(cfg1)
            .fit(&data)
            .reconstruction_rmse(&data);
        let e3 = IncrementalSvd::new(cfg3)
            .fit(&data)
            .reconstruction_rmse(&data);
        assert!(
            e3 < e1 * 0.8,
            "3 dims should fit rank-2 data much better: e1={e1} e3={e3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = rank1_matrix(10, 8);
        let cfg = SvdConfig::default().with_epochs(50);
        let m1 = IncrementalSvd::new(cfg).fit(&data);
        let m2 = IncrementalSvd::new(cfg).fit(&data);
        assert_eq!(m1.row_factors().as_slice(), m2.row_factors().as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let data = rank1_matrix(10, 8);
        let m1 = IncrementalSvd::new(SvdConfig::default().with_epochs(5)).fit(&data);
        let m2 = IncrementalSvd::new(SvdConfig::default().with_epochs(5).with_seed(99)).fit(&data);
        assert_ne!(m1.row_factors().as_slice(), m2.row_factors().as_slice());
    }

    #[test]
    fn reduced_dataset_has_requested_shape() {
        let data = rank1_matrix(12, 6);
        let model = IncrementalSvd::new(SvdConfig::paper().with_epochs(10)).fit(&data);
        assert_eq!(model.row_factors().rows(), 12);
        assert_eq!(model.row_factors().cols(), 3);
        assert_eq!(model.col_factors().rows(), 6);
    }

    #[test]
    fn similar_rows_stay_similar_after_reduction() {
        // Paper, Figure 2: "data points with similar feature attributes in t
        // still have similar attributes in t'". Build two groups of near-
        // duplicate rows and check within-group distances are smaller than
        // between-group distances in the reduced space.
        let mut b = SparseMatrixBuilder::new(20, 12);
        for r in 0..20 {
            let group_high = r < 10;
            for c in 0..12 {
                let base = if group_high ^ (c < 6) { 4.5 } else { 1.5 };
                let jitter = ((r * 7 + c * 13) % 5) as f64 * 0.05;
                b.push(r, c as u32, base + jitter);
            }
        }
        let data = b.build();
        let model = IncrementalSvd::new(SvdConfig {
            dims: 2,
            epochs_per_dim: 300,
            ..SvdConfig::default()
        })
        .fit(&data);
        let rf = model.row_factors();
        let within = crate::vector::euclidean(rf.row(0), rf.row(5));
        let between = crate::vector::euclidean(rf.row(0), rf.row(15));
        assert!(
            within < between,
            "reduction broke similarity: within={within} between={between}"
        );
    }

    #[test]
    fn fold_in_row_reconstructs_its_values() {
        // The point of fold-in is that the projected vector, combined with
        // the frozen column factors, predicts the new row's observed values.
        let data = rank1_matrix(20, 10);
        let model = IncrementalSvd::new(SvdConfig {
            dims: 2,
            epochs_per_dim: 400,
            learning_rate: 0.02,
            ..SvdConfig::default()
        })
        .fit(&data);
        let cols: Vec<u32> = data.row_cols(7).to_vec();
        let vals: Vec<f64> = data.row_values(7).to_vec();
        let v = model.fold_in_row(&cols, &vals, 400);
        let mut se = 0.0;
        for (&c, &actual) in cols.iter().zip(&vals) {
            let pred =
                model.global_mean() + crate::vector::dot(&v, model.col_factors().row(c as usize));
            se += (pred - actual) * (pred - actual);
        }
        let rmse = (se / vals.len() as f64).sqrt();
        assert!(rmse < 0.08, "fold-in prediction rmse too high: {rmse}");
    }

    #[test]
    fn fold_in_empty_row_returns_init() {
        let data = rank1_matrix(5, 5);
        let model = IncrementalSvd::new(SvdConfig::default().with_epochs(5)).fit(&data);
        let v = model.fold_in_row(&[], &[], 50);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn empty_matrix_fit_is_safe() {
        let data = SparseMatrixBuilder::new(0, 0).build();
        let model = IncrementalSvd::new(SvdConfig::default().with_epochs(1)).fit(&data);
        assert_eq!(model.global_mean(), 0.0);
        assert_eq!(model.reconstruction_rmse(&data), 0.0);
    }

    #[test]
    fn global_mean_is_mean_of_observed() {
        let mut b = SparseMatrixBuilder::new(2, 2);
        b.push(0, 0, 2.0);
        b.push(1, 1, 4.0);
        let data = b.build();
        let model = IncrementalSvd::new(SvdConfig::default().with_epochs(1)).fit(&data);
        assert_eq!(model.global_mean(), 3.0);
    }
}

//! Property-based tests for the numeric substrate.

use at_linalg::stats::{mean, percentile, variance, Percentiles, StreamingStats};
use at_linalg::{
    for_each_common_slot, pearson, pearson_on_common, pearson_on_common_alloc,
    pearson_on_common_blocked, pearson_on_common_lanes4, pearson_on_common_lanes8, BlockedRow,
    BlockedSet,
};
use proptest::prelude::*;

/// Build one sorted sparse row from a dense mask: entry `i` is present when
/// `mask[i]` is true, with value `vals[i]`.
fn sparse_row(mask: &[bool], vals: &[f64]) -> (Vec<u32>, Vec<f64>) {
    let mut cols = Vec::new();
    let mut out = Vec::new();
    for (i, (&m, &v)) in mask.iter().zip(vals).enumerate() {
        if m {
            cols.push(i as u32);
            out.push(v);
        }
    }
    (cols, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentile_is_monotone_in_p(xs in prop::collection::vec(-1e6f64..1e6, 1..200),
                                   p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
    }

    #[test]
    fn percentile_bounded_by_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200),
                                     p in 0.0f64..100.0) {
        let v = percentile(&xs, p);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn percentiles_struct_agrees_with_function(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                                               p in 0.0f64..100.0) {
        let s = Percentiles::new(xs.clone());
        prop_assert!((s.get(p) - percentile(&xs, p)).abs() < 1e-9);
    }

    #[test]
    fn streaming_stats_match_batch(xs in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        prop_assert!((s.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((s.variance() - variance(&xs)).abs() < 1e-4 * (1.0 + variance(&xs)));
    }

    #[test]
    fn streaming_merge_is_order_independent(xs in prop::collection::vec(-1e3f64..1e3, 2..100),
                                            cut in 1usize..99) {
        let cut = cut.min(xs.len() - 1);
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..cut] { a.push(x); }
        for &x in &xs[cut..] { b.push(x); }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..60)) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let ab = pearson(&a, &b);
        let ba = pearson(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    #[test]
    fn pearson_invariant_to_affine_transform(pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..60),
                                             scale in 0.1f64..10.0, shift in -50.0f64..50.0) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let a2: Vec<f64> = a.iter().map(|x| x * scale + shift).collect();
        let r1 = pearson(&a, &b);
        let r2 = pearson(&a2, &b);
        prop_assert!((r1 - r2).abs() < 1e-6, "{} vs {}", r1, r2);
    }

    #[test]
    fn streaming_pearson_equals_allocating_on_random_sparse_rows(
        entries in prop::collection::vec((0u32..2, 0u32..2, 0.5f64..5.0, 0.5f64..5.0), 0..80),
    ) {
        // Random presence masks produce arbitrary partial overlap between
        // the two rows (including empty and single-item intersections).
        let mask_a: Vec<bool> = entries.iter().map(|e| e.0 == 1).collect();
        let mask_b: Vec<bool> = entries.iter().map(|e| e.1 == 1).collect();
        let vals_a: Vec<f64> = entries.iter().map(|e| e.2).collect();
        let vals_b: Vec<f64> = entries.iter().map(|e| e.3).collect();
        let (ca, va) = sparse_row(&mask_a, &vals_a);
        let (cb, vb) = sparse_row(&mask_b, &vals_b);
        let (w_stream, n_stream) = pearson_on_common(&ca, &va, &cb, &vb);
        let (w_alloc, n_alloc) = pearson_on_common_alloc(&ca, &va, &cb, &vb);
        prop_assert_eq!(n_stream, n_alloc);
        prop_assert!((w_stream - w_alloc).abs() < 1e-9,
                     "streaming {} vs allocating {}", w_stream, w_alloc);
    }

    #[test]
    fn streaming_pearson_bounded_and_symmetric(
        entries in prop::collection::vec((0u32..2, 0u32..2, -100.0f64..100.0, -100.0f64..100.0), 0..60),
    ) {
        let mask_a: Vec<bool> = entries.iter().map(|e| e.0 == 1).collect();
        let mask_b: Vec<bool> = entries.iter().map(|e| e.1 == 1).collect();
        let vals_a: Vec<f64> = entries.iter().map(|e| e.2).collect();
        let vals_b: Vec<f64> = entries.iter().map(|e| e.3).collect();
        let (ca, va) = sparse_row(&mask_a, &vals_a);
        let (cb, vb) = sparse_row(&mask_b, &vals_b);
        let (ab, n1) = pearson_on_common(&ca, &va, &cb, &vb);
        let (ba, n2) = pearson_on_common(&cb, &vb, &ca, &va);
        prop_assert_eq!(n1, n2);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn sparse_pearson_equals_dense_on_full_overlap(vals in prop::collection::vec((0.0f64..5.0, 0.0f64..5.0), 2..40)) {
        let cols: Vec<u32> = (0..vals.len() as u32).collect();
        let (a, b): (Vec<f64>, Vec<f64>) = vals.into_iter().unzip();
        let (w, common) = pearson_on_common(&cols, &a, &cols, &b);
        prop_assert_eq!(common, cols.len());
        prop_assert!((w - pearson(&a, &b)).abs() < 1e-12);
    }

    // ---- blocked / lane-chunked kernel differentials ------------------------
    //
    // Every vectorized variant must be *bit*-identical (`to_bits`) to the
    // allocating oracle, which the streaming kernel is itself pinned to.
    // Column gaps of 1..6 walk intersections across 8-wide block boundaries
    // at every alignment; `zero_var_a` forces constant (zero-variance) rows
    // and `nan_at` injects a NaN score to pin NaN propagation.

    #[test]
    fn blocked_and_lane_kernels_bit_match_oracle(
        entries in prop::collection::vec((0u32..2, 0u32..2, 1u32..6, 0.5f64..5.0, 0.5f64..5.0), 0..120),
        zero_var_a in 0u32..2,
        // Indices >= 120 never match an entry, so half the draws inject no NaN.
        nan_at in 0usize..240,
    ) {
        let mut col = 0u32;
        let (mut ca, mut va) = (Vec::new(), Vec::new());
        let (mut cb, mut vb) = (Vec::new(), Vec::new());
        for (i, &(pa, pb, gap, x, y)) in entries.iter().enumerate() {
            col += gap;
            let mut x = if zero_var_a == 1 { 2.5 } else { x };
            if nan_at == i {
                x = f64::NAN;
            }
            if pa == 1 {
                ca.push(col);
                va.push(x);
            }
            if pb == 1 {
                cb.push(col);
                vb.push(y);
            }
        }
        let a = BlockedRow::from_sorted(&ca, &va);
        let b = BlockedRow::from_sorted(&cb, &vb);
        let (w_oracle, n_oracle) = pearson_on_common_alloc(&ca, &va, &cb, &vb);
        let variants = [
            ("streaming", pearson_on_common(&ca, &va, &cb, &vb)),
            ("blocked", pearson_on_common_blocked(&a, &b)),
            ("lanes4", pearson_on_common_lanes4(&ca, &va, &cb, &vb)),
            ("lanes8", pearson_on_common_lanes8(&ca, &va, &cb, &vb)),
        ];
        for (name, (w, n)) in variants {
            prop_assert_eq!(n, n_oracle, "{}: common count", name);
            prop_assert_eq!(w.to_bits(), w_oracle.to_bits(),
                            "{}: {} vs oracle {}", name, w, w_oracle);
        }
    }

    #[test]
    fn empty_and_disjoint_intersections_are_exactly_zero(
        cols_a in prop::collection::vec(1u32..6, 0..40),
        cols_b in prop::collection::vec(1u32..6, 0..40),
    ) {
        // Make the rows provably disjoint: evens for `a`, odds for `b`.
        let mut col = 0u32;
        let ca: Vec<u32> = cols_a.iter().map(|&g| { col += g; col * 2 }).collect();
        let mut col = 0u32;
        let cb: Vec<u32> = cols_b.iter().map(|&g| { col += g; col * 2 + 1 }).collect();
        let va = vec![1.5; ca.len()];
        let vb = vec![2.5; cb.len()];
        let a = BlockedRow::from_sorted(&ca, &va);
        let b = BlockedRow::from_sorted(&cb, &vb);
        for (w, n) in [
            pearson_on_common_blocked(&a, &b),
            pearson_on_common_lanes4(&ca, &va, &cb, &vb),
            pearson_on_common_lanes8(&ca, &va, &cb, &vb),
        ] {
            prop_assert_eq!(n, 0);
            prop_assert_eq!(w.to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn blocked_row_round_trips_sorted_pairs(
        entries in prop::collection::vec((1u32..9, -100.0f64..100.0), 0..100),
    ) {
        let mut col = 0u32;
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        for &(gap, v) in &entries {
            col += gap;
            cols.push(col);
            vals.push(v);
        }
        let row = BlockedRow::from_sorted(&cols, &vals);
        prop_assert_eq!(row.nnz(), cols.len());
        let (rc, rv) = row.to_sorted();
        prop_assert_eq!(rc, cols);
        for (got, want) in rv.iter().zip(&vals) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn common_slot_merge_matches_two_pointer_reference(
        entries in prop::collection::vec((0u32..2, 0u32..2, 1u32..6, -10.0f64..10.0), 0..100),
    ) {
        let mut col = 0u32;
        let (mut cr, mut vr) = (Vec::new(), Vec::new());
        let mut ct = Vec::new();
        for &(pr, pt, gap, v) in &entries {
            col += gap;
            if pr == 1 {
                cr.push(col);
                vr.push(v);
            }
            if pt == 1 {
                ct.push(col);
            }
        }
        let row = BlockedRow::from_sorted(&cr, &vr);
        let set = BlockedSet::from_sorted(&ct);
        // Reference: classic two-pointer merge over the sorted CSR views.
        let mut want: Vec<(usize, u64)> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < cr.len() && j < ct.len() {
            match cr[i].cmp(&ct[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    want.push((j, vr[i].to_bits()));
                    i += 1;
                    j += 1;
                }
            }
        }
        let mut got: Vec<(usize, u64)> = Vec::new();
        for_each_common_slot(&row, &set, |slot, v| got.push((slot, v.to_bits())));
        prop_assert_eq!(got, want);
    }
}

//! Property-based tests for the numeric substrate.

use at_linalg::stats::{mean, percentile, variance, Percentiles, StreamingStats};
use at_linalg::{pearson, pearson_on_common, pearson_on_common_alloc};
use proptest::prelude::*;

/// Build one sorted sparse row from a dense mask: entry `i` is present when
/// `mask[i]` is true, with value `vals[i]`.
fn sparse_row(mask: &[bool], vals: &[f64]) -> (Vec<u32>, Vec<f64>) {
    let mut cols = Vec::new();
    let mut out = Vec::new();
    for (i, (&m, &v)) in mask.iter().zip(vals).enumerate() {
        if m {
            cols.push(i as u32);
            out.push(v);
        }
    }
    (cols, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentile_is_monotone_in_p(xs in prop::collection::vec(-1e6f64..1e6, 1..200),
                                   p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
    }

    #[test]
    fn percentile_bounded_by_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200),
                                     p in 0.0f64..100.0) {
        let v = percentile(&xs, p);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn percentiles_struct_agrees_with_function(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                                               p in 0.0f64..100.0) {
        let s = Percentiles::new(xs.clone());
        prop_assert!((s.get(p) - percentile(&xs, p)).abs() < 1e-9);
    }

    #[test]
    fn streaming_stats_match_batch(xs in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        prop_assert!((s.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((s.variance() - variance(&xs)).abs() < 1e-4 * (1.0 + variance(&xs)));
    }

    #[test]
    fn streaming_merge_is_order_independent(xs in prop::collection::vec(-1e3f64..1e3, 2..100),
                                            cut in 1usize..99) {
        let cut = cut.min(xs.len() - 1);
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..cut] { a.push(x); }
        for &x in &xs[cut..] { b.push(x); }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..60)) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let ab = pearson(&a, &b);
        let ba = pearson(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    #[test]
    fn pearson_invariant_to_affine_transform(pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..60),
                                             scale in 0.1f64..10.0, shift in -50.0f64..50.0) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let a2: Vec<f64> = a.iter().map(|x| x * scale + shift).collect();
        let r1 = pearson(&a, &b);
        let r2 = pearson(&a2, &b);
        prop_assert!((r1 - r2).abs() < 1e-6, "{} vs {}", r1, r2);
    }

    #[test]
    fn streaming_pearson_equals_allocating_on_random_sparse_rows(
        entries in prop::collection::vec((0u32..2, 0u32..2, 0.5f64..5.0, 0.5f64..5.0), 0..80),
    ) {
        // Random presence masks produce arbitrary partial overlap between
        // the two rows (including empty and single-item intersections).
        let mask_a: Vec<bool> = entries.iter().map(|e| e.0 == 1).collect();
        let mask_b: Vec<bool> = entries.iter().map(|e| e.1 == 1).collect();
        let vals_a: Vec<f64> = entries.iter().map(|e| e.2).collect();
        let vals_b: Vec<f64> = entries.iter().map(|e| e.3).collect();
        let (ca, va) = sparse_row(&mask_a, &vals_a);
        let (cb, vb) = sparse_row(&mask_b, &vals_b);
        let (w_stream, n_stream) = pearson_on_common(&ca, &va, &cb, &vb);
        let (w_alloc, n_alloc) = pearson_on_common_alloc(&ca, &va, &cb, &vb);
        prop_assert_eq!(n_stream, n_alloc);
        prop_assert!((w_stream - w_alloc).abs() < 1e-9,
                     "streaming {} vs allocating {}", w_stream, w_alloc);
    }

    #[test]
    fn streaming_pearson_bounded_and_symmetric(
        entries in prop::collection::vec((0u32..2, 0u32..2, -100.0f64..100.0, -100.0f64..100.0), 0..60),
    ) {
        let mask_a: Vec<bool> = entries.iter().map(|e| e.0 == 1).collect();
        let mask_b: Vec<bool> = entries.iter().map(|e| e.1 == 1).collect();
        let vals_a: Vec<f64> = entries.iter().map(|e| e.2).collect();
        let vals_b: Vec<f64> = entries.iter().map(|e| e.3).collect();
        let (ca, va) = sparse_row(&mask_a, &vals_a);
        let (cb, vb) = sparse_row(&mask_b, &vals_b);
        let (ab, n1) = pearson_on_common(&ca, &va, &cb, &vb);
        let (ba, n2) = pearson_on_common(&cb, &vb, &ca, &va);
        prop_assert_eq!(n1, n2);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn sparse_pearson_equals_dense_on_full_overlap(vals in prop::collection::vec((0.0f64..5.0, 0.0f64..5.0), 2..40)) {
        let cols: Vec<u32> = (0..vals.len() as u32).collect();
        let (a, b): (Vec<f64>, Vec<f64>) = vals.into_iter().unzip();
        let (w, common) = pearson_on_common(&cols, &a, &cols, &b);
        prop_assert_eq!(common, cols.len());
        prop_assert!((w - pearson(&a, &b)).abs() < 1e-12);
    }
}

//! Depth-level utilities — the bridge between the R-tree and synopses.
//!
//! Paper §2.2 step 2: the synopsis takes **all nodes at one depth** of the
//! tree as aggregated data points, choosing "a depth such that it contains a
//! sufficient number of R-tree nodes … much smaller (e.g. 100 times smaller)
//! than the number of data points in the subset". Because the tree is
//! depth-balanced, every node of one level approximates the data at the same
//! granularity.

use crate::node::{NodeId, NodeKind};
use crate::tree::RTree;

impl RTree {
    /// All node ids at `depth` (root = 0, leaves = `height() - 1`), in
    /// deterministic left-to-right order.
    ///
    /// Returns an empty vector when `depth >= height()`.
    pub fn nodes_at_depth(&self, depth: usize) -> Vec<NodeId> {
        if depth >= self.height() {
            return Vec::new();
        }
        let mut level = vec![self.root()];
        for _ in 0..depth {
            let mut next = Vec::new();
            for id in level {
                if let NodeKind::Internal(children) = &self.node(id).kind {
                    next.extend(children.iter().copied());
                }
            }
            level = next;
        }
        level
    }

    /// Node counts per depth, `level_sizes()[d] == nodes_at_depth(d).len()`.
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.height());
        let mut level = vec![self.root()];
        while !level.is_empty() {
            sizes.push(level.len());
            let mut next = Vec::new();
            for id in level {
                if let NodeKind::Internal(children) = &self.node(id).kind {
                    next.extend(children.iter().copied());
                }
            }
            level = next;
        }
        sizes
    }

    /// Pick the depth whose node count is (geometrically) closest to
    /// `target_aggregated` — the paper wants a level with "a sufficient
    /// number of R-tree nodes to enable the fine-grained differentiation"
    /// while staying "much smaller than the number of data points". Level
    /// widths jump by roughly the fanout between depths, so we minimize
    /// `|ln(count / target)|`; ties prefer the deeper (finer) level.
    pub fn select_depth(&self, target_aggregated: usize) -> usize {
        let target = target_aggregated.max(1) as f64;
        let sizes = self.level_sizes();
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (d, &count) in sizes.iter().enumerate() {
            let dist = (count as f64 / target).ln().abs();
            if dist <= best_dist {
                best = d;
                best_dist = dist;
            }
        }
        best
    }

    /// All original item ids stored in leaves beneath `node`, in
    /// deterministic order.
    ///
    /// # Panics
    /// Panics on a dangling id.
    pub fn items_under(&self, node: NodeId) -> Vec<u64> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => out.extend(entries.iter().map(|e| e.item)),
                NodeKind::Internal(children) => {
                    // Push reversed for left-to-right emission order.
                    stack.extend(children.iter().rev().copied());
                }
            }
        }
        out
    }

    /// Number of items beneath `node` without materializing them.
    pub fn count_under(&self, node: NodeId) -> usize {
        let mut n = 0usize;
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => n += entries.len(),
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        n
    }

    /// The ancestor of `leaf`'s node at exactly `depth`, used by synopsis
    /// updating to find which aggregated data point an inserted/removed item
    /// belongs to.
    ///
    /// Returns `None` if the node sits above `depth`.
    pub fn ancestor_at_depth(&self, node: NodeId, depth: usize) -> Option<NodeId> {
        // Walk to the root recording the path, then index from the top.
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.node(cur).parent {
            path.push(p);
            cur = p;
        }
        path.reverse(); // path[0] = root at depth 0
        path.get(depth).copied()
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{RTree, RTreeConfig};

    fn tree(n: usize) -> RTree {
        let pts: Vec<(u64, Vec<f64>)> = (0..n)
            .map(|i| {
                let f = i as f64;
                (i as u64, vec![(f * 0.11).sin(), (f * 0.31).cos()])
            })
            .collect();
        RTree::bulk_load(
            2,
            RTreeConfig {
                max_entries: 8,
                min_entries: 3,
            },
            pts,
        )
    }

    #[test]
    fn level_sizes_shape() {
        let t = tree(300);
        let sizes = t.level_sizes();
        assert_eq!(sizes.len(), t.height());
        assert_eq!(sizes[0], 1, "exactly one root");
        for w in sizes.windows(2) {
            assert!(w[1] > w[0], "levels must widen: {sizes:?}");
        }
    }

    #[test]
    fn nodes_at_depth_matches_level_sizes() {
        let t = tree(300);
        for (d, &expect) in t.level_sizes().iter().enumerate() {
            assert_eq!(t.nodes_at_depth(d).len(), expect, "depth {d}");
        }
        assert!(t.nodes_at_depth(t.height()).is_empty());
    }

    #[test]
    fn items_under_root_is_everything() {
        let t = tree(120);
        let mut all = t.items_under(t.root());
        all.sort_unstable();
        assert_eq!(all, (0..120u64).collect::<Vec<_>>());
        assert_eq!(t.count_under(t.root()), 120);
    }

    #[test]
    fn items_partition_across_a_level() {
        let t = tree(200);
        let depth = t.height() / 2;
        let mut all: Vec<u64> = Vec::new();
        for id in t.nodes_at_depth(depth) {
            let items = t.items_under(id);
            assert!(!items.is_empty());
            all.extend(items);
        }
        all.sort_unstable();
        assert_eq!(
            all,
            (0..200u64).collect::<Vec<_>>(),
            "level must partition items"
        );
    }

    #[test]
    fn select_depth_is_geometrically_closest() {
        let t = tree(1000);
        let sizes = t.level_sizes();
        for target in [1usize, 4, 20, 100, 100_000] {
            let d = t.select_depth(target);
            let dist = |count: usize| (count as f64 / target.max(1) as f64).ln().abs();
            let best = sizes.iter().map(|&c| dist(c)).fold(f64::INFINITY, f64::min);
            assert_eq!(
                dist(sizes[d]),
                best,
                "target {target}: {sizes:?} -> depth {d} not closest"
            );
        }
    }

    #[test]
    fn select_depth_prefers_finer_on_tie() {
        // A single-leaf tree: every target maps to depth 0.
        let t = tree(5);
        assert_eq!(t.select_depth(1), t.height() - 1.min(t.height()));
    }

    #[test]
    fn ancestor_walks_to_requested_depth() {
        let t = tree(400);
        let leaf_depth = t.height() - 1;
        let leaf = t.leaf_of(17).unwrap();
        assert_eq!(t.ancestor_at_depth(leaf, 0), Some(t.root()));
        assert_eq!(t.ancestor_at_depth(leaf, leaf_depth), Some(leaf));
        assert_eq!(t.ancestor_at_depth(leaf, leaf_depth + 5), None);
        // The ancestor at depth d must contain the leaf among its items.
        for d in 0..t.height() {
            let anc = t.ancestor_at_depth(leaf, d).unwrap();
            assert!(t.items_under(anc).contains(&17));
        }
    }

    #[test]
    fn empty_tree_levels() {
        let t = RTree::new(2, RTreeConfig::default());
        assert_eq!(t.level_sizes(), vec![1]);
        assert_eq!(t.select_depth(100), 0);
        assert!(t.items_under(t.root()).is_empty());
    }
}

//! Arena-allocated R-tree nodes.
//!
//! Nodes live in a `Vec` arena inside [`crate::RTree`] and reference each
//! other by [`NodeId`]; freed slots are recycled through a free list. This
//! keeps the tree compact, avoids `Rc`/`RefCell` overhead, and makes node
//! identity stable across restructuring — which matters because the synopsis
//! index file keys aggregated data points by the `NodeId` of their R-tree
//! node.

use crate::rect::Rect;

/// Stable handle to a node in the tree arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index (for diagnostics and index-file serialization).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild an id from a raw index (index-file deserialization and
    /// tests). Dangling ids are detected by [`crate::RTree::is_live`].
    pub fn from_index(index: u32) -> Self {
        NodeId(index)
    }
}

/// An entry of a leaf node: one original data point.
#[derive(Clone, Debug, PartialEq)]
pub struct LeafEntry {
    /// Caller-assigned identifier of the original data point.
    pub item: u64,
    /// Reduced feature vector of the point.
    pub point: Vec<f64>,
}

/// Node payload: either child node ids (internal) or data points (leaf).
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Internal node holding child node ids.
    Internal(Vec<NodeId>),
    /// Leaf node holding data points.
    Leaf(Vec<LeafEntry>),
}

/// A single R-tree node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Minimum bounding rectangle of everything below this node.
    pub rect: Rect,
    /// Parent id; `None` for the root (and for free slots).
    pub parent: Option<NodeId>,
    /// Children or entries.
    pub kind: NodeKind,
}

impl Node {
    /// Fresh empty leaf.
    pub fn new_leaf(dims: usize) -> Self {
        Node {
            rect: Rect::empty(dims),
            parent: None,
            kind: NodeKind::Leaf(Vec::new()),
        }
    }

    /// Fresh empty internal node.
    pub fn new_internal(dims: usize) -> Self {
        Node {
            rect: Rect::empty(dims),
            parent: None,
            kind: NodeKind::Internal(Vec::new()),
        }
    }

    /// Whether this node stores data points.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Number of children or entries.
    pub fn fanout(&self) -> usize {
        match &self.kind {
            NodeKind::Internal(c) => c.len(),
            NodeKind::Leaf(e) => e.len(),
        }
    }

    /// Children of an internal node.
    ///
    /// # Panics
    /// Panics if called on a leaf.
    pub fn children(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Internal(c) => c,
            NodeKind::Leaf(_) => panic!("children() called on a leaf node"),
        }
    }

    /// Mutable children of an internal node.
    ///
    /// # Panics
    /// Panics if called on a leaf.
    pub fn children_mut(&mut self) -> &mut Vec<NodeId> {
        match &mut self.kind {
            NodeKind::Internal(c) => c,
            NodeKind::Leaf(_) => panic!("children_mut() called on a leaf node"),
        }
    }

    /// Entries of a leaf node.
    ///
    /// # Panics
    /// Panics if called on an internal node.
    pub fn entries(&self) -> &[LeafEntry] {
        match &self.kind {
            NodeKind::Leaf(e) => e,
            NodeKind::Internal(_) => panic!("entries() called on an internal node"),
        }
    }

    /// Mutable entries of a leaf node.
    ///
    /// # Panics
    /// Panics if called on an internal node.
    pub fn entries_mut(&mut self) -> &mut Vec<LeafEntry> {
        match &mut self.kind {
            NodeKind::Leaf(e) => e,
            NodeKind::Internal(_) => panic!("entries_mut() called on an internal node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_internal_discrimination() {
        let l = Node::new_leaf(2);
        let i = Node::new_internal(2);
        assert!(l.is_leaf());
        assert!(!i.is_leaf());
        assert_eq!(l.fanout(), 0);
        assert_eq!(i.fanout(), 0);
    }

    #[test]
    #[should_panic(expected = "leaf")]
    fn children_on_leaf_panics() {
        Node::new_leaf(2).children();
    }

    #[test]
    #[should_panic(expected = "internal")]
    fn entries_on_internal_panics() {
        Node::new_internal(2).entries();
    }

    #[test]
    fn fanout_counts_entries() {
        let mut l = Node::new_leaf(1);
        l.entries_mut().push(LeafEntry {
            item: 1,
            point: vec![0.5],
        });
        assert_eq!(l.fanout(), 1);
    }
}

//! The R-tree proper: arena, dynamic insertion (Guttman, quadratic split)
//! and deletion (condense-and-reinsert).
//!
//! Properties the synopsis layer relies on (paper §2.2):
//!
//! 1. points close in feature space land in the same node,
//! 2. the tree is **depth-balanced** — every leaf sits at the same depth, so
//!    all nodes of one level approximate the dataset at the same granularity,
//! 3. leaves can be inserted and deleted dynamically, enabling incremental
//!    synopsis updates.
//!
//! Invariant summary (checked by [`crate::validate`]):
//! * every non-root node has between `min_entries` and `max_entries`
//!   children/entries; the root has at least 1 (2 if internal),
//! * each node's rectangle is exactly the union of its children's,
//! * all leaves are at depth `height - 1`.

use std::collections::HashMap;

use crate::node::{LeafEntry, Node, NodeId, NodeKind};
use crate::rect::Rect;

/// Fanout bounds for the tree.
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Maximum children/entries per node (`M`).
    pub max_entries: usize,
    /// Minimum children/entries per non-root node (`m` ≤ `M`/2).
    pub min_entries: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_entries: 16,
            min_entries: 6,
        }
    }
}

impl RTreeConfig {
    /// Validate the classic R-tree constraint `2 ≤ m ≤ M/2`.
    pub fn validated(self) -> Self {
        assert!(self.max_entries >= 4, "max_entries must be >= 4");
        assert!(
            self.min_entries >= 2 && self.min_entries <= self.max_entries / 2,
            "min_entries must satisfy 2 <= m <= M/2 (m={}, M={})",
            self.min_entries,
            self.max_entries
        );
        self
    }
}

/// A dynamic, depth-balanced R-tree over `dims`-dimensional points.
#[derive(Clone, Debug)]
pub struct RTree {
    dims: usize,
    cfg: RTreeConfig,
    nodes: Vec<Option<Node>>,
    free: Vec<NodeId>,
    root: NodeId,
    /// Number of levels; leaves are at depth `height - 1` (root = depth 0).
    height: usize,
    len: usize,
    /// item id -> leaf currently holding it (O(1) deletion lookup).
    item_leaf: HashMap<u64, NodeId>,
}

impl RTree {
    /// Empty tree over `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `dims == 0` or the config violates `2 ≤ m ≤ M/2`.
    pub fn new(dims: usize, cfg: RTreeConfig) -> Self {
        assert!(dims > 0, "RTree: dims must be >= 1");
        let cfg = cfg.validated();
        let mut t = RTree {
            dims,
            cfg,
            nodes: Vec::new(),
            free: Vec::new(),
            root: NodeId(0),
            height: 1,
            len: 0,
            item_leaf: HashMap::new(),
        };
        t.root = t.alloc(Node::new_leaf(dims));
        t
    }

    /// Dimensionality of indexed points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Fanout configuration.
    pub fn config(&self) -> RTreeConfig {
        self.cfg
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 for a single-leaf tree).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics on a dangling id.
    pub fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.0 as usize].as_ref().expect("dangling NodeId")
    }

    /// Whether `id` refers to a live node.
    pub fn is_live(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len() && self.nodes[id.0 as usize].is_some()
    }

    /// The leaf currently holding `item`, if present.
    pub fn leaf_of(&self, item: u64) -> Option<NodeId> {
        self.item_leaf.get(&item).copied()
    }

    /// Whether `item` is indexed.
    pub fn contains_item(&self, item: u64) -> bool {
        self.item_leaf.contains_key(&item)
    }

    /// Iterate over all `(item, leaf)` pairs in unspecified order.
    pub fn items(&self) -> impl Iterator<Item = (u64, NodeId)> + '_ {
        self.item_leaf.iter().map(|(&i, &l)| (i, l))
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.0 as usize].as_mut().expect("dangling NodeId")
    }

    /// Run a closure with mutable access to a node (crate-internal; used by
    /// the bulk loader which lives in another module).
    pub(crate) fn with_node_mut(&mut self, id: NodeId, f: impl FnOnce(&mut Node)) {
        f(self.node_mut(id));
    }

    /// Point the tree at a new root/height (bulk-load finalization).
    pub(crate) fn replace_root(&mut self, root: NodeId, height: usize) {
        self.root = root;
        self.height = height;
        self.node_mut(root).parent = None;
    }

    /// Return a node slot to the free list (bulk-load finalization).
    pub(crate) fn free_node_slot(&mut self, id: NodeId) {
        self.dealloc(id);
    }

    /// Rebuild `item → leaf` index and `len` by walking all leaves.
    pub(crate) fn rebuild_item_index(&mut self) {
        let mut index = HashMap::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        index.insert(e.item, id);
                    }
                }
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        self.len = index.len();
        self.item_leaf = index;
    }

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.0 as usize] = Some(node);
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow"));
            self.nodes.push(Some(node));
            id
        }
    }

    fn dealloc(&mut self, id: NodeId) {
        debug_assert!(self.nodes[id.0 as usize].is_some(), "double free");
        self.nodes[id.0 as usize] = None;
        self.free.push(id);
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert `item` at `point`. Replaces the previous position if the item
    /// was already indexed; returns `true` when the item is new.
    ///
    /// # Panics
    /// Panics if `point.len() != dims()`.
    pub fn insert(&mut self, item: u64, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dims, "insert: point dims mismatch");
        let fresh = if self.contains_item(item) {
            self.remove(item);
            false
        } else {
            true
        };
        self.insert_entry(LeafEntry {
            item,
            point: point.to_vec(),
        });
        self.len += 1;
        fresh
    }

    /// Core insert of a prepared entry; does not touch `len`.
    pub(crate) fn insert_entry(&mut self, entry: LeafEntry) {
        let leaf = self.choose_leaf(&entry.point);
        self.item_leaf.insert(entry.item, leaf);
        let point_rect = Rect::point(&entry.point);
        self.node_mut(leaf).entries_mut().push(entry);
        self.node_mut(leaf).rect.union_assign(&point_rect);
        // Grow ancestor rects (cheap; exact since insert only grows).
        let mut cur = leaf;
        while let Some(p) = self.node(cur).parent {
            self.node_mut(p).rect.union_assign(&point_rect);
            cur = p;
        }
        if self.node(leaf).fanout() > self.cfg.max_entries {
            self.split_and_propagate(leaf);
        }
    }

    /// Guttman ChooseLeaf: descend picking the child whose rectangle needs
    /// the least enlargement to cover the point (ties: smaller area, then
    /// lower id for determinism).
    fn choose_leaf(&self, point: &[f64]) -> NodeId {
        let target = Rect::point(point);
        let mut cur = self.root;
        loop {
            match &self.node(cur).kind {
                NodeKind::Leaf(_) => return cur,
                NodeKind::Internal(children) => {
                    debug_assert!(!children.is_empty(), "internal node with no children");
                    let mut best = children[0];
                    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
                    for &c in children {
                        let r = &self.node(c).rect;
                        let (ea, em) = r.enlargement2(&target);
                        // Least (area, margin) enlargement, then smallest
                        // margin (degenerate-safe "area"), then lowest id.
                        let key = (ea, em, r.margin());
                        if key < best_key || (key == best_key && c < best) {
                            best = c;
                            best_key = key;
                        }
                    }
                    cur = best;
                }
            }
        }
    }

    /// Split an overflowing node, then walk up inserting new siblings and
    /// splitting ancestors as needed; grows a new root if the root splits.
    fn split_and_propagate(&mut self, mut id: NodeId) {
        loop {
            let sibling = self.split_node(id);
            let parent = self.node(id).parent;
            match parent {
                Some(p) => {
                    self.node_mut(sibling).parent = Some(p);
                    self.node_mut(p).children_mut().push(sibling);
                    let srect = self.node(sibling).rect.clone();
                    self.node_mut(p).rect.union_assign(&srect);
                    self.recompute_rect(p);
                    if self.node(p).fanout() > self.cfg.max_entries {
                        id = p;
                        continue;
                    }
                }
                None => {
                    // Root split: create a new root holding both halves.
                    let mut new_root = Node::new_internal(self.dims);
                    new_root.rect = self.node(id).rect.union(&self.node(sibling).rect);
                    new_root.kind = NodeKind::Internal(vec![id, sibling]);
                    let nr = self.alloc(new_root);
                    self.node_mut(id).parent = Some(nr);
                    self.node_mut(sibling).parent = Some(nr);
                    self.root = nr;
                    self.height += 1;
                }
            }
            break;
        }
    }

    /// Quadratic split (Guttman). Keeps one group in `id`, returns the new
    /// sibling's id. Handles both leaf and internal nodes.
    fn split_node(&mut self, id: NodeId) -> NodeId {
        let is_leaf = self.node(id).is_leaf();
        if is_leaf {
            let entries = std::mem::take(self.node_mut(id).entries_mut());
            let rects: Vec<Rect> = entries.iter().map(|e| Rect::point(&e.point)).collect();
            let (ga, gb) = quadratic_partition(&rects, self.cfg.min_entries);
            let (mut ea, mut eb) = (Vec::new(), Vec::new());
            let mut take = vec![false; entries.len()];
            for &i in &gb {
                take[i] = true;
            }
            for (i, e) in entries.into_iter().enumerate() {
                if take[i] {
                    eb.push(e);
                } else {
                    ea.push(e);
                }
            }
            debug_assert_eq!(ea.len(), ga.len());
            let sibling = self.alloc(Node::new_leaf(self.dims));
            for e in &eb {
                self.item_leaf.insert(e.item, sibling);
            }
            *self.node_mut(id).entries_mut() = ea;
            *self.node_mut(sibling).entries_mut() = eb;
            self.recompute_rect(id);
            self.recompute_rect(sibling);
            sibling
        } else {
            let children = std::mem::take(self.node_mut(id).children_mut());
            let rects: Vec<Rect> = children
                .iter()
                .map(|&c| self.node(c).rect.clone())
                .collect();
            let (ga, gb) = quadratic_partition(&rects, self.cfg.min_entries);
            let (mut ca, mut cb) = (Vec::new(), Vec::new());
            let mut take = vec![false; children.len()];
            for &i in &gb {
                take[i] = true;
            }
            for (i, c) in children.into_iter().enumerate() {
                if take[i] {
                    cb.push(c);
                } else {
                    ca.push(c);
                }
            }
            debug_assert_eq!(ca.len(), ga.len());
            let sibling = self.alloc(Node::new_internal(self.dims));
            for &c in &cb {
                self.node_mut(c).parent = Some(sibling);
            }
            *self.node_mut(id).children_mut() = ca;
            *self.node_mut(sibling).children_mut() = cb;
            self.recompute_rect(id);
            self.recompute_rect(sibling);
            sibling
        }
    }

    /// Recompute a node's rect exactly from its children/entries.
    pub(crate) fn recompute_rect(&mut self, id: NodeId) {
        let rect = match &self.node(id).kind {
            NodeKind::Leaf(entries) => {
                let mut r = Rect::empty(self.dims);
                for e in entries {
                    r.extend_point(&e.point);
                }
                r
            }
            NodeKind::Internal(children) => {
                let mut r = Rect::empty(self.dims);
                for &c in children {
                    r.union_assign(
                        &self.nodes[c.0 as usize]
                            .as_ref()
                            .expect("child")
                            .rect
                            .clone(),
                    );
                }
                r
            }
        };
        self.node_mut(id).rect = rect;
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Remove `item`; returns `true` if it was present.
    ///
    /// Underflowing nodes are dissolved and their surviving points
    /// re-inserted (Guttman's CondenseTree), so the depth-balance and
    /// occupancy invariants hold afterwards.
    pub fn remove(&mut self, item: u64) -> bool {
        let Some(leaf) = self.item_leaf.remove(&item) else {
            return false;
        };
        {
            let entries = self.node_mut(leaf).entries_mut();
            let pos = entries
                .iter()
                .position(|e| e.item == item)
                .expect("item_leaf desynchronized from leaf contents");
            entries.swap_remove(pos);
        }
        self.len -= 1;
        self.condense(leaf);
        true
    }

    /// Walk from `start` to the root removing underflowing nodes; collect
    /// the entries beneath removed subtrees and re-insert them.
    fn condense(&mut self, start: NodeId) {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        self.recompute_rect(start);
        let mut cur = start;
        loop {
            let parent = self.node(cur).parent;
            let underflow = self.node(cur).fanout() < self.cfg.min_entries;
            match parent {
                Some(p) => {
                    if underflow {
                        // Detach `cur`, reap everything beneath it.
                        let children = self.node_mut(p).children_mut();
                        let pos = children
                            .iter()
                            .position(|&c| c == cur)
                            .expect("parent/child link broken");
                        children.swap_remove(pos);
                        self.reap_subtree(cur, &mut orphans);
                    }
                    self.recompute_rect(p);
                    cur = p;
                }
                None => {
                    self.recompute_rect(cur);
                    break;
                }
            }
        }

        // Shrink the root while it is an internal node with one child.
        while !self.node(self.root).is_leaf() && self.node(self.root).fanout() == 1 {
            let old = self.root;
            let child = self.node(old).children()[0];
            self.node_mut(child).parent = None;
            self.root = child;
            self.dealloc(old);
            self.height -= 1;
        }
        // A root that lost all children degenerates to an empty leaf.
        if !self.node(self.root).is_leaf() && self.node(self.root).fanout() == 0 {
            let old = self.root;
            self.dealloc(old);
            self.root = self.alloc(Node::new_leaf(self.dims));
            self.height = 1;
        }

        for e in orphans {
            self.insert_entry(e);
        }
    }

    /// Free `id`'s whole subtree, moving every leaf entry into `out`.
    fn reap_subtree(&mut self, id: NodeId, out: &mut Vec<LeafEntry>) {
        match std::mem::replace(&mut self.node_mut(id).kind, NodeKind::Internal(Vec::new())) {
            NodeKind::Leaf(entries) => {
                for e in &entries {
                    self.item_leaf.remove(&e.item);
                }
                out.extend(entries);
            }
            NodeKind::Internal(children) => {
                for c in children {
                    self.reap_subtree(c, out);
                }
            }
        }
        self.dealloc(id);
    }
}

/// Guttman's quadratic split: partition `rects` indices into two groups,
/// each of size ≥ `min`, minimizing (greedily) the total dead space.
///
/// Returns `(group_a, group_b)` index lists. Deterministic for identical
/// input.
pub(crate) fn quadratic_partition(rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2, "cannot split fewer than 2 rects");
    debug_assert!(2 * min <= n, "min occupancy unsatisfiable");

    // PickSeeds: the pair wasting the most (area, margin) when joined —
    // margin keeps the choice meaningful for degenerate zero-area rects.
    let (mut seed_a, mut seed_b) = (0usize, 1usize);
    let mut worst = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let u = rects[i].union(&rects[j]);
            let waste = (
                u.area() - rects[i].area() - rects[j].area(),
                u.margin() - rects[i].margin() - rects[j].margin(),
            );
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut rect_a = rects[seed_a].clone();
    let mut rect_b = rects[seed_b].clone();
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while !remaining.is_empty() {
        // If one group needs every remaining rect to reach `min`, hand them over.
        if group_a.len() + remaining.len() == min {
            for i in remaining.drain(..) {
                rect_a.union_assign(&rects[i]);
                group_a.push(i);
            }
            break;
        }
        if group_b.len() + remaining.len() == min {
            for i in remaining.drain(..) {
                rect_b.union_assign(&rects[i]);
                group_b.push(i);
            }
            break;
        }
        // PickNext: strongest preference first, measured lexicographically
        // on (area, margin) enlargement differences.
        let (mut pick, mut pick_pos) = (remaining[0], 0usize);
        let mut best_diff = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (pos, &i) in remaining.iter().enumerate() {
            let (aa, am) = rect_a.enlargement2(&rects[i]);
            let (ba, bm) = rect_b.enlargement2(&rects[i]);
            let d = ((aa - ba).abs(), (am - bm).abs());
            if d > best_diff {
                best_diff = d;
                pick = i;
                pick_pos = pos;
            }
        }
        remaining.swap_remove(pick_pos);
        let ea = rect_a.enlargement2(&rects[pick]);
        let eb = rect_b.enlargement2(&rects[pick]);
        let to_a = if ea != eb {
            ea < eb
        } else if rect_a.margin() != rect_b.margin() {
            rect_a.margin() < rect_b.margin()
        } else {
            group_a.len() <= group_b.len()
        };
        if to_a {
            rect_a.union_assign(&rects[pick]);
            group_a.push(pick);
        } else {
            rect_b.union_assign(&rects[pick]);
            group_b.push(pick);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RTreeConfig {
        RTreeConfig {
            max_entries: 4,
            min_entries: 2,
        }
    }

    fn grid_points(n_side: usize) -> Vec<(u64, Vec<f64>)> {
        let mut pts = Vec::new();
        for x in 0..n_side {
            for y in 0..n_side {
                pts.push(((x * n_side + y) as u64, vec![x as f64, y as f64]));
            }
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new(2, small_cfg());
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = RTree::new(2, small_cfg());
        assert!(t.insert(7, &[1.0, 2.0]));
        assert!(t.contains_item(7));
        assert_eq!(t.len(), 1);
        assert!(!t.contains_item(8));
    }

    #[test]
    fn reinsert_same_item_replaces() {
        let mut t = RTree::new(1, small_cfg());
        assert!(t.insert(1, &[0.0]));
        assert!(!t.insert(1, &[100.0]));
        assert_eq!(t.len(), 1);
        let leaf = t.leaf_of(1).unwrap();
        assert_eq!(t.node(leaf).entries()[0].point, vec![100.0]);
    }

    #[test]
    fn grows_in_height_and_stays_balanced() {
        let mut t = RTree::new(2, small_cfg());
        for (id, p) in grid_points(8) {
            t.insert(id, &p);
        }
        assert_eq!(t.len(), 64);
        assert!(t.height() >= 3, "64 points with M=4 must stack levels");
        t.validate().expect("invariants after bulk inserts");
    }

    #[test]
    fn remove_returns_presence() {
        let mut t = RTree::new(2, small_cfg());
        for (id, p) in grid_points(4) {
            t.insert(id, &p);
        }
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.len(), 15);
        t.validate().expect("invariants after remove");
    }

    #[test]
    fn remove_everything_resets_tree() {
        let mut t = RTree::new(2, small_cfg());
        let pts = grid_points(5);
        for (id, p) in &pts {
            t.insert(*id, p);
        }
        for (id, _) in &pts {
            assert!(t.remove(*id));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.validate().expect("invariants after emptying");
        // And the tree remains usable.
        t.insert(1000, &[9.0, 9.0]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interleaved_insert_remove_keeps_invariants() {
        let mut t = RTree::new(2, small_cfg());
        for (id, p) in grid_points(6) {
            t.insert(id, &p);
        }
        // Remove odd ids, reinsert shifted, repeatedly.
        for round in 0..3 {
            for id in (1..36).step_by(2) {
                t.remove(id as u64);
            }
            t.validate()
                .unwrap_or_else(|e| panic!("round {round} after removes: {e}"));
            for id in (1..36).step_by(2) {
                t.insert(id as u64, &[(id % 6) as f64 + 0.5, (id / 6) as f64 + 0.5]);
            }
            t.validate()
                .unwrap_or_else(|e| panic!("round {round} after inserts: {e}"));
        }
        assert_eq!(t.len(), 36);
    }

    #[test]
    fn similar_points_share_leaves() {
        // Two well-separated clusters: at most one boundary leaf may span
        // the gap (a point inserted "far" lands in the nearest leaf before
        // a split separates it), the rest must be cluster-pure.
        let mut t = RTree::new(2, small_cfg());
        let mut id = 0u64;
        for i in 0..10 {
            t.insert(id, &[i as f64 * 0.01, 0.0]);
            id += 1;
        }
        for i in 0..10 {
            t.insert(id, &[100.0 + i as f64 * 0.01, 0.0]);
            id += 1;
        }
        let leaves = t.nodes_at_depth(t.height() - 1);
        let mixed = leaves
            .iter()
            .filter(|&&l| {
                let r = &t.node(l).rect;
                (r.max()[0] - r.min()[0]) >= 50.0
            })
            .count();
        assert!(
            mixed <= 1,
            "{mixed}/{} leaves span both clusters",
            leaves.len()
        );
    }

    #[test]
    fn quadratic_partition_respects_min() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::point(&[i as f64, (i * 7 % 3) as f64]))
            .collect();
        let (a, b) = quadratic_partition(&rects, 3);
        assert!(a.len() >= 3 && b.len() >= 3);
        assert_eq!(a.len() + b.len(), 10);
        let mut all: Vec<usize> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn quadratic_partition_separates_clusters() {
        let mut rects = Vec::new();
        for i in 0..4 {
            rects.push(Rect::point(&[i as f64 * 0.1, 0.0]));
        }
        for i in 0..4 {
            rects.push(Rect::point(&[1000.0 + i as f64 * 0.1, 0.0]));
        }
        let (a, b) = quadratic_partition(&rects, 2);
        let cluster = |idx: &Vec<usize>| idx.iter().map(|&i| i / 4).collect::<Vec<_>>();
        let ca = cluster(&a);
        let cb = cluster(&b);
        assert!(
            ca.iter().all(|&c| c == ca[0]) && cb.iter().all(|&c| c == cb[0]),
            "split mixed the two clusters: {a:?} {b:?}"
        );
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn invalid_config_panics() {
        RTree::new(
            2,
            RTreeConfig {
                max_entries: 4,
                min_entries: 3,
            },
        );
    }

    #[test]
    #[should_panic(expected = "dims mismatch")]
    fn wrong_dims_insert_panics() {
        let mut t = RTree::new(3, small_cfg());
        t.insert(1, &[1.0]);
    }
}

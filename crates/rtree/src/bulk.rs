//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Synopsis *creation* indexes a whole subset at once (paper §2.2 step 2);
//! bulk loading produces a tighter, fuller tree than repeated insertion and
//! costs `O(k log k)` — the complexity the paper quotes for R-tree
//! construction. The resulting tree is an ordinary [`RTree`]: later
//! incremental updates use the dynamic insert/delete paths.

use crate::node::{LeafEntry, Node, NodeId, NodeKind};
use crate::rect::Rect;
use crate::tree::{RTree, RTreeConfig};

impl RTree {
    /// Build a tree from `(item, point)` pairs using STR tiling.
    ///
    /// Duplicate item ids keep the *last* occurrence, matching
    /// [`RTree::insert`]'s replace semantics. Every produced node satisfies
    /// the `[min_entries, max_entries]` occupancy invariant; leaves are
    /// filled to roughly 80% so the first few dynamic inserts do not split.
    ///
    /// # Panics
    /// Panics if `dims == 0`, the config is invalid, or any point has the
    /// wrong dimensionality.
    pub fn bulk_load(dims: usize, cfg: RTreeConfig, points: Vec<(u64, Vec<f64>)>) -> RTree {
        let cfg = cfg.validated();
        let mut tree = RTree::new(dims, cfg);
        // Deduplicate, last write wins.
        let mut dedup: std::collections::HashMap<u64, Vec<f64>> = std::collections::HashMap::new();
        for (item, p) in points {
            assert_eq!(p.len(), dims, "bulk_load: point dims mismatch");
            dedup.insert(item, p);
        }
        let mut entries: Vec<LeafEntry> = dedup
            .into_iter()
            .map(|(item, point)| LeafEntry { item, point })
            .collect();
        // Deterministic base order regardless of HashMap iteration.
        entries.sort_by_key(|e| e.item);

        if entries.is_empty() {
            return tree;
        }

        let target = ((cfg.max_entries * 4) / 5).clamp(cfg.min_entries, cfg.max_entries);
        let n_groups = group_count(entries.len(), cfg, target);
        let total = entries.len();
        let groups = repair_occupancy(str_tile(&mut entries, dims, n_groups, 0), cfg);
        debug_assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), total);

        let mut level: Vec<NodeId> = groups
            .into_iter()
            .map(|g| {
                let mut node = Node::new_leaf(dims);
                let mut rect = Rect::empty(dims);
                for e in &g {
                    rect.extend_point(&e.point);
                }
                node.rect = rect;
                node.kind = NodeKind::Leaf(g);
                tree.alloc(node)
            })
            .collect();
        let mut height = 1usize;

        // Stack internal levels until one node remains.
        while level.len() > 1 {
            let k = group_count(level.len(), cfg, target);
            let mut next = Vec::with_capacity(k);
            for chunk in balanced_chunks(&level, k) {
                let mut node = Node::new_internal(dims);
                let mut rect = Rect::empty(dims);
                for &c in chunk {
                    rect.union_assign(&tree.node(c).rect);
                }
                node.rect = rect;
                node.kind = NodeKind::Internal(chunk.to_vec());
                let id = tree.alloc(node);
                for &c in chunk {
                    tree.set_parent(c, Some(id));
                }
                next.push(id);
            }
            level = next;
            height += 1;
        }

        let root = level[0];
        tree.install_bulk(root, height);
        tree
    }
}

/// Number of groups to split `len` items into such that balanced group
/// sizes stay within `[min_entries, max_entries]`, aiming for `target`
/// items per group. Returns 1 when `len` fits in a single node.
fn group_count(len: usize, cfg: RTreeConfig, target: usize) -> usize {
    if len <= cfg.max_entries {
        return 1;
    }
    let lo = len.div_ceil(cfg.max_entries); // fewest groups: sizes <= M
    let hi = (len / cfg.min_entries).max(1); // most groups: sizes >= m
    len.div_ceil(target).clamp(lo, hi)
}

/// Split `items` into exactly `k` contiguous chunks whose sizes differ by at
/// most one.
fn balanced_chunks<T>(items: &[T], k: usize) -> impl Iterator<Item = &[T]> {
    let n = items.len();
    debug_assert!(k >= 1 && k <= n.max(1));
    (0..k).map(move |i| {
        let start = i * n / k;
        let end = (i + 1) * n / k;
        &items[start..end]
    })
}

/// Recursively tile `entries` into exactly `n_groups` spatially compact
/// groups, cycling the sort axis per recursion level (STR).
fn str_tile(
    entries: &mut [LeafEntry],
    dims: usize,
    n_groups: usize,
    axis: usize,
) -> Vec<Vec<LeafEntry>> {
    if n_groups == 1 {
        return vec![entries.to_vec()];
    }
    entries.sort_by(|a, b| {
        a.point[axis]
            .partial_cmp(&b.point[axis])
            .expect("NaN coordinate in bulk_load")
            .then_with(|| a.item.cmp(&b.item))
    });
    // Slab count along this axis: the dims-th root of the group count, so
    // tiling ends up roughly square.
    let slabs = ((n_groups as f64).powf(1.0 / dims as f64).ceil() as usize).clamp(1, n_groups);
    // Distribute groups across slabs (sizes differ by at most one), then
    // give each slab an entry share proportional to its group share.
    let n = entries.len();
    let mut out = Vec::with_capacity(n_groups);
    let next_axis = (axis + 1) % dims;
    let mut entry_start = 0usize;
    let mut groups_done = 0usize;
    for s in 0..slabs {
        let groups_here = (s + 1) * n_groups / slabs - s * n_groups / slabs;
        if groups_here == 0 {
            continue;
        }
        let entry_end = (groups_done + groups_here) * n / n_groups;
        let slab = &mut entries[entry_start..entry_end];
        if groups_here == 1 {
            out.push(slab.to_vec());
        } else {
            out.extend(str_tile(slab, dims, groups_here, next_axis));
        }
        entry_start = entry_end;
        groups_done += groups_here;
    }
    debug_assert_eq!(out.len(), n_groups);
    out
}

/// Fix any group whose size fell outside `[m, M]` from rounding drift in
/// the recursive tiling: undersized groups are merged into a neighbour
/// (spatially adjacent in tiling order), oversized groups are split evenly.
/// With `m ≤ M/2` both repairs land inside the bounds.
fn repair_occupancy(groups: Vec<Vec<LeafEntry>>, cfg: RTreeConfig) -> Vec<Vec<LeafEntry>> {
    let total: usize = groups.iter().map(Vec::len).sum();
    if total <= cfg.max_entries {
        // Single-node tree: occupancy bounds do not apply to the root.
        return vec![groups.into_iter().flatten().collect()];
    }
    // Pass 1: merge undersized groups into the following group (or the
    // previous one for the last group).
    let mut merged: Vec<Vec<LeafEntry>> = Vec::with_capacity(groups.len());
    let mut carry: Vec<LeafEntry> = Vec::new();
    for mut g in groups {
        if !carry.is_empty() {
            carry.append(&mut g);
            g = std::mem::take(&mut carry);
        }
        if g.len() < cfg.min_entries {
            carry = g;
        } else {
            merged.push(g);
        }
    }
    if !carry.is_empty() {
        match merged.last_mut() {
            Some(last) => last.append(&mut carry),
            None => merged.push(carry),
        }
    }
    // Pass 2: split oversized groups into balanced halves/thirds.
    let mut out = Vec::with_capacity(merged.len());
    for g in merged {
        if g.len() <= cfg.max_entries {
            out.push(g);
        } else {
            let k = g.len().div_ceil(cfg.max_entries).max(2);
            let n = g.len();
            let mut it = g.into_iter();
            for i in 0..k {
                let size = (i + 1) * n / k - i * n / k;
                out.push(it.by_ref().take(size).collect());
            }
        }
    }
    out
}

impl RTree {
    pub(crate) fn set_parent(&mut self, id: NodeId, parent: Option<NodeId>) {
        self.with_node_mut(id, |n| n.parent = parent);
    }

    /// Finalize a bulk build: point the tree at `root`, set `height`,
    /// rebuild the item index, free the placeholder empty root.
    pub(crate) fn install_bulk(&mut self, root: NodeId, height: usize) {
        let placeholder = self.root();
        self.replace_root(root, height);
        self.free_node_slot(placeholder);
        self.rebuild_item_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<(u64, Vec<f64>)> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                (
                    i as u64,
                    vec![(f * 0.37).sin() * 10.0, (f * 0.73).cos() * 10.0],
                )
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty() {
        let t = RTree::bulk_load(2, RTreeConfig::default(), vec![]);
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn bulk_load_single() {
        let t = RTree::bulk_load(2, RTreeConfig::default(), vec![(1, vec![0.0, 0.0])]);
        assert_eq!(t.len(), 1);
        assert!(t.contains_item(1));
        t.validate().unwrap();
    }

    #[test]
    fn bulk_load_validates_at_many_sizes() {
        for n in [2, 5, 16, 17, 100, 129, 1000] {
            let t = RTree::bulk_load(2, RTreeConfig::default(), pts(n));
            assert_eq!(t.len(), n, "n={n}");
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn bulk_load_tight_config() {
        // m = M/2 exactly: the hardest occupancy constraint.
        let cfg = RTreeConfig {
            max_entries: 10,
            min_entries: 5,
        };
        for n in [9, 11, 15, 49, 51, 99, 101, 500] {
            let t = RTree::bulk_load(2, cfg, pts(n));
            assert_eq!(t.len(), n, "n={n}");
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn bulk_load_dedups_last_write_wins() {
        let t = RTree::bulk_load(
            1,
            RTreeConfig::default(),
            vec![(1, vec![0.0]), (1, vec![5.0])],
        );
        assert_eq!(t.len(), 1);
        let leaf = t.leaf_of(1).unwrap();
        assert_eq!(t.node(leaf).entries()[0].point, vec![5.0]);
    }

    #[test]
    fn bulk_then_dynamic_updates() {
        let mut t = RTree::bulk_load(2, RTreeConfig::default(), pts(300));
        for i in 300..350u64 {
            t.insert(i, &[i as f64 * 0.01, 1.0]);
        }
        for i in (0..100u64).step_by(3) {
            assert!(t.remove(i));
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 300 + 50 - 34);
    }

    #[test]
    fn bulk_load_3d() {
        let points: Vec<(u64, Vec<f64>)> = (0..500)
            .map(|i| {
                let f = i as f64;
                (
                    i as u64,
                    vec![(f * 0.1).sin(), (f * 0.2).cos(), (f * 0.05).sin()],
                )
            })
            .collect();
        let t = RTree::bulk_load(3, RTreeConfig::default(), points);
        assert_eq!(t.len(), 500);
        t.validate().unwrap();
    }

    #[test]
    fn bulk_load_groups_similar_points() {
        // Two distant clusters. STR cuts slabs by rank, so one boundary
        // leaf may straddle the gap; but the vast majority of leaves must
        // stay within a single cluster.
        let mut points = Vec::new();
        for i in 0..40u64 {
            points.push((i, vec![(i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1]));
        }
        for i in 40..80u64 {
            points.push((i, vec![500.0 + (i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1]));
        }
        let t = RTree::bulk_load(2, RTreeConfig::default(), points);
        let leaves = t.nodes_at_depth(t.height() - 1);
        let pure = leaves
            .iter()
            .filter(|&&l| {
                let r = &t.node(l).rect;
                (r.max()[0] - r.min()[0]) < 250.0
            })
            .count();
        assert!(
            pure * 10 >= leaves.len() * 7,
            "only {pure}/{} leaves are cluster-pure",
            leaves.len()
        );
    }

    #[test]
    fn group_count_bounds() {
        let cfg = RTreeConfig {
            max_entries: 10,
            min_entries: 5,
        };
        for len in 1..=200usize {
            let k = group_count(len, cfg, 8);
            if len <= 10 {
                assert_eq!(k, 1);
            } else {
                // Balanced sizes must fit [m, M].
                let lo = len / k;
                let hi = len.div_ceil(k);
                assert!(lo >= 5, "len={len} k={k} lo={lo}");
                assert!(hi <= 10, "len={len} k={k} hi={hi}");
            }
        }
    }
}

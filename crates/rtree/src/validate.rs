//! Structural invariant checking, used heavily by unit and property tests.

use crate::node::{NodeId, NodeKind};
use crate::rect::Rect;
use crate::tree::RTree;

impl RTree {
    /// Check every structural invariant of the tree; returns a description
    /// of the first violation found.
    ///
    /// Checked invariants:
    /// 1. all leaves are at the same depth (`height - 1`);
    /// 2. every non-root node has `min_entries ..= max_entries`
    ///    children/entries; an internal root has ≥ 2; a leaf root may hold 0;
    /// 3. each node's rectangle equals the exact union of its contents;
    /// 4. parent links are consistent;
    /// 5. the `item → leaf` index matches the leaves' contents and `len()`.
    pub fn validate(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        let mut seen_items = std::collections::HashMap::new();
        self.validate_node(self.root(), None, 0, &mut leaf_depths, &mut seen_items)?;

        if let Some(&d) = leaf_depths.first() {
            if leaf_depths.iter().any(|&x| x != d) {
                return Err(format!("leaves at differing depths: {leaf_depths:?}"));
            }
            if d + 1 != self.height() {
                return Err(format!(
                    "height() = {} but leaves at depth {d}",
                    self.height()
                ));
            }
        }

        if seen_items.len() != self.len() {
            return Err(format!(
                "len() = {} but {} items stored in leaves",
                self.len(),
                seen_items.len()
            ));
        }
        for (item, leaf) in self.items() {
            match seen_items.get(&item) {
                None => return Err(format!("index lists item {item} not present in any leaf")),
                Some(&actual) if actual != leaf => {
                    return Err(format!(
                        "index maps item {item} to {leaf:?} but it lives in {actual:?}"
                    ))
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn validate_node(
        &self,
        id: NodeId,
        parent: Option<NodeId>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
        seen_items: &mut std::collections::HashMap<u64, NodeId>,
    ) -> Result<(), String> {
        if !self.is_live(id) {
            return Err(format!("dangling node id {id:?}"));
        }
        let node = self.node(id);
        if node.parent != parent {
            return Err(format!(
                "{id:?}: parent link {:?} != actual parent {parent:?}",
                node.parent
            ));
        }

        let is_root = parent.is_none();
        let fanout = node.fanout();
        let cfg = self.config();
        match (&node.kind, is_root) {
            (NodeKind::Leaf(_), true) => {} // empty/partial leaf root is fine
            (NodeKind::Internal(_), true) => {
                if fanout < 2 {
                    return Err(format!("internal root {id:?} has fanout {fanout} < 2"));
                }
            }
            (_, false) => {
                if fanout < cfg.min_entries || fanout > cfg.max_entries {
                    return Err(format!(
                        "{id:?}: fanout {fanout} outside [{}, {}]",
                        cfg.min_entries, cfg.max_entries
                    ));
                }
            }
        }
        if fanout > cfg.max_entries {
            return Err(format!("{id:?}: overflowing fanout {fanout}"));
        }

        match &node.kind {
            NodeKind::Leaf(entries) => {
                leaf_depths.push(depth);
                let mut exact = Rect::empty(self.dims());
                for e in entries {
                    if e.point.len() != self.dims() {
                        return Err(format!(
                            "{id:?}: entry {} has {} dims, tree has {}",
                            e.item,
                            e.point.len(),
                            self.dims()
                        ));
                    }
                    exact.extend_point(&e.point);
                    if seen_items.insert(e.item, id).is_some() {
                        return Err(format!("item {} stored in two leaves", e.item));
                    }
                }
                if !entries.is_empty() && node.rect != exact {
                    return Err(format!("{id:?}: leaf rect is not the exact union"));
                }
            }
            NodeKind::Internal(children) => {
                let mut exact = Rect::empty(self.dims());
                for &c in children {
                    self.validate_node(c, Some(id), depth + 1, leaf_depths, seen_items)?;
                    exact.union_assign(&self.node(c).rect);
                }
                if node.rect != exact {
                    return Err(format!("{id:?}: internal rect is not the exact union"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{RTree, RTreeConfig};

    #[test]
    fn fresh_tree_validates() {
        RTree::new(2, RTreeConfig::default()).validate().unwrap();
    }

    #[test]
    fn validates_after_many_inserts() {
        let mut t = RTree::new(3, RTreeConfig::default());
        for i in 0..500u64 {
            let f = i as f64;
            t.insert(i, &[f.sin(), (f * 0.7).cos(), (f * 0.3).sin()]);
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 500);
    }
}

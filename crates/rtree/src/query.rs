//! Spatial queries: range search and k-nearest-neighbour.
//!
//! Synopsis updating uses nearest-neighbour lookups to sanity-check where a
//! changed data point migrated; range search supports debugging and the
//! property-based test oracle.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::NodeKind;
use crate::rect::Rect;
use crate::tree::RTree;

/// Max-heap entry for kNN candidate pruning (orders by *descending*
/// distance so the heap root is the worst of the current best-k).
struct Candidate {
    dist2: f64,
    item: u64,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2 && self.item == other.item
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2
            .partial_cmp(&other.dist2)
            .expect("NaN distance")
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl RTree {
    /// All items whose point lies inside `query` (inclusive bounds), in
    /// unspecified order.
    ///
    /// # Panics
    /// Panics if `query.dims() != dims()`.
    pub fn range_query(&self, query: &Rect) -> Vec<u64> {
        assert_eq!(query.dims(), self.dims(), "range_query: dims mismatch");
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if !node.rect.intersects(query) && (node.fanout() != 0) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if query.contains_point(&e.point) {
                            out.push(e.item);
                        }
                    }
                }
                NodeKind::Internal(children) => {
                    for &c in children {
                        if self.node(c).rect.intersects(query) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        out
    }

    /// The `k` items nearest to `point` by Euclidean distance, closest
    /// first; ties broken by item id. Returns fewer than `k` when the tree
    /// is smaller.
    ///
    /// Uses branch-and-bound over node MBRs ([`Rect::min_dist2`]).
    ///
    /// # Panics
    /// Panics if `point.len() != dims()`.
    pub fn nearest(&self, point: &[f64], k: usize) -> Vec<(u64, f64)> {
        assert_eq!(point.len(), self.dims(), "nearest: dims mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut best: BinaryHeap<Candidate> = BinaryHeap::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            let bound = node.rect.min_dist2(point);
            if best.len() == k && bound >= best.peek().expect("non-empty").dist2 {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        let d2: f64 = e
                            .point
                            .iter()
                            .zip(point)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        if best.len() < k {
                            best.push(Candidate {
                                dist2: d2,
                                item: e.item,
                            });
                        } else if d2 < best.peek().expect("non-empty").dist2 {
                            best.pop();
                            best.push(Candidate {
                                dist2: d2,
                                item: e.item,
                            });
                        }
                    }
                }
                NodeKind::Internal(children) => {
                    // Visit nearer children first so pruning bites sooner.
                    let mut order: Vec<_> = children
                        .iter()
                        .map(|&c| (self.node(c).rect.min_dist2(point), c))
                        .collect();
                    order.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN distance"));
                    for (_, c) in order {
                        stack.push(c);
                    }
                }
            }
        }
        let mut out: Vec<(u64, f64)> = best
            .into_sorted_vec()
            .into_iter()
            .map(|c| (c.item, c.dist2.sqrt()))
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN").then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;

    fn tree() -> RTree {
        let pts: Vec<(u64, Vec<f64>)> = (0..100)
            .map(|i| (i as u64, vec![(i % 10) as f64, (i / 10) as f64]))
            .collect();
        RTree::bulk_load(
            2,
            RTreeConfig {
                max_entries: 6,
                min_entries: 2,
            },
            pts,
        )
    }

    #[test]
    fn range_query_exact_cell() {
        let t = tree();
        let hits = t.range_query(&Rect::new(vec![3.0, 4.0], vec![3.0, 4.0]));
        assert_eq!(hits, vec![43]);
    }

    #[test]
    fn range_query_block() {
        let t = tree();
        let mut hits = t.range_query(&Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 10, 11]);
    }

    #[test]
    fn range_query_outside_is_empty() {
        let t = tree();
        assert!(t
            .range_query(&Rect::new(vec![100.0, 100.0], vec![200.0, 200.0]))
            .is_empty());
    }

    #[test]
    fn range_query_everything() {
        let t = tree();
        let hits = t.range_query(&Rect::new(vec![-1.0, -1.0], vec![11.0, 11.0]));
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn nearest_single() {
        let t = tree();
        let nn = t.nearest(&[3.1, 4.1], 1);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].0, 43);
        assert!(nn[0].1 < 0.2);
    }

    #[test]
    fn nearest_k_ordering_matches_brute_force() {
        let t = tree();
        let q = [4.7, 6.2];
        let got = t.nearest(&q, 7);
        // Brute force oracle.
        let mut brute: Vec<(u64, f64)> = (0..100u64)
            .map(|i| {
                let p = [(i % 10) as f64, (i / 10) as f64];
                let d = ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)).sqrt();
                (i, d)
            })
            .collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let want: Vec<u64> = brute[..7].iter().map(|x| x.0).collect();
        let got_ids: Vec<u64> = got.iter().map(|x| x.0).collect();
        assert_eq!(got_ids, want);
    }

    #[test]
    fn nearest_more_than_len() {
        let t = tree();
        assert_eq!(t.nearest(&[0.0, 0.0], 1000).len(), 100);
    }

    #[test]
    fn nearest_zero_k_or_empty_tree() {
        let t = tree();
        assert!(t.nearest(&[0.0, 0.0], 0).is_empty());
        let empty = RTree::new(2, RTreeConfig::default());
        assert!(empty.nearest(&[0.0, 0.0], 5).is_empty());
    }
}

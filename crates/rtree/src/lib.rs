//! # at-rtree
//!
//! Depth-balanced R-tree for the AccuracyTrader reproduction (Han et al.,
//! ICPP 2016). The paper chooses an R-tree as the synopsis backbone for
//! three properties (§2.2), all implemented here:
//!
//! 1. **Similarity grouping** — points close in feature space share nodes
//!    (Guttman insertion with quadratic split; STR bulk loading).
//! 2. **Depth balance** — all leaves sit at the same depth, so the nodes of
//!    any one level form aggregated data points of uniform granularity
//!    ([`RTree::nodes_at_depth`], [`RTree::select_depth`]).
//! 3. **Dynamic updates** — leaf insertion/deletion with condense-and-
//!    reinsert keeps the structure valid as input data changes, enabling
//!    incremental synopsis updating.
//!
//! ```
//! use at_rtree::{RTree, RTreeConfig};
//!
//! let points: Vec<(u64, Vec<f64>)> =
//!     (0..200).map(|i| (i, vec![(i % 20) as f64, (i / 20) as f64])).collect();
//! let tree = RTree::bulk_load(2, RTreeConfig::default(), points);
//!
//! // Pick the level whose nodes will become aggregated data points.
//! let depth = tree.select_depth(tree.len() / 10);
//! for node in tree.nodes_at_depth(depth) {
//!     let _original_items = tree.items_under(node);
//! }
//! assert!(tree.validate().is_ok());
//! ```

pub mod bulk;
pub mod depth;
pub mod node;
pub mod query;
pub mod rect;
pub mod tree;
pub mod validate;

pub use node::{LeafEntry, Node, NodeId, NodeKind};
pub use rect::Rect;
pub use tree::{RTree, RTreeConfig};

//! Axis-aligned minimum bounding rectangles (MBRs) in low-dimensional space.
//!
//! The synopsis pipeline reduces every data point to a `j`-dimensional
//! feature vector (`j` ≈ 3), so rectangles carry their dimensionality at
//! runtime rather than in the type; all operations assert agreement.

/// An axis-aligned box `[min, max]` in `dims()`-dimensional space.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Rect {
    /// Degenerate rectangle covering exactly one point.
    pub fn point(p: &[f64]) -> Self {
        Rect {
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// Rectangle from explicit corners.
    ///
    /// # Panics
    /// Panics if lengths differ or any `min > max`.
    pub fn new(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "Rect: corner dimensionality mismatch");
        for (lo, hi) in min.iter().zip(&max) {
            assert!(lo <= hi, "Rect: min {lo} > max {hi}");
        }
        Rect { min, max }
    }

    /// The "empty" rectangle (identity for [`Rect::union`]): +inf mins,
    /// -inf maxes.
    pub fn empty(dims: usize) -> Self {
        Rect {
            min: vec![f64::INFINITY; dims],
            max: vec![f64::NEG_INFINITY; dims],
        }
    }

    /// True if this is an identity/empty rectangle (never contains points).
    pub fn is_empty(&self) -> bool {
        self.min.iter().zip(&self.max).any(|(lo, hi)| lo > hi)
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.min.len()
    }

    /// Lower corner.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Upper corner.
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Hyper-volume (product of side lengths); `0.0` for empty rects.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| hi - lo)
            .product()
    }

    /// Sum of side lengths (the R*-tree "margin"; cheap spread measure).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.min.iter().zip(&self.max).map(|(lo, hi)| hi - lo).sum()
    }

    /// Smallest rectangle covering both `self` and `other`.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn union(&self, other: &Rect) -> Rect {
        assert_eq!(self.dims(), other.dims(), "union: dims mismatch");
        Rect {
            min: self
                .min
                .iter()
                .zip(&other.min)
                .map(|(a, b)| a.min(*b))
                .collect(),
            max: self
                .max
                .iter()
                .zip(&other.max)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Grow in place to cover `other`.
    pub fn union_assign(&mut self, other: &Rect) {
        assert_eq!(self.dims(), other.dims(), "union_assign: dims mismatch");
        for (a, b) in self.min.iter_mut().zip(&other.min) {
            *a = a.min(*b);
        }
        for (a, b) in self.max.iter_mut().zip(&other.max) {
            *a = a.max(*b);
        }
    }

    /// Grow in place to cover point `p`.
    pub fn extend_point(&mut self, p: &[f64]) {
        assert_eq!(self.dims(), p.len(), "extend_point: dims mismatch");
        for (a, b) in self.min.iter_mut().zip(p) {
            *a = a.min(*b);
        }
        for (a, b) in self.max.iter_mut().zip(p) {
            *a = a.max(*b);
        }
    }

    /// Area increase required to cover `other` — Guttman's insertion
    /// heuristic ("least enlargement").
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// `(area increase, margin increase)` required to cover `other`.
    ///
    /// Point datasets routinely produce degenerate (zero-area) rectangles —
    /// e.g. collinear points — where every area enlargement is `0` and the
    /// Guttman heuristics stop discriminating. Comparing the pair
    /// lexicographically falls back to the margin (sum of side lengths),
    /// which stays informative in degenerate geometry.
    pub fn enlargement2(&self, other: &Rect) -> (f64, f64) {
        let u = self.union(other);
        (u.area() - self.area(), u.margin() - self.margin())
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.min.iter().zip(&other.min).all(|(a, b)| a <= b)
            && self.max.iter().zip(&other.max).all(|(a, b)| a >= b)
    }

    /// Whether point `p` lies inside (inclusive).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        assert_eq!(self.dims(), p.len(), "contains_point: dims mismatch");
        self.min.iter().zip(p).all(|(lo, x)| lo <= x)
            && self.max.iter().zip(p).all(|(hi, x)| x <= hi)
    }

    /// Whether the rectangles overlap (inclusive boundaries).
    pub fn intersects(&self, other: &Rect) -> bool {
        assert_eq!(self.dims(), other.dims(), "intersects: dims mismatch");
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.min.iter().zip(&other.max).all(|(lo, hi)| lo <= hi)
            && other.min.iter().zip(&self.max).all(|(lo, hi)| lo <= hi)
    }

    /// Geometric centre.
    pub fn center(&self) -> Vec<f64> {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .collect()
    }

    /// Squared minimum distance from point `p` to this rectangle (0 inside).
    /// Used by nearest-neighbour search.
    pub fn min_dist2(&self, p: &[f64]) -> f64 {
        assert_eq!(self.dims(), p.len(), "min_dist2: dims mismatch");
        self.min
            .iter()
            .zip(&self.max)
            .zip(p)
            .map(|((lo, hi), x)| {
                let d = if x < lo {
                    lo - x
                } else if x > hi {
                    x - hi
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_has_zero_area() {
        let r = Rect::point(&[1.0, 2.0, 3.0]);
        assert_eq!(r.area(), 0.0);
        assert_eq!(r.dims(), 3);
        assert!(r.contains_point(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn area_and_margin() {
        let r = Rect::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
    }

    #[test]
    fn empty_rect_behaviour() {
        let e = Rect::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        // union with empty is identity
        assert_eq!(e.union(&r), r);
        assert!(!e.intersects(&r));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Rect::new(vec![2.0, -1.0], vec![3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u.min(), &[0.0, -1.0]);
        assert_eq!(u.max(), &[3.0, 1.0]);
    }

    #[test]
    fn union_assign_matches_union() {
        let mut a = Rect::new(vec![0.0], vec![1.0]);
        let b = Rect::new(vec![5.0], vec![6.0]);
        let u = a.union(&b);
        a.union_assign(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn extend_point_grows_minimally() {
        let mut r = Rect::point(&[1.0, 1.0]);
        r.extend_point(&[3.0, 0.0]);
        assert_eq!(r.min(), &[1.0, 0.0]);
        assert_eq!(r.max(), &[3.0, 1.0]);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let big = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        let small = Rect::new(vec![1.0, 1.0], vec![2.0, 2.0]);
        assert_eq!(big.enlargement(&small), 0.0);
        assert!(small.enlargement(&big) > 0.0);
    }

    #[test]
    fn contains_is_inclusive() {
        let r = Rect::new(vec![0.0], vec![1.0]);
        assert!(r.contains_point(&[0.0]));
        assert!(r.contains_point(&[1.0]));
        assert!(!r.contains_point(&[1.000001]));
        assert!(r.contains(&r));
    }

    #[test]
    fn intersects_edge_touching() {
        let a = Rect::new(vec![0.0], vec![1.0]);
        let b = Rect::new(vec![1.0], vec![2.0]);
        let c = Rect::new(vec![1.1], vec![2.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&a));
    }

    #[test]
    fn center_midpoint() {
        let r = Rect::new(vec![0.0, 2.0], vec![4.0, 4.0]);
        assert_eq!(r.center(), vec![2.0, 3.0]);
    }

    #[test]
    fn min_dist2_inside_is_zero() {
        let r = Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        assert_eq!(r.min_dist2(&[1.0, 1.0]), 0.0);
        assert_eq!(r.min_dist2(&[3.0, 1.0]), 1.0);
        assert_eq!(r.min_dist2(&[3.0, 3.0]), 2.0);
        assert_eq!(r.min_dist2(&[-1.0, -1.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dims_mismatch_panics() {
        let a = Rect::point(&[0.0]);
        let b = Rect::point(&[0.0, 1.0]);
        a.union(&b);
    }

    #[test]
    #[should_panic(expected = "min")]
    fn inverted_corners_panic() {
        Rect::new(vec![1.0], vec![0.0]);
    }
}

//! Property-based tests: the R-tree's structural invariants must survive
//! arbitrary interleavings of inserts, removals, and re-positions, and its
//! queries must agree with brute-force oracles.

use at_rtree::{RTree, RTreeConfig, Rect};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, [f64; 2]),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..60, prop::array::uniform2(-100.0f64..100.0)).prop_map(|(id, p)| Op::Insert(id, p)),
        1 => (0u64..60).prop_map(Op::Remove),
    ]
}

fn cfg_strategy() -> impl Strategy<Value = RTreeConfig> {
    (4usize..=12).prop_flat_map(|max| {
        (2usize..=(max / 2)).prop_map(move |min| RTreeConfig {
            max_entries: max,
            min_entries: min,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_random_ops(cfg in cfg_strategy(), ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut tree = RTree::new(2, cfg);
        let mut model: HashMap<u64, [f64; 2]> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(id, p) => {
                    tree.insert(id, &p);
                    model.insert(id, p);
                }
                Op::Remove(id) => {
                    let was = tree.remove(id);
                    prop_assert_eq!(was, model.remove(&id).is_some());
                }
            }
            tree.validate().map_err(TestCaseError::fail)?;
            prop_assert_eq!(tree.len(), model.len());
        }
        // Every modelled item is findable.
        for (&id, p) in &model {
            prop_assert!(tree.contains_item(id));
            let nn = tree.nearest(p, 1);
            prop_assert!(!nn.is_empty());
            prop_assert!(nn[0].1 <= 1e-9, "own point must be its own nearest neighbour");
        }
    }

    #[test]
    fn bulk_load_equals_incremental_contents(points in prop::collection::vec((0u64..500, prop::array::uniform3(-50.0f64..50.0)), 0..300)) {
        let cfg = RTreeConfig::default();
        let pts: Vec<(u64, Vec<f64>)> = points.iter().map(|(id, p)| (*id, p.to_vec())).collect();
        let bulk = RTree::bulk_load(3, cfg, pts.clone());
        bulk.validate().map_err(TestCaseError::fail)?;

        let mut inc = RTree::new(3, cfg);
        for (id, p) in &pts {
            inc.insert(*id, p);
        }
        inc.validate().map_err(TestCaseError::fail)?;

        prop_assert_eq!(bulk.len(), inc.len());
        let mut a: Vec<u64> = bulk.items().map(|(i, _)| i).collect();
        let mut b: Vec<u64> = inc.items().map(|(i, _)| i).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn range_query_matches_oracle(points in prop::collection::vec((0u64..1000, prop::array::uniform2(-10.0f64..10.0)), 1..150),
                                  lo in prop::array::uniform2(-12.0f64..12.0),
                                  span in prop::array::uniform2(0.0f64..10.0)) {
        let mut dedup: HashMap<u64, [f64; 2]> = HashMap::new();
        for (id, p) in points {
            dedup.insert(id, p);
        }
        let mut tree = RTree::new(2, RTreeConfig::default());
        for (&id, p) in &dedup {
            tree.insert(id, p);
        }
        let query = Rect::new(lo.to_vec(), vec![lo[0] + span[0], lo[1] + span[1]]);
        let mut got = tree.range_query(&query);
        got.sort_unstable();
        let mut want: Vec<u64> = dedup
            .iter()
            .filter(|(_, p)| query.contains_point(&p[..]))
            .map(|(&id, _)| id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nearest_matches_oracle(points in prop::collection::vec((0u64..1000, prop::array::uniform2(-10.0f64..10.0)), 1..100),
                              q in prop::array::uniform2(-10.0f64..10.0),
                              k in 1usize..12) {
        let mut dedup: HashMap<u64, [f64; 2]> = HashMap::new();
        for (id, p) in points {
            dedup.insert(id, p);
        }
        let mut tree = RTree::new(2, RTreeConfig::default());
        for (&id, p) in &dedup {
            tree.insert(id, p);
        }
        let got = tree.nearest(&q, k);
        let mut brute: Vec<(u64, f64)> = dedup
            .iter()
            .map(|(&id, p)| {
                let d = ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)).sqrt();
                (id, d)
            })
            .collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        brute.truncate(k);
        let got_ids: Vec<u64> = got.iter().map(|x| x.0).collect();
        let want_ids: Vec<u64> = brute.iter().map(|x| x.0).collect();
        prop_assert_eq!(got_ids, want_ids);
    }

    #[test]
    fn levels_partition_items(points in prop::collection::vec((0u64..400, prop::array::uniform2(-10.0f64..10.0)), 30..200)) {
        let pts: Vec<(u64, Vec<f64>)> = points.iter().map(|(id, p)| (*id, p.to_vec())).collect();
        let tree = RTree::bulk_load(2, RTreeConfig::default(), pts);
        for depth in 0..tree.height() {
            let mut all: Vec<u64> = Vec::new();
            for node in tree.nodes_at_depth(depth) {
                all.extend(tree.items_under(node));
            }
            all.sort_unstable();
            let mut want: Vec<u64> = tree.items().map(|(i, _)| i).collect();
            want.sort_unstable();
            prop_assert_eq!(all, want, "depth {} does not partition", depth);
        }
    }
}

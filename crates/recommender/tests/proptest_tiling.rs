//! Property test: the cache-tiled batched stage-1 pass must be bit-identical
//! to the per-request pass at *every* batch width — including widths that
//! span several tiles and widths that leave a ragged final tile.
//!
//! The component is built once (SVD training dominates the cost) and shared
//! across cases; each case draws a fresh random batch against it.

use std::sync::OnceLock;

use at_core::{ApproximateService, Component};
use at_linalg::svd::SvdConfig;
use at_recommender::{rating_matrix, ActiveUser, CfService, PredictionAcc};
use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
use at_workloads::{RatingsConfig, RatingsDataset};
use proptest::prelude::*;

static FIXTURE: OnceLock<(Component<CfService>, RatingsDataset)> = OnceLock::new();

fn fixture() -> &'static (Component<CfService>, RatingsDataset) {
    FIXTURE.get_or_init(|| {
        let data = RatingsDataset::generate(RatingsConfig {
            n_users: 300,
            n_items: 80,
            ratings_per_user: 30,
            ..RatingsConfig::small()
        });
        let matrix = rating_matrix(300, 80, &data.ratings);
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(25),
            size_ratio: 15,
            ..SynopsisConfig::default()
        };
        let (c, _) = Component::build(matrix, AggregationMode::Mean, cfg, CfService);
        (c, data)
    })
}

fn active(data: &RatingsDataset, user: u32, targets: Vec<u32>) -> ActiveUser {
    let pairs: Vec<(u32, f64)> = data
        .ratings
        .iter()
        .filter(|r| r.user == user && !targets.contains(&r.item))
        .map(|r| (r.item, r.stars))
        .collect();
    ActiveUser::new(SparseRow::from_pairs(pairs), targets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tiled_batch_is_bit_identical_to_per_request(
        users in prop::collection::vec((0u32..300, 0u32..80), 1..48),
    ) {
        let (c, data) = fixture();
        let svc = CfService;
        let reqs: Vec<ActiveUser> = users
            .iter()
            .map(|&(u, t)| active(data, u, vec![t, (t + 13) % 80]))
            .collect();
        let mut corrs = vec![Vec::new(); reqs.len()];
        let mut outs: Vec<Vec<PredictionAcc>> = Vec::new();
        svc.process_synopsis_batch(c.ctx(), &reqs, &mut corrs, &mut outs);
        prop_assert_eq!(outs.len(), reqs.len());
        for ((req, corr), out) in reqs.iter().zip(&corrs).zip(&outs) {
            let mut want_corr = Vec::new();
            let want_out = svc.process_synopsis(c.ctx(), req, &mut want_corr);
            prop_assert_eq!(corr.len(), want_corr.len());
            for (a, b) in corr.iter().zip(&want_corr) {
                prop_assert_eq!(a.node, b.node);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            prop_assert_eq!(out.len(), want_out.len());
            for (a, b) in out.iter().zip(&want_out) {
                prop_assert_eq!(a.num.to_bits(), b.num.to_bits());
                prop_assert_eq!(a.den.to_bits(), b.den.to_bits());
            }
        }
    }
}

//! User-based collaborative filtering (paper §3.2).
//!
//! Step 1: the weight between the active user and a neighbour is Pearson's
//! correlation over their co-rated items. Step 2: the prediction of user
//! `u`'s rating on item `i` is `u`'s mean rating plus the weighted average
//! of the neighbours' mean-centred ratings of `i` — the classic formulation
//! from the CF survey the paper cites.

use at_linalg::pearson::pearson_on_common;
use at_linalg::{for_each_common_slot, pearson_on_common_blocked, BlockedRow, BlockedSet};
use at_synopsis::SparseRow;

use crate::ratings::ActiveUser;

/// Minimum co-rated items for a weight to count (below this, Pearson is
/// noise; with <2 items it is undefined and treated as 0).
pub const MIN_COMMON_ITEMS: usize = 2;

/// Accumulating numerator/denominator of a weighted-average prediction for
/// one target item. Partial sums from different components/groups add.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PredictionAcc {
    /// Σ w(u,v) · (r_{v,i} − r̄_v) (optionally scaled by member counts).
    pub num: f64,
    /// Σ |w(u,v)| (same scaling).
    pub den: f64,
}

impl PredictionAcc {
    /// Merge another partial sum.
    pub fn merge(&mut self, other: &PredictionAcc) {
        self.num += other.num;
        self.den += other.den;
    }

    /// Final prediction: `user_mean + num/den`, clamped to the 1–5 star
    /// scale; falls back to `user_mean` when no neighbour rated the item.
    pub fn predict(&self, user_mean: f64) -> f64 {
        if self.den > 1e-12 {
            (user_mean + self.num / self.den).clamp(1.0, 5.0)
        } else {
            user_mean.clamp(1.0, 5.0)
        }
    }
}

/// The Pearson weight between the active user and one neighbour row.
/// Returns `(weight, common_items)`; weight is 0 below [`MIN_COMMON_ITEMS`].
pub fn user_weight(active: &SparseRow, neighbor: &SparseRow) -> (f64, usize) {
    let (w, common) = pearson_on_common(&active.cols, &active.vals, &neighbor.cols, &neighbor.vals);
    if common < MIN_COMMON_ITEMS {
        (0.0, common)
    } else {
        (w, common)
    }
}

/// Block-aligned [`user_weight`] over cached blocked rows: the serving-path
/// variant (profile from [`ActiveUser::profile_blocked`], neighbour from
/// the `RowStore`/`Synopsis` blocked caches). **Bit-identical** to
/// [`user_weight`] — the blocked kernel folds the same intersection through
/// the same Welford recurrence in the same order, only the intersection
/// *discovery* is block-parallel.
pub fn user_weight_blocked(active: &BlockedRow, neighbor: &BlockedRow) -> (f64, usize) {
    let (w, common) = pearson_on_common_blocked(active, neighbor);
    if common < MIN_COMMON_ITEMS {
        (0.0, common)
    } else {
        (w, common)
    }
}

/// Fold one neighbour's ratings into the per-target accumulators.
///
/// `weight` is the precomputed Pearson weight of this neighbour (from
/// [`user_weight`]) and `neighbor_mean` its precomputed mean rating (from a
/// [`at_linalg::RowStats`] cache) — callers that already weighed the
/// neighbour for correlation ranking pass both in, so the hot path computes
/// each weight **exactly once** and never rescans the neighbour's values.
///
/// `multiplier` scales the contribution (1 for an original user; the member
/// count when the "neighbour" is an aggregated user standing in for many).
/// `acc` is parallel to `active.targets` (sorted ascending); the
/// neighbour's targets are found by one linear merge over its sorted
/// columns instead of a binary search per target.
pub fn accumulate_neighbor(
    active: &ActiveUser,
    neighbor: &SparseRow,
    weight: f64,
    neighbor_mean: f64,
    multiplier: f64,
    acc: &mut [PredictionAcc],
) {
    debug_assert_eq!(acc.len(), active.targets.len());
    // The merge below requires sorted targets — guaranteed by
    // `ActiveUser::new`, but `targets` is a public field.
    debug_assert!(
        active.targets.windows(2).all(|w| w[0] < w[1]),
        "accumulate_neighbor: active.targets must be sorted and deduplicated"
    );
    if weight == 0.0 {
        return;
    }
    // Both `targets` and `cols` are sorted ascending: advance whichever is
    // behind (galloping through `cols` once instead of per-target binary
    // searches).
    let cols = &neighbor.cols;
    let (mut t, mut j) = (0usize, 0usize);
    while t < active.targets.len() && j < cols.len() {
        match cols[j].cmp(&active.targets[t]) {
            std::cmp::Ordering::Less => j += 1,
            std::cmp::Ordering::Greater => t += 1,
            std::cmp::Ordering::Equal => {
                let a = &mut acc[t];
                a.num += weight * (neighbor.vals[j] - neighbor_mean) * multiplier;
                a.den += weight.abs() * multiplier;
                t += 1;
                j += 1;
            }
        }
    }
}

/// Block-aligned [`accumulate_neighbor`]: the neighbour's blocked row is
/// merged against the active user's cached blocked target set
/// ([`ActiveUser::targets_blocked`]), finding each co-occupied block with
/// one mask AND and recovering the accumulator slot by branch-free rank
/// instead of a per-column compare loop.
///
/// **Bit-identical** to the scalar merge: matches arrive in the same
/// ascending column order and the per-match arithmetic is the exact
/// expression of [`accumulate_neighbor`], unreassociated.
pub fn accumulate_neighbor_blocked(
    targets: &BlockedSet,
    neighbor: &BlockedRow,
    weight: f64,
    neighbor_mean: f64,
    multiplier: f64,
    acc: &mut [PredictionAcc],
) {
    debug_assert_eq!(acc.len(), targets.len());
    if weight == 0.0 {
        return;
    }
    for_each_common_slot(neighbor, targets, |t, v| {
        let a = &mut acc[t];
        a.num += weight * (v - neighbor_mean) * multiplier;
        a.den += weight.abs() * multiplier;
    });
}

/// Weigh one neighbour against the active user and fold it into the
/// accumulators: the one-off convenience wrapper around [`user_weight`] +
/// [`accumulate_neighbor`] for callers without a stats cache.
pub fn weigh_and_accumulate(
    active: &ActiveUser,
    neighbor: &SparseRow,
    multiplier: f64,
    acc: &mut [PredictionAcc],
) {
    let (w, _) = user_weight(&active.profile, neighbor);
    if w == 0.0 {
        return;
    }
    let mean = at_linalg::RowStats::of(&neighbor.vals).mean();
    accumulate_neighbor(active, neighbor, w, mean, multiplier, acc);
}

/// Full user-based CF over a set of neighbour rows: returns one prediction
/// accumulator per target (compose across components by merging).
pub fn predict_partial(
    active: &ActiveUser,
    neighbors: impl Iterator<Item = impl std::borrow::Borrow<SparseRow>>,
) -> Vec<PredictionAcc> {
    let mut acc = vec![PredictionAcc::default(); active.targets.len()];
    for n in neighbors {
        weigh_and_accumulate(active, n.borrow(), 1.0, &mut acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: Vec<(u32, f64)>) -> SparseRow {
        SparseRow::from_pairs(pairs)
    }

    #[test]
    fn weight_requires_common_items() {
        let a = row(vec![(0, 5.0), (1, 3.0)]);
        let b = row(vec![(2, 4.0), (3, 1.0)]);
        assert_eq!(user_weight(&a, &b), (0.0, 0));
    }

    #[test]
    fn weight_of_agreeing_users_is_positive() {
        let a = row(vec![(0, 5.0), (1, 3.0), (2, 1.0)]);
        let b = row(vec![(0, 4.0), (1, 3.0), (2, 2.0)]);
        let (w, common) = user_weight(&a, &b);
        assert_eq!(common, 3);
        assert!(w > 0.9, "agreeing users should correlate strongly: {w}");
    }

    #[test]
    fn weight_of_opposite_users_is_negative() {
        let a = row(vec![(0, 5.0), (1, 3.0), (2, 1.0)]);
        let b = row(vec![(0, 1.0), (1, 3.0), (2, 5.0)]);
        let (w, _) = user_weight(&a, &b);
        assert!(w < -0.9);
    }

    #[test]
    fn prediction_follows_positive_neighbor() {
        // Active user mean 3; a strongly-agreeing neighbour rated target
        // item 9 one star above *their* mean -> prediction ≈ 4.
        let active = ActiveUser::new(row(vec![(0, 5.0), (1, 3.0), (2, 1.0)]), vec![9]);
        let neighbor = row(vec![(0, 5.0), (1, 3.0), (2, 1.0), (9, 4.0)]);
        let acc = predict_partial(&active, std::iter::once(&neighbor));
        // neighbour mean = 3.25, delta = 0.75, w ≈ 1.
        let p = acc[0].predict(active.mean_rating());
        assert!((p - 3.75).abs() < 0.05, "prediction {p}");
    }

    #[test]
    fn no_neighbors_falls_back_to_user_mean() {
        let active = ActiveUser::new(row(vec![(0, 4.0), (1, 4.0)]), vec![5]);
        let acc = predict_partial(&active, std::iter::empty::<&SparseRow>());
        assert_eq!(acc[0].predict(active.mean_rating()), 4.0);
    }

    #[test]
    fn prediction_clamped_to_star_scale() {
        let acc = PredictionAcc {
            num: 100.0,
            den: 1.0,
        };
        assert_eq!(acc.predict(3.0), 5.0);
        let acc = PredictionAcc {
            num: -100.0,
            den: 1.0,
        };
        assert_eq!(acc.predict(3.0), 1.0);
    }

    #[test]
    fn merge_equals_joint_computation() {
        let active = ActiveUser::new(row(vec![(0, 5.0), (1, 1.0), (2, 3.0)]), vec![7]);
        let n1 = row(vec![(0, 4.0), (1, 2.0), (7, 5.0)]);
        let n2 = row(vec![(0, 5.0), (1, 1.0), (2, 3.0), (7, 1.0)]);
        let joint = predict_partial(&active, [&n1, &n2].into_iter());
        let mut a = predict_partial(&active, std::iter::once(&n1));
        let b = predict_partial(&active, std::iter::once(&n2));
        a[0].merge(&b[0]);
        assert!((a[0].num - joint[0].num).abs() < 1e-12);
        assert!((a[0].den - joint[0].den).abs() < 1e-12);
    }

    #[test]
    fn multiplier_scales_contribution() {
        let active = ActiveUser::new(row(vec![(0, 5.0), (1, 1.0)]), vec![7]);
        let n = row(vec![(0, 4.0), (1, 2.0), (7, 5.0)]);
        let mut one = vec![PredictionAcc::default()];
        weigh_and_accumulate(&active, &n, 1.0, &mut one);
        let mut ten = vec![PredictionAcc::default()];
        weigh_and_accumulate(&active, &n, 10.0, &mut ten);
        assert!((ten[0].num - 10.0 * one[0].num).abs() < 1e-12);
        // Prediction itself is scale-invariant for a single neighbour.
        assert!((ten[0].predict(3.0) - one[0].predict(3.0)).abs() < 1e-12);
    }

    #[test]
    fn blocked_kernels_are_bit_identical_to_scalar() {
        let active = ActiveUser::new(
            row(vec![(0, 5.0), (1, 1.0), (2, 3.0), (8, 2.0), (17, 4.0)]),
            vec![3, 5, 7, 9, 16, 24],
        );
        let n = row(vec![
            (0, 4.0),
            (1, 2.0),
            (4, 1.0),
            (5, 5.0),
            (8, 3.5),
            (9, 2.0),
            (16, 1.0),
            (17, 2.0),
        ]);
        let nb = BlockedRow::from_sorted(&n.cols, &n.vals);
        let (ws, cs) = user_weight(&active.profile, &n);
        let (wb, cb) = user_weight_blocked(active.profile_blocked(), &nb);
        assert_eq!(cs, cb);
        assert_eq!(ws.to_bits(), wb.to_bits());
        let mean = at_linalg::RowStats::of(&n.vals).mean();
        let mut scalar = vec![PredictionAcc::default(); active.targets.len()];
        accumulate_neighbor(&active, &n, ws, mean, 2.0, &mut scalar);
        let mut blocked = vec![PredictionAcc::default(); active.targets.len()];
        accumulate_neighbor_blocked(active.targets_blocked(), &nb, wb, mean, 2.0, &mut blocked);
        for (s, b) in scalar.iter().zip(&blocked) {
            assert_eq!(s.num.to_bits(), b.num.to_bits());
            assert_eq!(s.den.to_bits(), b.den.to_bits());
        }
    }

    #[test]
    fn precomputed_weight_path_matches_wrapper() {
        // Multiple targets interleaved with non-target columns exercise the
        // linear merge; it must agree with the weigh-and-accumulate wrapper
        // (which itself recomputes weight and mean from scratch).
        let active = ActiveUser::new(row(vec![(0, 5.0), (1, 1.0), (2, 3.0)]), vec![3, 5, 7, 9]);
        let n = row(vec![(0, 4.0), (1, 2.0), (4, 1.0), (5, 5.0), (9, 2.0)]);
        let mut via_wrapper = vec![PredictionAcc::default(); 4];
        weigh_and_accumulate(&active, &n, 2.0, &mut via_wrapper);
        let (w, _) = user_weight(&active.profile, &n);
        let mean = at_linalg::RowStats::of(&n.vals).mean();
        let mut via_precomputed = vec![PredictionAcc::default(); 4];
        accumulate_neighbor(&active, &n, w, mean, 2.0, &mut via_precomputed);
        assert_eq!(via_wrapper, via_precomputed);
        // Target 5 and 9 are rated; 3 and 7 are not.
        assert!(via_precomputed[1].den > 0.0 && via_precomputed[3].den > 0.0);
        assert_eq!(via_precomputed[0], PredictionAcc::default());
        assert_eq!(via_precomputed[2], PredictionAcc::default());
    }
}

//! User-based collaborative filtering (paper §3.2).
//!
//! Step 1: the weight between the active user and a neighbour is Pearson's
//! correlation over their co-rated items. Step 2: the prediction of user
//! `u`'s rating on item `i` is `u`'s mean rating plus the weighted average
//! of the neighbours' mean-centred ratings of `i` — the classic formulation
//! from the CF survey the paper cites.

use at_linalg::pearson::pearson_on_common;
use at_synopsis::SparseRow;

use crate::ratings::ActiveUser;

/// Minimum co-rated items for a weight to count (below this, Pearson is
/// noise; with <2 items it is undefined and treated as 0).
pub const MIN_COMMON_ITEMS: usize = 2;

/// Accumulating numerator/denominator of a weighted-average prediction for
/// one target item. Partial sums from different components/groups add.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PredictionAcc {
    /// Σ w(u,v) · (r_{v,i} − r̄_v) (optionally scaled by member counts).
    pub num: f64,
    /// Σ |w(u,v)| (same scaling).
    pub den: f64,
}

impl PredictionAcc {
    /// Merge another partial sum.
    pub fn merge(&mut self, other: &PredictionAcc) {
        self.num += other.num;
        self.den += other.den;
    }

    /// Final prediction: `user_mean + num/den`, clamped to the 1–5 star
    /// scale; falls back to `user_mean` when no neighbour rated the item.
    pub fn predict(&self, user_mean: f64) -> f64 {
        if self.den > 1e-12 {
            (user_mean + self.num / self.den).clamp(1.0, 5.0)
        } else {
            user_mean.clamp(1.0, 5.0)
        }
    }
}

/// The Pearson weight between the active user and one neighbour row.
/// Returns `(weight, common_items)`; weight is 0 below [`MIN_COMMON_ITEMS`].
pub fn user_weight(active: &SparseRow, neighbor: &SparseRow) -> (f64, usize) {
    let (w, common) = pearson_on_common(&active.cols, &active.vals, &neighbor.cols, &neighbor.vals);
    if common < MIN_COMMON_ITEMS {
        (0.0, common)
    } else {
        (w, common)
    }
}

/// Fold one neighbour's ratings into the per-target accumulators.
///
/// `multiplier` scales the contribution (1 for an original user; the member
/// count when the "neighbour" is an aggregated user standing in for many).
/// `acc` is parallel to `active.targets`.
pub fn accumulate_neighbor(
    active: &ActiveUser,
    neighbor: &SparseRow,
    multiplier: f64,
    acc: &mut [PredictionAcc],
) {
    debug_assert_eq!(acc.len(), active.targets.len());
    let (w, _) = user_weight(&active.profile, neighbor);
    if w == 0.0 {
        return;
    }
    let neighbor_mean = if neighbor.vals.is_empty() {
        return;
    } else {
        neighbor.vals.iter().sum::<f64>() / neighbor.vals.len() as f64
    };
    for (t, a) in active.targets.iter().zip(acc.iter_mut()) {
        if let Some(r) = neighbor.get(*t) {
            a.num += w * (r - neighbor_mean) * multiplier;
            a.den += w.abs() * multiplier;
        }
    }
}

/// Full user-based CF over a set of neighbour rows: returns one prediction
/// accumulator per target (compose across components by merging).
pub fn predict_partial(
    active: &ActiveUser,
    neighbors: impl Iterator<Item = impl std::borrow::Borrow<SparseRow>>,
) -> Vec<PredictionAcc> {
    let mut acc = vec![PredictionAcc::default(); active.targets.len()];
    for n in neighbors {
        accumulate_neighbor(active, n.borrow(), 1.0, &mut acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: Vec<(u32, f64)>) -> SparseRow {
        SparseRow::from_pairs(pairs)
    }

    #[test]
    fn weight_requires_common_items() {
        let a = row(vec![(0, 5.0), (1, 3.0)]);
        let b = row(vec![(2, 4.0), (3, 1.0)]);
        assert_eq!(user_weight(&a, &b), (0.0, 0));
    }

    #[test]
    fn weight_of_agreeing_users_is_positive() {
        let a = row(vec![(0, 5.0), (1, 3.0), (2, 1.0)]);
        let b = row(vec![(0, 4.0), (1, 3.0), (2, 2.0)]);
        let (w, common) = user_weight(&a, &b);
        assert_eq!(common, 3);
        assert!(w > 0.9, "agreeing users should correlate strongly: {w}");
    }

    #[test]
    fn weight_of_opposite_users_is_negative() {
        let a = row(vec![(0, 5.0), (1, 3.0), (2, 1.0)]);
        let b = row(vec![(0, 1.0), (1, 3.0), (2, 5.0)]);
        let (w, _) = user_weight(&a, &b);
        assert!(w < -0.9);
    }

    #[test]
    fn prediction_follows_positive_neighbor() {
        // Active user mean 3; a strongly-agreeing neighbour rated target
        // item 9 one star above *their* mean -> prediction ≈ 4.
        let active = ActiveUser::new(row(vec![(0, 5.0), (1, 3.0), (2, 1.0)]), vec![9]);
        let neighbor = row(vec![(0, 5.0), (1, 3.0), (2, 1.0), (9, 4.0)]);
        let acc = predict_partial(&active, std::iter::once(&neighbor));
        // neighbour mean = 3.25, delta = 0.75, w ≈ 1.
        let p = acc[0].predict(active.mean_rating());
        assert!((p - 3.75).abs() < 0.05, "prediction {p}");
    }

    #[test]
    fn no_neighbors_falls_back_to_user_mean() {
        let active = ActiveUser::new(row(vec![(0, 4.0), (1, 4.0)]), vec![5]);
        let acc = predict_partial(&active, std::iter::empty::<&SparseRow>());
        assert_eq!(acc[0].predict(active.mean_rating()), 4.0);
    }

    #[test]
    fn prediction_clamped_to_star_scale() {
        let acc = PredictionAcc {
            num: 100.0,
            den: 1.0,
        };
        assert_eq!(acc.predict(3.0), 5.0);
        let acc = PredictionAcc {
            num: -100.0,
            den: 1.0,
        };
        assert_eq!(acc.predict(3.0), 1.0);
    }

    #[test]
    fn merge_equals_joint_computation() {
        let active = ActiveUser::new(row(vec![(0, 5.0), (1, 1.0), (2, 3.0)]), vec![7]);
        let n1 = row(vec![(0, 4.0), (1, 2.0), (7, 5.0)]);
        let n2 = row(vec![(0, 5.0), (1, 1.0), (2, 3.0), (7, 1.0)]);
        let joint = predict_partial(&active, [&n1, &n2].into_iter());
        let mut a = predict_partial(&active, std::iter::once(&n1));
        let b = predict_partial(&active, std::iter::once(&n2));
        a[0].merge(&b[0]);
        assert!((a[0].num - joint[0].num).abs() < 1e-12);
        assert!((a[0].den - joint[0].den).abs() < 1e-12);
    }

    #[test]
    fn multiplier_scales_contribution() {
        let active = ActiveUser::new(row(vec![(0, 5.0), (1, 1.0)]), vec![7]);
        let n = row(vec![(0, 4.0), (1, 2.0), (7, 5.0)]);
        let mut one = vec![PredictionAcc::default()];
        accumulate_neighbor(&active, &n, 1.0, &mut one);
        let mut ten = vec![PredictionAcc::default()];
        accumulate_neighbor(&active, &n, 10.0, &mut ten);
        assert!((ten[0].num - 10.0 * one[0].num).abs() < 1e-12);
        // Prediction itself is scale-invariant for a single neighbour.
        assert!((ten[0].predict(3.0) - one[0].predict(3.0)).abs() < 1e-12);
    }
}

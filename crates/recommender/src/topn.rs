//! Top-N recommendation on top of rating prediction.
//!
//! The paper's motivating e-commerce scenario recommends *products*, not
//! raw scores: predict the active user's rating for every unrated item and
//! return the N best. Built entirely from the prediction primitives, so it
//! works identically through the exact and AccuracyTrader paths.

use at_synopsis::RowStore;

use crate::predict::{accumulate_neighbor, user_weight, PredictionAcc};
use crate::ratings::ActiveUser;

/// One recommended item.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Item id.
    pub item: u32,
    /// Predicted rating.
    pub predicted: f64,
    /// Neighbourhood evidence mass (Σ|w|); low support means the
    /// prediction leans on the user-mean fallback.
    pub support: f64,
}

/// Recommend the `n` best unrated items for `active`, scoring against all
/// rows of `neighbors`. Ties break toward lower item ids.
pub fn recommend_top_n(active: &ActiveUser, neighbors: &RowStore, n: usize) -> Vec<Recommendation> {
    // Candidates: every item the active user has NOT rated.
    let rated: std::collections::HashSet<u32> = active.profile.cols.iter().copied().collect();
    let candidates: Vec<u32> = (0..neighbors.feature_dim() as u32)
        .filter(|i| !rated.contains(i))
        .collect();
    if candidates.is_empty() || n == 0 {
        return Vec::new();
    }
    let probe = ActiveUser::new(active.profile.clone(), candidates.clone());
    let mut acc = vec![PredictionAcc::default(); probe.targets.len()];
    for id in neighbors.ids() {
        let row = neighbors.row(id);
        let (w, _) = user_weight(&probe.profile, row);
        accumulate_neighbor(
            &probe,
            row,
            w,
            neighbors.row_stats(id).mean(),
            1.0,
            &mut acc,
        );
    }
    let mean = probe.mean_rating();
    let mut recs: Vec<Recommendation> = probe
        .targets
        .iter()
        .zip(&acc)
        .map(|(&item, a)| Recommendation {
            item,
            predicted: a.predict(mean),
            support: a.den,
        })
        .collect();
    recs.sort_by(|a, b| {
        b.predicted
            .partial_cmp(&a.predicted)
            .expect("finite prediction")
            .then_with(|| b.support.partial_cmp(&a.support).expect("finite support"))
            .then_with(|| a.item.cmp(&b.item))
    });
    recs.truncate(n);
    recs
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_synopsis::SparseRow;

    /// Two items: item 0 loved by the active user's lookalikes, item 1
    /// hated by them.
    fn neighbors() -> RowStore {
        let mut s = RowStore::new(6);
        for i in 0..10u32 {
            // Lookalikes of the active user (rate items 2,3,4 the same way)
            // love item 0 and hate item 1.
            s.push_row(SparseRow::from_pairs(vec![
                (0, 5.0),
                (1, 1.0),
                (2, 4.0 + (i % 2) as f64 * 0.5),
                (3, 2.0),
                (4, 3.0),
            ]));
        }
        s
    }

    fn active() -> ActiveUser {
        ActiveUser::new(
            SparseRow::from_pairs(vec![(2, 4.0), (3, 2.0), (4, 3.0)]),
            vec![],
        )
    }

    #[test]
    fn loved_item_ranks_first() {
        let recs = recommend_top_n(&active(), &neighbors(), 3);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].item, 0, "lookalikes' favourite must rank first");
        assert!(recs[0].predicted > recs.last().unwrap().predicted);
        // Item 1 (hated) must rank last among scored items.
        let hated = recs.iter().position(|r| r.item == 1);
        assert!(hated.is_none() || hated == Some(2));
    }

    #[test]
    fn rated_items_are_excluded() {
        let recs = recommend_top_n(&active(), &neighbors(), 10);
        for r in &recs {
            assert!(
                ![2u32, 3, 4].contains(&r.item),
                "item {} was already rated",
                r.item
            );
        }
    }

    #[test]
    fn n_limits_output() {
        assert_eq!(recommend_top_n(&active(), &neighbors(), 1).len(), 1);
        assert!(recommend_top_n(&active(), &neighbors(), 0).is_empty());
    }

    #[test]
    fn unsupported_items_fall_back_to_user_mean() {
        // Item 5 is rated by nobody: prediction = user mean, support 0.
        let recs = recommend_top_n(&active(), &neighbors(), 10);
        let item5 = recs.iter().find(|r| r.item == 5).expect("present");
        assert_eq!(item5.support, 0.0);
        assert!((item5.predicted - active().mean_rating()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_ordering() {
        let a = recommend_top_n(&active(), &neighbors(), 5);
        let b = recommend_top_n(&active(), &neighbors(), 5);
        assert_eq!(a, b);
    }
}

//! Recommender accuracy: RMSE and the paper's accuracy-loss percentage.

pub use at_linalg::stats::rmse;

/// Percentage of accuracy loss of an approximate result versus the exact
/// one (§4.1): for an error metric like RMSE (lower is better), the loss is
/// the relative RMSE increase, floored at zero (an approximation can tie or
/// — by luck — beat the exact RMSE, which counts as no loss).
pub fn accuracy_loss_pct(exact_rmse: f64, approx_rmse: f64) -> f64 {
    assert!(exact_rmse >= 0.0 && approx_rmse >= 0.0, "RMSE must be >= 0");
    if exact_rmse <= 1e-12 {
        // A perfect exact baseline: any positive approx error is a loss
        // relative to the rating scale midpoint instead.
        return if approx_rmse <= 1e-12 { 0.0 } else { 100.0 };
    }
    ((approx_rmse - exact_rmse) / exact_rmse * 100.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_when_equal_or_better() {
        assert_eq!(accuracy_loss_pct(1.0, 1.0), 0.0);
        assert_eq!(accuracy_loss_pct(1.0, 0.9), 0.0);
    }

    #[test]
    fn loss_is_relative_increase() {
        assert!((accuracy_loss_pct(1.0, 1.05) - 5.0).abs() < 1e-9);
        assert!((accuracy_loss_pct(0.8, 1.6) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_baseline_edge_cases() {
        assert_eq!(accuracy_loss_pct(0.0, 0.0), 0.0);
        assert_eq!(accuracy_loss_pct(0.0, 0.5), 100.0);
    }

    #[test]
    #[should_panic(expected = "RMSE")]
    fn negative_rmse_panics() {
        accuracy_loss_pct(-1.0, 1.0);
    }
}

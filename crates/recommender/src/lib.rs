//! # at-recommender
//!
//! The user-based collaborative-filtering recommender of the AccuracyTrader
//! reproduction (Han et al., ICPP 2016, §3.2), with its AccuracyTrader
//! adapter:
//!
//! * [`ratings`] — rating-matrix construction and the [`ActiveUser`] request.
//! * [`predict`] — Pearson weights and weighted-average prediction with
//!   mergeable partial sums (for fan-out composition).
//! * [`mod@rmse`] — RMSE and the paper's accuracy-loss percentage.
//! * [`adapter`] — [`CfService`]: the [`at_core::ApproximateService`] +
//!   [`at_core::ComposableService`] implementation (per-component partial
//!   sums composed into final predictions) plus the Figure-4(a)
//!   section-relatedness analysis.

pub mod adapter;
pub mod predict;
pub mod ratings;
pub mod rmse;
pub mod topn;

pub use adapter::{section_relatedness, CfService};
pub use predict::{
    accumulate_neighbor, predict_partial, user_weight, weigh_and_accumulate, PredictionAcc,
};
pub use ratings::{rating_matrix, ActiveUser};
pub use rmse::{accuracy_loss_pct, rmse};
pub use topn::{recommend_top_n, Recommendation};

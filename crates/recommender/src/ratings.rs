//! Rating-matrix plumbing: turning rating triples into the row stores the
//! synopsis pipeline and CF algorithm consume.

use at_core::{Fnv1a, RouteKey};
use at_linalg::{BlockedRow, BlockedSet};
use at_synopsis::{RowStore, SparseRow};
use at_workloads::Rating;

/// Build a user-row store (`n_users × n_items`) from rating triples.
/// Users absent from `ratings` get empty rows.
pub fn rating_matrix(n_users: usize, n_items: usize, ratings: &[Rating]) -> RowStore {
    let mut per_user: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_users];
    for r in ratings {
        assert!((r.user as usize) < n_users, "user {} out of range", r.user);
        assert!((r.item as usize) < n_items, "item {} out of range", r.item);
        per_user[r.user as usize].push((r.item, r.stars));
    }
    let mut store = RowStore::new(n_items);
    for pairs in per_user {
        store.push_row(SparseRow::from_pairs(pairs));
    }
    store
}

/// An active user's request: their known ratings (for weight computation)
/// and the items whose ratings to predict.
///
/// `PartialEq` compares profile and targets exactly (the blocked caches are
/// pure functions of them, so they compare consistently); the batched
/// serving path uses it to collapse duplicate requests in one batch.
///
/// The blocked renderings of the profile and target list are built once at
/// [`new`](ActiveUser::new) — request construction, off the warm path — so
/// the serving kernels read dense lanes without per-request conversion.
/// They stay private: every construction goes through `new`, which keeps
/// them in sync with the public fields.
#[derive(Clone, Debug, PartialEq)]
pub struct ActiveUser {
    /// The active user's profile: item → rating.
    pub profile: SparseRow,
    /// Items to predict, sorted ascending.
    pub targets: Vec<u32>,
    blocked_profile: BlockedRow,
    blocked_targets: BlockedSet,
}

impl ActiveUser {
    /// Build a request; sorts and dedups targets, and caches the blocked
    /// renderings the block-aligned kernels consume.
    pub fn new(profile: SparseRow, mut targets: Vec<u32>) -> Self {
        targets.sort_unstable();
        targets.dedup();
        let blocked_profile = BlockedRow::from_sorted(&profile.cols, &profile.vals);
        let blocked_targets = BlockedSet::from_sorted(&targets);
        ActiveUser {
            profile,
            targets,
            blocked_profile,
            blocked_targets,
        }
    }

    /// Cached blocked rendering of the profile row.
    pub fn profile_blocked(&self) -> &BlockedRow {
        &self.blocked_profile
    }

    /// Cached blocked membership/rank set over `targets`.
    pub fn targets_blocked(&self) -> &BlockedSet {
        &self.blocked_targets
    }

    /// The user's mean rating (fallback prediction); 3.0 for empty profiles
    /// (the mid-scale prior).
    pub fn mean_rating(&self) -> f64 {
        if self.profile.vals.is_empty() {
            3.0
        } else {
            self.profile.vals.iter().sum::<f64>() / self.profile.vals.len() as f64
        }
    }
}

/// Stable placement hash over exactly what `PartialEq` compares (profile
/// pairs and targets), so byte-equal requests — the ones the batched
/// duplicate collapse merges — always share a worker under hash-affinity
/// routing.
impl RouteKey for ActiveUser {
    fn route_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        for (&col, &val) in self.profile.cols.iter().zip(&self.profile.vals) {
            h.write_u32(col);
            h.write_f64(val);
        }
        for &target in &self.targets {
            h.write_u32(target);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_places_ratings() {
        let ratings = vec![
            Rating {
                user: 0,
                item: 2,
                stars: 4.0,
            },
            Rating {
                user: 2,
                item: 0,
                stars: 1.0,
            },
            Rating {
                user: 0,
                item: 1,
                stars: 5.0,
            },
        ];
        let m = rating_matrix(3, 4, &ratings);
        assert_eq!(m.len(), 3);
        assert_eq!(m.row(0).get(2), Some(4.0));
        assert_eq!(m.row(0).get(1), Some(5.0));
        assert_eq!(m.row(1).nnz(), 0);
        assert_eq!(m.row(2).get(0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        rating_matrix(
            1,
            1,
            &[Rating {
                user: 5,
                item: 0,
                stars: 3.0,
            }],
        );
    }

    #[test]
    fn active_user_normalizes_targets() {
        let u = ActiveUser::new(
            SparseRow::from_pairs(vec![(0, 4.0), (1, 2.0)]),
            vec![3, 1, 3],
        );
        assert_eq!(u.targets, vec![1, 3]);
        assert_eq!(u.mean_rating(), 3.0);
    }

    #[test]
    fn empty_profile_mean_is_mid_scale() {
        let u = ActiveUser::new(SparseRow::default(), vec![0]);
        assert_eq!(u.mean_rating(), 3.0);
    }
}
